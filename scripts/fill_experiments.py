#!/usr/bin/env python3
"""Splices harness outputs from results/ into EXPERIMENTS.md placeholders.

Usage: python3 scripts/fill_experiments.py
Each `<!-- NAME -->` marker is replaced by the corresponding results file,
wrapped in a fenced code block. Markers with missing files are left alone.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = ROOT / "EXPERIMENTS.md"

SOURCES = {
    "TABLE4": "table4.txt",
    "FIG3": "fig3.txt",
    "FIG4": "fig4.txt",
    "COMBOS": "fault_combos.txt",
    "ABLATION": "ablation.txt",
    "DETECTOR": "detector.txt",
}


def main() -> int:
    text = DOC.read_text()
    results = ROOT / "results"
    for marker, filename in SOURCES.items():
        path = results / filename
        if not path.exists():
            print(f"skip {marker}: {path} missing")
            continue
        body = path.read_text().rstrip()
        block = f"```text\n{body}\n```"
        pattern = re.compile(rf"<!-- {marker} -->")
        if not pattern.search(text):
            print(f"skip {marker}: marker not found")
            continue
        text = pattern.sub(lambda _: block, text, count=1)
        print(f"filled {marker} from {filename}")
    DOC.write_text(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
