#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, all tests.
# CI (.github/workflows/ci.yml) runs exactly this script, so a green local
# run means a green pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

# TDFM_SMOKE_DIR lets CI keep artefacts (lint report, trace, manifest) for
# upload; by default they land in a throwaway directory.
if [ -n "${TDFM_SMOKE_DIR:-}" ]; then
    smoke_dir="$TDFM_SMOKE_DIR"
    mkdir -p "$smoke_dir"
else
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
fi

echo "== tdfm lint self-test (fixtures, parser round-trip) =="
# The analyzer's own suite first: pinned fixture diagnostics for every
# rule and the byte-identical parser round-trip over the workspace. A
# drifting rule fails here with a named fixture, not as a mystery finding
# (or silence) in the sweep below.
cargo test -q -p tdfm-lint

echo "== tdfm lint (project static analysis) =="
# The repo's own analyzer (crates/lint): NaN laundering, sparsity skips,
# kernel allocations (now interprocedural via the call graph), bare
# unwraps, wall-clock and env reads, unsafe without SAFETY comments, and
# the determinism/concurrency pack (hash iteration order, detached
# spawns, locks held across calls, hash-order float reductions). Must be
# clean before anything is built in release mode; the JSON report, the
# SARIF document and the wall-time manifest are kept as CI artefacts
# either way. The 10s time budget keeps the analyzer cheap enough to run
# on every push; a blown budget fails this stage.
if ! cargo run -q --bin tdfm -- lint --json \
        --sarif "$smoke_dir/lint.sarif" \
        --manifest "$smoke_dir/lint-manifest.json" \
        --time-budget 10 \
        > "$smoke_dir/lint.json"; then
    # Re-run in human-readable form so the failure log shows file:line:col.
    cargo run -q --bin tdfm -- lint || true
    echo "tdfm lint failed (JSON report: $smoke_dir/lint.json)" >&2
    exit 1
fi

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace build + tests (all crates) =="
cargo build --release --workspace
cargo test -q --workspace

echo "== full test suite with the SIMD kernels disabled (TDFM_SIMD=off) =="
# The scalar fallback is a first-class code path, not dead weight: every
# test must pass with the vector kernels forced off. The binaries are
# already built, so this re-runs execution only.
TDFM_SIMD=off cargo test -q --workspace

echo "== bench regression gate: training_step --compare (+ scaling) =="
# Re-runs the trainer bench suite — including the elementwise/reduction
# kernel cells and the multi-thread scaling cells (TDFM_THREADS 1/2/4) —
# and diffs it against the committed baseline. The gate fails only on a
# broad slowdown: the geometric mean of the per-benchmark
# current/baseline ratios (over min_seconds) must stay within the
# threshold. The threshold is deliberately generous because CI runners
# differ from the machine the baseline was recorded on; local runs can
# tighten it (e.g. TDFM_BENCH_THRESHOLD=0.10) when chasing a specific
# regression. The scaling cells come back as a scaling-curve JSON, kept
# (with its rendered throughput-vs-threads SVG) as a CI artefact — the
# curve plots this runner's measurements, so unlike the result figures it
# is not drift-gated.
cargo bench -q -p tdfm-bench --bench training_step -- \
    --compare "$PWD/results/BENCH_trainer.json" \
    --threshold "${TDFM_BENCH_THRESHOLD:-0.50}" \
    --scaling-out "$smoke_dir/scaling.json"
test -s "$smoke_dir/scaling.json"
./target/release/tdfm figures "$smoke_dir/scaling.json" \
    --out "$smoke_dir/figures-scaling" > /dev/null
test -s "$smoke_dir/figures-scaling/scaling_threads.svg"

echo "== obs smoke: trace + manifest + tdfm report =="
# Run the smallest harness binary with tracing on, then make `tdfm report`
# the assertion that the trace is valid JSONL and the manifest parses (it
# exits non-zero on any malformed input).
TDFM_SCALE=tiny TDFM_RESULTS="$smoke_dir" TDFM_TRACE="$smoke_dir/trace.jsonl" \
    ./target/release/motivating > /dev/null
test -s "$smoke_dir/trace.jsonl"
test -s "$smoke_dir/motivating.manifest.json"
./target/release/tdfm report \
    "$smoke_dir/motivating.manifest.json" "$smoke_dir/trace.jsonl"

echo "== profile smoke: span tree + collapsed stacks from the trace =="
# The same trace must reconstruct into a span-tree profile (the profiler
# exits non-zero on malformed or unbalanced traces) in both renderings.
./target/release/tdfm report --profile "$smoke_dir/trace.jsonl" > /dev/null
./target/release/tdfm report --collapsed "$smoke_dir/trace.jsonl" \
    > "$smoke_dir/trace.collapsed"
test -s "$smoke_dir/trace.collapsed"

echo "== model-fault smoke: harness + manifest + tdfm report =="
# The second fault axis at tiny scale: all seven techniques (incl. FAT)
# under weight and activation bit-flip sweeps. The manifest must validate
# through the same `tdfm report` path as the data-fault manifests.
TDFM_SCALE=tiny TDFM_RESULTS="$smoke_dir" \
    ./target/release/model_faults > /dev/null
test -s "$smoke_dir/model_faults.json"
test -s "$smoke_dir/model_faults.manifest.json"
./target/release/tdfm report "$smoke_dir/model_faults.manifest.json"

echo "== shard-fault smoke: sharded trainer + manifest + tdfm report =="
# The distributed axis at tiny scale: four aggregators, one victim shard
# at three mislabelling rates over eight shard workers. The manifest must
# validate through the same `tdfm report` path as the other manifests.
TDFM_SCALE=tiny TDFM_RESULTS="$smoke_dir" \
    ./target/release/shard_faults > /dev/null
test -s "$smoke_dir/shard_faults.json"
test -s "$smoke_dir/shard_faults.manifest.json"
./target/release/tdfm report "$smoke_dir/shard_faults.manifest.json"

echo "== result drift gate: committed JSONs reproduce from their seeds =="
# The committed result files are claims about the code; regenerate each at
# its recorded scale and require a bit-identical match once wall-clock
# fields are normalised. `tdfm diff-results` exits 1 on drift, so a stale
# commit (code changed, results not re-recorded) fails the gate here.
drift_dir="$smoke_dir/drift"
mkdir -p "$drift_dir"
TDFM_SCALE=smoke TDFM_RESULTS="$drift_dir" ./target/release/motivating > /dev/null
TDFM_SCALE=smoke TDFM_RESULTS="$drift_dir" ./target/release/model_faults > /dev/null
./target/release/tdfm diff-results results/motivating.json "$drift_dir/motivating.json"
./target/release/tdfm diff-results results/model_faults.json "$drift_dir/model_faults.json"
# The SIMD kernels claim byte-identical results against the scalar loops
# (no FMA, no reassociation — DESIGN.md §2.1a): regenerate with the
# vector paths forced off and hold the committed results to that too.
TDFM_SIMD=off TDFM_SCALE=smoke TDFM_RESULTS="$drift_dir" \
    ./target/release/motivating > /dev/null
./target/release/tdfm diff-results results/motivating.json "$drift_dir/motivating.json"
# The sharded trainer's fixed sorted-order reduction claims byte-identical
# output at any thread count: regenerate at both budgets and hold it to
# that. Separate processes per setting — TDFM_THREADS is read once per
# process.
for threads in 1 4; do
    TDFM_THREADS=$threads TDFM_SCALE=smoke TDFM_RESULTS="$drift_dir" \
        ./target/release/shard_faults > /dev/null
    ./target/release/tdfm diff-results \
        results/shard_faults.json "$drift_dir/shard_faults.json"
done
# And the cross product's far corner: scalar kernels at 4 threads.
TDFM_SIMD=off TDFM_THREADS=4 TDFM_SCALE=smoke TDFM_RESULTS="$drift_dir" \
    ./target/release/shard_faults > /dev/null
./target/release/tdfm diff-results \
    results/shard_faults.json "$drift_dir/shard_faults.json"

echo "== figure drift gate: committed SVGs reproduce byte-identically =="
# Figures are pure functions of the committed result JSONs, so they must
# regenerate byte-for-byte — at any thread count. A `cmp` failure means
# either the renderer changed (re-run `tdfm figures` and commit) or
# nondeterminism crept into the pipeline (a bug; see DESIGN.md "SVG
# determinism rules").
figs_dir="$smoke_dir/figures"
for threads in 1 4; do
    rm -rf "$figs_dir"
    TDFM_THREADS=$threads ./target/release/tdfm figures \
        results/model_faults.json --out "$figs_dir" > /dev/null
    TDFM_THREADS=$threads ./target/release/tdfm figures \
        results/motivating.json --out "$figs_dir" > /dev/null
    TDFM_THREADS=$threads ./target/release/tdfm figures \
        results/shard_faults.json --out "$figs_dir" > /dev/null
    for svg in results/figures/*.svg; do
        cmp "$svg" "$figs_dir/$(basename "$svg")"
    done
done

echo "CI gate passed."
