#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, all tests.
# CI (.github/workflows/ci.yml) runs exactly this script, so a green local
# run means a green pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "CI gate passed."
