//! Quickstart: train a model on faulty data, watch accuracy drop, then
//! protect it with a TDFM technique.
//!
//! Run with: `cargo run --release --example quickstart`

use tdfm::core::technique::{Baseline, LabelSmoothing, Mitigation, TrainContext};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    println!("quickstart at scale '{scale}' (set TDFM_SCALE to change)\n");

    // 1. A synthetic stand-in for GTSRB: 43 traffic-sign classes.
    let data = DatasetKind::Gtsrb.generate(scale, 1);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train.len(),
        data.test.len(),
        data.train.classes()
    );

    // 2. Train the golden (fault-free) model.
    let mut ctx = TrainContext::new(scale, 1);
    ctx.tune_for(data.train.len());
    let mut golden = Baseline.fit(ModelKind::ConvNet, &data.train, &ctx);
    println!(
        "golden accuracy          : {:.1}%",
        100.0 * golden.accuracy(&data.test)
    );

    // 3. Inject 30% mislabelling faults — the dominant fault type in
    //    real-world datasets per the paper's survey.
    let plan = FaultPlan::single(FaultKind::Mislabelling, 30.0);
    let (faulty_train, report) = Injector::new(1).apply(&data.train, &plan);
    println!(
        "injected: {} of {} training labels flipped",
        report.mislabelled, report.before
    );

    // 4. The unprotected model suffers.
    let mut faulty = Baseline.fit(ModelKind::ConvNet, &faulty_train, &ctx);
    println!(
        "unprotected accuracy     : {:.1}%",
        100.0 * faulty.accuracy(&data.test)
    );

    // 5. Label smoothing (the paper's runner-up technique) recovers much
    //    of the loss at negligible extra cost.
    let mut protected = LabelSmoothing::new(0.1).fit(ModelKind::ConvNet, &faulty_train, &ctx);
    println!(
        "label-smoothed accuracy  : {:.1}%",
        100.0 * protected.accuracy(&data.test)
    );
}
