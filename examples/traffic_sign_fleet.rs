//! Traffic-sign recognition for an AV fleet whose training pipeline
//! ingested crowd-sourced labels — a third of which are wrong (the paper
//! cites Udacity Dataset 2 with 33% missing/incorrect labels).
//!
//! Shows why the paper's ensemble wins: each member makes *different*
//! mistakes, and the majority vote absorbs them.
//!
//! Run with: `cargo run --release --example traffic_sign_fleet`

use tdfm::core::technique::{Ensemble, Mitigation, TrainContext};
use tdfm::core::FittedModel;
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    println!("traffic-sign fleet at scale '{scale}'\n");
    let data = DatasetKind::Gtsrb.generate(scale, 3);
    let mut ctx = TrainContext::new(scale, 3);
    ctx.tune_for(data.train.len());

    // Crowd-sourced labels: 33% mislabelled, like Udacity Dataset 2.
    let plan = FaultPlan::single(FaultKind::Mislabelling, 33.0);
    let (faulty_train, report) = Injector::new(3).apply(&data.train, &plan);
    println!(
        "training on {} signs, {} of them mislabelled\n",
        report.before, report.mislabelled
    );

    let ensemble = Ensemble::paper_default();
    let mut fitted = ensemble.fit(ModelKind::ConvNet, &faulty_train, &ctx);

    // Per-member accuracy vs the vote.
    if let FittedModel::Ensemble(members) = &mut fitted {
        for (kind, net) in ensemble.members().iter().zip(members.iter_mut()) {
            let acc = net.accuracy(data.test.images(), data.test.labels(), 64);
            println!(
                "  member {:<10} accuracy {:>5.1}%",
                kind.name(),
                100.0 * acc
            );
        }
    }
    let vote_acc = fitted.accuracy(&data.test);
    println!(
        "  {:<17} accuracy {:>5.1}%",
        "majority vote",
        100.0 * vote_acc
    );

    println!(
        "\nThe vote should match or beat the best member: a sign is misread only\n\
         when a majority of five structurally different networks fail together."
    );
}
