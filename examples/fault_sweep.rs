//! Sweep all three fault types across injection amounts and print the
//! accuracy-delta grid — a miniature of the paper's full evaluation.
//!
//! Run with: `cargo run --release --example fault_sweep`

use tdfm::core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan};
use tdfm::nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    println!("fault sweep at scale '{scale}': CIFAR-10 analogue, ConvNet, baseline vs ensemble\n");
    let runner = Runner::new();
    println!(
        "{:<14}{:>6}{:>16}{:>16}",
        "Fault", "%", "baseline AD", "ensemble AD"
    );
    println!("{}", "-".repeat(52));
    for fault in FaultKind::ALL {
        for percent in [10.0f32, 30.0, 50.0] {
            print!("{:<14}{:>6}", fault.name(), percent);
            for technique in [TechniqueKind::Baseline, TechniqueKind::Ensemble] {
                let result = runner.run(&ExperimentConfig {
                    dataset: DatasetKind::Cifar10,
                    model: ModelKind::ConvNet,
                    technique,
                    fault_plan: FaultPlan::single(fault, percent),
                    scale,
                    repetitions: scale.repetitions(),
                    seed: 5,
                });
                print!("{:>15.1}%", 100.0 * result.ad.mean);
            }
            println!();
        }
    }
    println!(
        "\nExpected shape (paper Sections IV-B/C): mislabelling dominates; removal and\n\
         repetition are mild; the ensemble column is consistently lower."
    );
}
