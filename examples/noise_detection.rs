//! Extension scenario: *detecting* mislabelled training data instead of
//! tolerating it — the strategy the paper scopes out in Section III-A,
//! implemented here as a confident-learning-style detector.
//!
//! Run with: `cargo run --release --example noise_detection`

use tdfm::core::detect::NoiseDetector;
use tdfm::core::technique::TrainContext;
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    println!("noise detection at scale '{scale}'\n");

    let data = DatasetKind::Cifar10.generate(scale, 6);
    let plan = FaultPlan::single(FaultKind::Mislabelling, 25.0);
    let (faulty, report) = Injector::new(6).apply(&data.train, &plan);
    println!(
        "training set: {} samples, {} secretly mislabelled",
        faulty.len(),
        report.mislabelled
    );

    let mut ctx = TrainContext::new(scale, 6);
    ctx.tune_for(faulty.len());
    let detector = NoiseDetector::new(3, ModelKind::ConvNet);
    let detection = detector.detect(&faulty, &ctx);
    let quality = detection.evaluate(&report.mislabelled_indices);

    println!("detector flagged {} samples", detection.suspects.len());
    println!(
        "precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * quality.precision,
        100.0 * quality.recall,
        100.0 * quality.f1
    );

    // Show the five most suspicious samples and whether they really were
    // corrupted.
    let truth: std::collections::HashSet<usize> =
        report.mislabelled_indices.iter().copied().collect();
    println!("\nmost suspicious samples:");
    for &i in detection.suspects.iter().take(5) {
        println!(
            "  sample {:>4}  label {}  margin {:.2}  actually mislabelled: {}",
            i,
            faulty.labels()[i],
            detection.scores[i],
            truth.contains(&i)
        );
    }
    println!(
        "\nDetection complements the paper's mitigation techniques: filtering the\n\
         flagged samples before training is compared against them in\n\
         `cargo run --release -p tdfm-bench --bin detector`."
    );
}
