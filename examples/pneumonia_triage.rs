//! The paper's motivating scenario (Section II): a pneumonia-screening
//! model trained on partially mislabelled X-rays, and what that does to
//! patients.
//!
//! Class 0 = normal, class 1 = pneumonia. A *false negative* (pneumonia
//! read as normal) leaves a patient untreated; a *false positive* subjects
//! a healthy patient to unnecessary procedures.
//!
//! Run with: `cargo run --release --example pneumonia_triage`

use tdfm::core::technique::{Baseline, Ensemble, Mitigation, TrainContext};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::ModelKind;

fn triage(preds: &[u32], labels: &[u32]) -> (usize, usize) {
    let mut false_neg = 0;
    let mut false_pos = 0;
    for (&p, &l) in preds.iter().zip(labels) {
        if l == 1 && p == 0 {
            false_neg += 1;
        }
        if l == 0 && p == 1 {
            false_pos += 1;
        }
    }
    (false_neg, false_pos)
}

fn main() {
    let scale = Scale::from_env();
    println!("pneumonia triage at scale '{scale}'\n");
    let data = DatasetKind::Pneumonia.generate(scale, 2);
    let mut ctx = TrainContext::new(scale, 2);
    ctx.tune_for(data.train.len());

    // Golden model: trained on the expert-verified dataset.
    let mut golden = Baseline.fit(ModelKind::ResNet50, &data.train, &ctx);
    let golden_preds = golden.predict(data.test.images());
    let (fn0, fp0) = triage(&golden_preds, data.test.labels());
    println!(
        "golden ResNet50  : {:.0}% accurate, {} untreated pneumonia, {} unnecessary procedures",
        100.0 * golden.accuracy(&data.test),
        fn0,
        fp0
    );

    // 10% of labels corrupted — within the 7.4-20% range reported for
    // public medical datasets.
    let plan = FaultPlan::single(FaultKind::Mislabelling, 10.0);
    let (faulty_train, _) = Injector::new(2).apply(&data.train, &plan);
    let mut faulty = Baseline.fit(ModelKind::ResNet50, &faulty_train, &ctx);
    let faulty_preds = faulty.predict(data.test.images());
    let (fn1, fp1) = triage(&faulty_preds, data.test.labels());
    println!(
        "faulty ResNet50  : {:.0}% accurate, {} untreated pneumonia, {} unnecessary procedures",
        100.0 * faulty.accuracy(&data.test),
        fn1,
        fp1
    );

    // The paper's most resilient technique: a heterogeneous ensemble.
    let mut protected = Ensemble::paper_default().fit(ModelKind::ResNet50, &faulty_train, &ctx);
    let protected_preds = protected.predict(data.test.images());
    let (fn2, fp2) = triage(&protected_preds, data.test.labels());
    println!(
        "ensemble (5 nets): {:.0}% accurate, {} untreated pneumonia, {} unnecessary procedures",
        100.0 * protected.accuracy(&data.test),
        fn2,
        fp2
    );

    println!(
        "\naccuracy delta vs golden: unprotected {:.1}%, ensemble {:.1}%",
        100.0 * tdfm::core::accuracy_delta(&golden_preds, &faulty_preds, data.test.labels()),
        100.0 * tdfm::core::accuracy_delta(&golden_preds, &protected_preds, data.test.labels()),
    );
}
