#![forbid(unsafe_code)]
//! # tdfm-inject
//!
//! A deterministic training-data fault injector — the reproduction's
//! equivalent of the TF-DM tool the paper uses (reference \[51\]).
//!
//! Three fault types are injected into *training* data (never test data),
//! matching Section I of the paper:
//!
//! * **Mislabelling** — a fraction of samples get a different label,
//!   uniformly at random over the other classes.
//! * **Repetition** — a fraction of input–output pairs are duplicated.
//! * **Removal** — a fraction of samples are deleted.
//!
//! [`FaultPlan`]s can combine fault types (the paper's Section IV-C
//! experiments). [`split_clean`] reserves the clean subset label
//! correction requires (Section III-B2). Every injection is reproducible
//! from a seed and returns an [`InjectionReport`] with exact counts.
//!
//! The [`model`] module extends the study to the second fault axis
//! (ROADMAP item 1): SEU-style bit-flips in model weights and activations,
//! configured by [`model::ModelFaultPlan`] at multiple resolutions.
//!
//! # Examples
//!
//! ```
//! use tdfm_inject::{FaultKind, FaultPlan, Injector};
//! use tdfm_data::LabeledDataset;
//! use tdfm_tensor::Tensor;
//!
//! let ds = LabeledDataset::new(Tensor::zeros(&[10, 1, 4, 4]), vec![0; 10], 2);
//! let plan = FaultPlan::single(FaultKind::Mislabelling, 30.0);
//! let (faulty, report) = Injector::new(42).apply(&ds, &plan);
//! assert_eq!(report.mislabelled, 3);
//! assert_eq!(faulty.len(), 10);
//! ```

mod fault;
mod injector;
pub mod model;
pub mod provenance;
mod shard;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use injector::{split_clean, InjectionReport, Injector};
pub use provenance::{FaultRecord, ProvenanceBuilder};
pub use shard::ShardFaultPlan;
