//! The injector itself: applies a [`FaultPlan`] to a dataset.

use crate::provenance::{bucket_label, FaultRecord, ProvenanceBuilder};
use crate::{FaultKind, FaultPlan};
use tdfm_data::LabeledDataset;
use tdfm_json::json_struct;
use tdfm_tensor::rng::Rng;

/// Exact record of what one injection did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Samples whose label was flipped.
    pub mislabelled: usize,
    /// Samples duplicated (appended to the dataset).
    pub repeated: usize,
    /// Samples deleted.
    pub removed: usize,
    /// Dataset size before injection.
    pub before: usize,
    /// Dataset size after injection.
    pub after: usize,
    /// Positions (in the dataset as it was when the mislabelling step ran)
    /// whose labels were flipped — the ground truth that noise *detectors*
    /// are scored against.
    pub mislabelled_indices: Vec<usize>,
    /// Aggregated provenance: per-kind fault counts, with mislabelling
    /// victims bucketed by sample index (see [`crate::provenance`]). The
    /// experiment runner lifts these into the run manifest.
    pub records: Vec<FaultRecord>,
}

json_struct!(InjectionReport {
    mislabelled,
    repeated,
    removed,
    before,
    after,
    mislabelled_indices,
    records = default
});

/// Deterministic fault injector (the TF-DM analogue).
///
/// The same `(seed, dataset, plan)` triple always produces the same faulty
/// dataset, which is what lets the experiment runner replay any repetition
/// of the study.
#[derive(Debug, Clone)]
pub struct Injector {
    seed: u64,
}

impl Injector {
    /// Creates an injector with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Applies every fault in the plan, in order, returning the faulty
    /// dataset and a report of exact counts.
    ///
    /// Mislabelling flips `round(p% * N)` distinct labels to a uniformly
    /// random *different* class. Repetition appends `round(p% * N)`
    /// duplicated records. Removal deletes `round(p% * N)` records (always
    /// leaving at least one).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, or if mislabelling is requested on a
    /// single-class dataset (no different label exists).
    pub fn apply(
        &self,
        dataset: &LabeledDataset,
        plan: &FaultPlan,
    ) -> (LabeledDataset, InjectionReport) {
        assert!(!dataset.is_empty(), "cannot inject into an empty dataset");
        let mut current = dataset.clone();
        let mut report = InjectionReport {
            before: dataset.len(),
            ..Default::default()
        };
        let rng = Rng::seed_from(self.seed ^ 0xFA_017);
        let mut provenance = ProvenanceBuilder::new();
        for (i, spec) in plan.specs().iter().enumerate() {
            let mut stream = rng.derive(i as u64);
            let count = spec.count(current.len());
            let kind = spec.kind.name();
            match spec.kind {
                FaultKind::Mislabelling => {
                    let (next, victims) = mislabel(&current, count, &mut stream);
                    current = next;
                    // `victims.len()`, not `count`: mislabel clamps to the
                    // dataset length, and the report must state what
                    // actually happened (detectors are scored against it).
                    report.mislabelled += victims.len();
                    for &v in &victims {
                        provenance.add(kind, "-", 0, 0, &bucket_label(v), 1);
                    }
                    report.mislabelled_indices.extend(victims);
                }
                FaultKind::PairFlipMislabelling => {
                    let (next, victims) = pair_flip(&current, count, &mut stream);
                    current = next;
                    report.mislabelled += victims.len();
                    for &v in &victims {
                        provenance.add(kind, "-", 0, 0, &bucket_label(v), 1);
                    }
                    report.mislabelled_indices.extend(victims);
                }
                FaultKind::Repetition => {
                    current = repeat(&current, count, &mut stream);
                    report.repeated += count;
                    // Duplicates are drawn with replacement and appended;
                    // their sources are not per-sample ground truth, so
                    // the record stays dataset-wide.
                    provenance.add(kind, "-", 0, 0, "-", count as u64);
                }
                FaultKind::Removal => {
                    let removable = count.min(current.len().saturating_sub(1));
                    current = remove(&current, removable, &mut stream);
                    report.removed += removable;
                    provenance.add(kind, "-", 0, 0, "-", removable as u64);
                }
            }
        }
        report.after = current.len();
        report.records = provenance.records();
        (current, report)
    }
}

fn mislabel(ds: &LabeledDataset, count: usize, rng: &mut Rng) -> (LabeledDataset, Vec<usize>) {
    if count == 0 {
        return (ds.clone(), Vec::new());
    }
    assert!(ds.classes() > 1, "mislabelling needs at least two classes");
    let victims = rng.sample_indices(ds.len(), count.min(ds.len()));
    let mut labels = ds.labels().to_vec();
    for &v in &victims {
        let old = labels[v];
        // Uniform over the *other* classes.
        let mut new = rng.below(ds.classes() - 1) as u32;
        if new >= old {
            new += 1;
        }
        labels[v] = new;
    }
    (ds.with_labels(labels), victims)
}

fn pair_flip(ds: &LabeledDataset, count: usize, rng: &mut Rng) -> (LabeledDataset, Vec<usize>) {
    if count == 0 {
        return (ds.clone(), Vec::new());
    }
    assert!(
        ds.classes() > 1,
        "pair-flip mislabelling needs at least two classes"
    );
    let victims = rng.sample_indices(ds.len(), count.min(ds.len()));
    let mut labels = ds.labels().to_vec();
    for &v in &victims {
        labels[v] = (labels[v] + 1) % ds.classes() as u32;
    }
    (ds.with_labels(labels), victims)
}

fn repeat(ds: &LabeledDataset, count: usize, rng: &mut Rng) -> LabeledDataset {
    if count == 0 {
        return ds.clone();
    }
    let mut indices: Vec<usize> = (0..ds.len()).collect();
    // Duplicate `count` randomly chosen records (with replacement, like a
    // data pipeline reading some shards twice).
    for _ in 0..count {
        indices.push(rng.below(ds.len()));
    }
    ds.select(&indices)
}

fn remove(ds: &LabeledDataset, count: usize, rng: &mut Rng) -> LabeledDataset {
    if count == 0 {
        return ds.clone();
    }
    let doomed: std::collections::HashSet<usize> =
        rng.sample_indices(ds.len(), count).into_iter().collect();
    let keep: Vec<usize> = (0..ds.len()).filter(|i| !doomed.contains(i)).collect();
    ds.select(&keep)
}

/// Reserves a clean fraction `gamma` of the dataset before injection — the
/// clean subset label correction trains its secondary model on
/// (Section III-B2).
///
/// Returns `(clean, rest)`; the injector should only ever see `rest`.
/// Sampling is uniform without replacement, so class proportions are
/// preserved in expectation.
///
/// # Panics
///
/// Panics unless `0 < gamma < 1` and both parts end up non-empty.
pub fn split_clean(
    dataset: &LabeledDataset,
    gamma: f32,
    seed: u64,
) -> (LabeledDataset, LabeledDataset) {
    assert!(
        gamma > 0.0 && gamma < 1.0,
        "gamma must be in (0, 1), got {gamma}"
    );
    let n = dataset.len();
    let k = (((gamma * n as f32).round() as usize).max(1)).min(n - 1);
    let mut rng = Rng::seed_from(seed ^ 0x000C_1EA4);
    let clean_idx = rng.sample_indices(n, k);
    let clean_set: std::collections::HashSet<usize> = clean_idx.iter().copied().collect();
    let rest_idx: Vec<usize> = (0..n).filter(|i| !clean_set.contains(i)).collect();
    (dataset.select(&clean_idx), dataset.select(&rest_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::Tensor;

    fn dataset(n: usize, classes: usize) -> LabeledDataset {
        let images = Tensor::from_vec((0..n * 4).map(|v| v as f32).collect(), &[n, 1, 2, 2]);
        let labels = (0..n).map(|i| (i % classes) as u32).collect();
        LabeledDataset::new(images, labels, classes)
    }

    #[test]
    fn mislabelling_flips_exact_count_to_different_classes() {
        let ds = dataset(100, 5);
        let plan = FaultPlan::single(FaultKind::Mislabelling, 30.0);
        let (faulty, report) = Injector::new(1).apply(&ds, &plan);
        assert_eq!(report.mislabelled, 30);
        let flipped: Vec<usize> = ds
            .labels()
            .iter()
            .zip(faulty.labels())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flipped.len(), 30);
        // The report names exactly the flipped positions.
        let mut reported = report.mislabelled_indices.clone();
        reported.sort_unstable();
        assert_eq!(reported, flipped);
        assert_eq!(faulty.len(), 100);
        // Images untouched.
        assert_eq!(faulty.images().data(), ds.images().data());
    }

    #[test]
    fn repetition_appends_duplicates() {
        let ds = dataset(50, 2);
        let plan = FaultPlan::single(FaultKind::Repetition, 20.0);
        let (faulty, report) = Injector::new(2).apply(&ds, &plan);
        assert_eq!(report.repeated, 10);
        assert_eq!(faulty.len(), 60);
        // Originals preserved as a prefix.
        assert_eq!(&faulty.images().data()[..50 * 4], ds.images().data());
        assert_eq!(&faulty.labels()[..50], ds.labels());
    }

    #[test]
    fn removal_deletes_exact_count() {
        let ds = dataset(40, 4);
        let plan = FaultPlan::single(FaultKind::Removal, 50.0);
        let (faulty, report) = Injector::new(3).apply(&ds, &plan);
        assert_eq!(report.removed, 20);
        assert_eq!(faulty.len(), 20);
    }

    #[test]
    fn removal_never_empties_dataset() {
        let ds = dataset(2, 2);
        let plan = FaultPlan::single(FaultKind::Removal, 100.0);
        let (faulty, _) = Injector::new(4).apply(&ds, &plan);
        assert_eq!(faulty.len(), 1);
    }

    #[test]
    fn combined_plan_applies_in_order() {
        let ds = dataset(100, 4);
        let plan = FaultPlan::single(FaultKind::Mislabelling, 10.0).and(FaultKind::Removal, 10.0);
        let (faulty, report) = Injector::new(5).apply(&ds, &plan);
        assert_eq!(report.mislabelled, 10);
        assert_eq!(report.removed, 10);
        assert_eq!(faulty.len(), 90);
        assert_eq!(report.before, 100);
        assert_eq!(report.after, 90);
    }

    #[test]
    fn injection_is_deterministic() {
        let ds = dataset(60, 3);
        let plan = FaultPlan::single(FaultKind::Mislabelling, 25.0);
        let (a, _) = Injector::new(9).apply(&ds, &plan);
        let (b, _) = Injector::new(9).apply(&ds, &plan);
        assert_eq!(a, b);
        let (c, _) = Injector::new(10).apply(&ds, &plan);
        assert_ne!(a.labels(), c.labels());
    }

    #[test]
    fn clean_plan_is_identity() {
        let ds = dataset(10, 2);
        let (faulty, report) = Injector::new(0).apply(&ds, &FaultPlan::none());
        assert_eq!(faulty, ds);
        assert_eq!(report.after, report.before);
    }

    #[test]
    fn pair_flip_is_deterministic_per_class() {
        let ds = dataset(60, 3);
        let plan = FaultPlan::single(FaultKind::PairFlipMislabelling, 50.0);
        let (faulty, report) = Injector::new(6).apply(&ds, &plan);
        assert_eq!(report.mislabelled, 30);
        // Every flip follows k -> (k+1) mod K.
        for (&old, &new) in ds.labels().iter().zip(faulty.labels()) {
            if old != new {
                assert_eq!(new, (old + 1) % 3);
            }
        }
        let flipped = ds
            .labels()
            .iter()
            .zip(faulty.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(flipped, 30);
    }

    #[test]
    fn split_clean_partitions() {
        let ds = dataset(100, 4);
        let (clean, rest) = split_clean(&ds, 0.1, 7);
        assert_eq!(clean.len(), 10);
        assert_eq!(rest.len(), 90);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1)")]
    fn bad_gamma_rejected() {
        let ds = dataset(10, 2);
        let _ = split_clean(&ds, 1.5, 0);
    }

    #[test]
    fn mislabel_count_matches_formula() {
        let mut rng = Rng::seed_from(0x11);
        for _ in 0..32 {
            let n = 2 + rng.below(148);
            let pct = rng.uniform(0.0, 100.0);
            let seed = rng.next_u64() % 100;
            let ds = dataset(n, 4);
            let plan = FaultPlan::single(FaultKind::Mislabelling, pct);
            let (faulty, report) = Injector::new(seed).apply(&ds, &plan);
            let expect = ((pct / 100.0) * n as f32).round() as usize;
            assert_eq!(report.mislabelled, expect.min(n));
            let flipped = ds
                .labels()
                .iter()
                .zip(faulty.labels())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(flipped, expect.min(n));
        }
    }

    #[test]
    fn clamped_counts_are_reported_exactly() {
        // `FaultSpec`'s fields are public and `json_struct!` deserialization
        // bypasses `FaultSpec::new`'s range assert, so a plan arriving from
        // JSON can carry percent > 100: the rounded count then exceeds the
        // dataset length and `mislabel`/`pair_flip` clamp the victim set.
        // The report must state what actually happened (victims.len()), not
        // the requested count — the seed's `+= count` over-reported here.
        let json = r#"{"specs": [
            {"kind": "Mislabelling", "percent": 150.0},
            {"kind": "PairFlipMislabelling", "percent": 120.0}
        ]}"#;
        let plan: FaultPlan = tdfm_json::from_str(json).expect("plan parses");
        let ds = dataset(20, 4);
        let (faulty, report) = Injector::new(8).apply(&ds, &plan);
        // Both steps clamp to the full dataset: 20 + 20 flips, not 30 + 24.
        assert_eq!(report.mislabelled, 40);
        assert_eq!(report.mislabelled_indices.len(), report.mislabelled);
        assert_eq!(faulty.len(), 20);
        assert_eq!(report.before, 20);
        assert_eq!(report.after, 20);
    }

    #[test]
    #[should_panic(expected = "pair-flip mislabelling needs at least two classes")]
    fn pair_flip_single_class_names_itself() {
        let ds = dataset(10, 1);
        let plan = FaultPlan::single(FaultKind::PairFlipMislabelling, 50.0);
        let _ = Injector::new(0).apply(&ds, &plan);
    }

    #[test]
    fn removal_then_repetition_size_algebra() {
        let mut rng = Rng::seed_from(0x12);
        for _ in 0..32 {
            let n = 4 + rng.below(96);
            let rm = rng.uniform(0.0, 60.0);
            let rp = rng.uniform(0.0, 60.0);
            let seed = rng.next_u64() % 50;
            let ds = dataset(n, 3);
            let plan = FaultPlan::single(FaultKind::Removal, rm).and(FaultKind::Repetition, rp);
            let (faulty, report) = Injector::new(seed).apply(&ds, &plan);
            assert_eq!(faulty.len(), n - report.removed + report.repeated);
        }
    }

    #[test]
    fn repetition_only_adds_existing_images() {
        let mut rng = Rng::seed_from(0x13);
        for _ in 0..16 {
            let n = 2 + rng.below(38);
            let pct = rng.uniform(1.0, 80.0);
            let seed = rng.next_u64() % 50;
            let ds = dataset(n, 2);
            let plan = FaultPlan::single(FaultKind::Repetition, pct);
            let (faulty, _) = Injector::new(seed).apply(&ds, &plan);
            // Every appended image must equal one of the originals.
            let pix = 4;
            for i in n..faulty.len() {
                let img = &faulty.images().data()[i * pix..(i + 1) * pix];
                let found = (0..n).any(|j| &ds.images().data()[j * pix..(j + 1) * pix] == img);
                assert!(found);
            }
        }
    }
}
