//! Fault taxonomy: kinds, amounts and plans.

use tdfm_json::{json_struct, json_unit_enum};

/// The training-data fault types: the paper's three (Section I) plus a
/// class-dependent mislabelling extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Data is erroneously labelled (uniformly random wrong class).
    Mislabelling,
    /// Input–output pairs are repeated.
    Repetition,
    /// A fraction of the data is deleted.
    Removal,
    /// *Extension*: class-dependent ("pair-flip") mislabelling — class `k`
    /// is always relabelled `k+1 mod K`, modelling systematic annotator
    /// confusion between similar classes rather than the paper's uniform
    /// noise. Not part of [`FaultKind::ALL`].
    PairFlipMislabelling,
}

json_unit_enum!(FaultKind {
    Mislabelling,
    Repetition,
    Removal,
    PairFlipMislabelling
});

impl FaultKind {
    /// The paper's three fault kinds, in its order (the pair-flip
    /// extension is excluded).
    pub const ALL: [FaultKind; 3] = [
        FaultKind::Mislabelling,
        FaultKind::Repetition,
        FaultKind::Removal,
    ];

    /// Name as printed in the paper (extensions use their own names).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Mislabelling => "Mislabelling",
            FaultKind::Repetition => "Repetition",
            FaultKind::Removal => "Removal",
            FaultKind::PairFlipMislabelling => "PairFlip",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault type at one injection amount.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Percentage of the training set affected (the paper sweeps 10, 30
    /// and 50).
    pub percent: f32,
}

json_struct!(FaultSpec { kind, percent });

impl FaultSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= percent <= 100`.
    pub fn new(kind: FaultKind, percent: f32) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "fault percentage must be in [0, 100], got {percent}"
        );
        Self { kind, percent }
    }

    /// Number of affected samples in a dataset of `n` records.
    pub fn count(&self, n: usize) -> usize {
        ((self.percent / 100.0) * n as f32).round() as usize
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}%", self.kind, self.percent)
    }
}

/// A set of faults injected together (Section IV-C combines fault types).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

json_struct!(FaultPlan { specs });

impl FaultPlan {
    /// A plan injecting nothing (the golden model's "plan").
    pub fn none() -> Self {
        Self::default()
    }

    /// A single-fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the percentage is out of range.
    pub fn single(kind: FaultKind, percent: f32) -> Self {
        Self {
            specs: vec![FaultSpec::new(kind, percent)],
        }
    }

    /// Builds a plan from several specs.
    pub fn combined(specs: Vec<FaultSpec>) -> Self {
        Self { specs }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn and(mut self, kind: FaultKind, percent: f32) -> Self {
        self.specs.push(FaultSpec::new(kind, percent));
        self
    }

    /// The planned faults in injection order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// `true` when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.specs.iter().all(|s| s.percent == 0.0)
    }

    /// Short label like `"Mislabelling 30%"` or `"clean"`.
    pub fn label(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        self.specs
            .iter()
            .filter(|s| s.percent > 0.0)
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_rounds_to_nearest() {
        assert_eq!(FaultSpec::new(FaultKind::Mislabelling, 10.0).count(100), 10);
        assert_eq!(FaultSpec::new(FaultKind::Removal, 33.0).count(10), 3);
        assert_eq!(FaultSpec::new(FaultKind::Repetition, 50.0).count(3), 2);
        assert_eq!(FaultSpec::new(FaultKind::Removal, 0.0).count(100), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn out_of_range_percent_rejected() {
        let _ = FaultSpec::new(FaultKind::Removal, 101.0);
    }

    #[test]
    fn plan_labels() {
        assert_eq!(FaultPlan::none().label(), "clean");
        assert_eq!(
            FaultPlan::single(FaultKind::Mislabelling, 30.0).label(),
            "Mislabelling 30%"
        );
        assert_eq!(
            FaultPlan::single(FaultKind::Mislabelling, 10.0)
                .and(FaultKind::Removal, 20.0)
                .label(),
            "Mislabelling 10% + Removal 20%"
        );
    }

    #[test]
    fn clean_plan_detection() {
        assert!(FaultPlan::none().is_clean());
        assert!(FaultPlan::single(FaultKind::Removal, 0.0).is_clean());
        assert!(!FaultPlan::single(FaultKind::Removal, 1.0).is_clean());
    }
}
