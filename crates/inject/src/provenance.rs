//! Injection provenance: aggregated records of which faults fired where.
//!
//! An [`crate::InjectionReport`] says *how many* faults an injection
//! performed; provenance says *where they landed*, in a shape coarse
//! enough to ship in every run manifest. Each [`FaultRecord`] is one
//! aggregated count keyed by fault kind, target (a parameter tensor or
//! layer for model faults, `"-"` for dataset-wide data faults), the
//! inclusive bit range flipped, and a sample-index bucket (data faults
//! bucket their victim positions into [`SAMPLE_BUCKET`]-wide ranges so a
//! manifest stays small however large the dataset is).
//!
//! The experiment runners in `tdfm-core` collect these per cell, join
//! them against the cell's accuracy delta, and write the result into the
//! run manifest's provenance section — the manifest then answers "which
//! faults mattered", not just "how many fired".

use crate::model::FaultInstance;
use std::collections::BTreeMap;
use tdfm_json::json_struct;

/// Width of the sample-index buckets data-fault records use. Victim
/// position `i` lands in bucket `i / SAMPLE_BUCKET`, labelled
/// `"idx 64-127"` style.
pub const SAMPLE_BUCKET: usize = 64;

/// One aggregated provenance record: `count` faults of `kind` landed on
/// `target`, within `bit_lo..=bit_hi` (bit-flips) and `bucket` (data
/// faults). Fields that do not apply hold `"-"` (targets/buckets) or
/// `0..=0` (bit ranges of data faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault kind: a data [`crate::FaultKind`] name (`"Mislabelling"`,
    /// `"PairFlip"`, `"Repetition"`, `"Removal"`) or `"bitflip"` for
    /// model faults.
    pub kind: String,
    /// What was hit: `"tensor 3"` / `"all layers"` / `"layers[1, 2]"` for
    /// model faults, `"-"` for data faults (the dataset as a whole).
    pub target: String,
    /// Lowest bit flipped (inclusive; 0 for data faults).
    pub bit_lo: u32,
    /// Highest bit flipped (inclusive; 0 for data faults).
    pub bit_hi: u32,
    /// Sample-index bucket (`"idx 0-63"`) for faults with known victim
    /// positions, `"-"` otherwise.
    pub bucket: String,
    /// Number of faults that actually fired with this key.
    pub count: u64,
}

json_struct!(FaultRecord {
    kind,
    target,
    bit_lo,
    bit_hi,
    bucket,
    count
});

/// Label of the sample-index bucket containing position `index`.
pub fn bucket_label(index: usize) -> String {
    let lo = (index / SAMPLE_BUCKET) * SAMPLE_BUCKET;
    format!("idx {}-{}", lo, lo + SAMPLE_BUCKET - 1)
}

/// Accumulates [`FaultRecord`]s, merging counts that share a key.
///
/// Iteration order of [`ProvenanceBuilder::records`] is the `BTreeMap`
/// order of the key tuple, so provenance sections are deterministic
/// however the counts arrived (worker threads, repeated repetitions).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceBuilder {
    counts: BTreeMap<(String, String, u32, u32, String), u64>,
}

impl ProvenanceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` faults under the given key.
    pub fn add(
        &mut self,
        kind: &str,
        target: &str,
        bit_lo: u32,
        bit_hi: u32,
        bucket: &str,
        count: u64,
    ) {
        if count == 0 {
            return;
        }
        *self
            .counts
            .entry((
                kind.to_string(),
                target.to_string(),
                bit_lo,
                bit_hi,
                bucket.to_string(),
            ))
            .or_insert(0) += count;
    }

    /// Merges whole records (e.g. another builder's output).
    pub fn extend(&mut self, records: &[FaultRecord]) {
        for r in records {
            self.add(&r.kind, &r.target, r.bit_lo, r.bit_hi, &r.bucket, r.count);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The aggregated records, in deterministic key order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.counts
            .iter()
            .map(
                |((kind, target, bit_lo, bit_hi, bucket), &count)| FaultRecord {
                    kind: kind.clone(),
                    target: target.clone(),
                    bit_lo: *bit_lo,
                    bit_hi: *bit_hi,
                    bucket: bucket.clone(),
                    count,
                },
            )
            .collect()
    }
}

/// Aggregates concrete weight-fault instances into per-(tensor, bit)
/// records — the provenance of a weight campaign. Exhaustive campaigns
/// collapse from `numel × bits` instances to at most `tensors × 32`
/// records.
pub fn weight_provenance(instances: &[FaultInstance]) -> Vec<FaultRecord> {
    let mut builder = ProvenanceBuilder::new();
    for instance in instances {
        for flip in &instance.flips {
            builder.add(
                "bitflip",
                &format!("tensor {}", flip.tensor),
                flip.bit,
                flip.bit,
                "-",
                1,
            );
        }
    }
    builder.records()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WeightFlip;

    #[test]
    fn bucket_labels_are_aligned_ranges() {
        assert_eq!(bucket_label(0), "idx 0-63");
        assert_eq!(bucket_label(63), "idx 0-63");
        assert_eq!(bucket_label(64), "idx 64-127");
        assert_eq!(bucket_label(1000), "idx 960-1023");
    }

    #[test]
    fn builder_merges_and_orders_deterministically() {
        let mut b = ProvenanceBuilder::new();
        b.add("Mislabelling", "-", 0, 0, "idx 64-127", 3);
        b.add("Mislabelling", "-", 0, 0, "idx 0-63", 2);
        b.add("Mislabelling", "-", 0, 0, "idx 64-127", 1);
        b.add("Removal", "-", 0, 0, "-", 0); // zero counts are dropped
        let records = b.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].bucket, "idx 0-63");
        assert_eq!(records[0].count, 2);
        assert_eq!(records[1].bucket, "idx 64-127");
        assert_eq!(records[1].count, 4);
    }

    #[test]
    fn weight_provenance_aggregates_by_tensor_and_bit() {
        let flip = |tensor, element, bit| WeightFlip {
            tensor,
            element,
            bit,
        };
        let instances = vec![
            FaultInstance {
                flips: vec![flip(0, 0, 30), flip(0, 1, 30), flip(1, 0, 5)],
            },
            FaultInstance {
                flips: vec![flip(0, 2, 30)],
            },
        ];
        let records = weight_provenance(&instances);
        assert_eq!(records.len(), 2);
        // BTreeMap order: ("bitflip", "tensor 0", 30, ...) < ("bitflip", "tensor 1", 5, ...).
        assert_eq!(records[0].target, "tensor 0");
        assert_eq!(records[0].bit_lo, 30);
        assert_eq!(records[0].count, 3);
        assert_eq!(records[1].target, "tensor 1");
        assert_eq!(records[1].count, 1);
    }

    #[test]
    fn fault_records_round_trip_through_json() {
        let records = vec![FaultRecord {
            kind: "bitflip".into(),
            target: "tensor 2".into(),
            bit_lo: 23,
            bit_hi: 30,
            bucket: "-".into(),
            count: 7,
        }];
        let json = tdfm_json::to_string(&records);
        let back: Vec<FaultRecord> = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back, records);
    }
}
