//! Shard-scoped label faults for distributed data-parallel training.
//!
//! At production scale training data arrives *sharded*, and a fault
//! typically afflicts one shard: one worker's labelling pipeline drifts,
//! one feed is corrupted. [`ShardFaultPlan`] scopes the existing label
//! injectors to a single shard of a [`LabeledDataset`] partition — the
//! fault model the Byzantine-robust aggregators in `tdfm-core` defend
//! against and the shard localizer is scored on.

use crate::{FaultKind, FaultPlan, InjectionReport, Injector};
use tdfm_data::LabeledDataset;
use tdfm_json::json_struct;

/// A label fault confined to one shard: mislabel that shard's labels at
/// `rate` percent (uniform or pair-flip). `rate == 0` means clean.
///
/// Only the label-preserving fault kinds are allowed — shard workers must
/// keep their sample counts, so `Repetition`/`Removal` are rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFaultPlan {
    /// Index of the victim shard.
    pub shard: usize,
    /// `Mislabelling` (uniform wrong class) or `PairFlipMislabelling`.
    pub kind: FaultKind,
    /// Percentage of the victim shard's labels flipped.
    pub rate: f32,
}

json_struct!(ShardFaultPlan { shard, kind, rate });

impl ShardFaultPlan {
    /// A plan injecting nothing.
    pub fn clean() -> Self {
        Self {
            shard: 0,
            kind: FaultKind::Mislabelling,
            rate: 0.0,
        }
    }

    /// Uniform mislabelling of `rate`% of shard `shard`'s labels.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 100`.
    pub fn mislabel(shard: usize, rate: f32) -> Self {
        Self::checked(shard, FaultKind::Mislabelling, rate)
    }

    /// Pair-flip mislabelling (`k -> k+1 mod K`) of `rate`% of shard
    /// `shard`'s labels.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 100`.
    pub fn pair_flip(shard: usize, rate: f32) -> Self {
        Self::checked(shard, FaultKind::PairFlipMislabelling, rate)
    }

    fn checked(shard: usize, kind: FaultKind, rate: f32) -> Self {
        assert!(
            (0.0..=100.0).contains(&rate),
            "shard fault rate must be in [0, 100], got {rate}"
        );
        Self { shard, kind, rate }
    }

    /// `true` when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.rate == 0.0
    }

    /// Short label like `"shard 2: Mislabelling 50%"` or `"clean"`.
    pub fn label(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        format!("shard {}: {} {}%", self.shard, self.kind, self.rate)
    }

    /// Applies the fault to the victim shard of an already-partitioned
    /// dataset, leaving every other shard untouched.
    ///
    /// Injection is deterministic in `(seed, shards, plan)`; the returned
    /// report's provenance records carry `"shard N"` as their target so a
    /// manifest can answer *which shard* was hit.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not clean and the shard index is out of range,
    /// or if the fault kind is not a mislabelling kind (shard faults must
    /// preserve shard sizes).
    pub fn apply(
        &self,
        shards: &[LabeledDataset],
        seed: u64,
    ) -> (Vec<LabeledDataset>, InjectionReport) {
        if self.is_clean() {
            return (shards.to_vec(), InjectionReport::default());
        }
        assert!(
            matches!(
                self.kind,
                FaultKind::Mislabelling | FaultKind::PairFlipMislabelling
            ),
            "shard faults must preserve shard sizes; {} does not",
            self.kind
        );
        assert!(
            self.shard < shards.len(),
            "victim shard {} out of range for {} shards",
            self.shard,
            shards.len()
        );
        let plan = FaultPlan::single(self.kind, self.rate);
        // Mix the shard index into the seed so moving the fault between
        // shards changes the victim sample stream too.
        let injector = Injector::new(seed ^ ((self.shard as u64 + 1) << 24));
        let mut out = shards.to_vec();
        let (faulty, mut report) = injector.apply(&out[self.shard], &plan);
        out[self.shard] = faulty;
        let target = format!("shard {}", self.shard);
        for r in &mut report.records {
            r.target.clone_from(&target);
        }
        (out, report)
    }
}

impl std::fmt::Display for ShardFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::Tensor;

    fn shards(n_per: usize, parts: usize) -> Vec<LabeledDataset> {
        let n = n_per * parts;
        let images = Tensor::from_vec((0..n * 4).map(|v| v as f32).collect(), &[n, 1, 2, 2]);
        let labels = (0..n).map(|i| (i % 4) as u32).collect();
        LabeledDataset::new(images, labels, 4).shards(parts)
    }

    #[test]
    fn only_the_victim_shard_changes() {
        let original = shards(20, 4);
        let plan = ShardFaultPlan::mislabel(2, 50.0);
        let (faulty, report) = plan.apply(&original, 7);
        assert_eq!(report.mislabelled, 10);
        for (w, (a, b)) in original.iter().zip(&faulty).enumerate() {
            if w == 2 {
                assert_ne!(a.labels(), b.labels());
            } else {
                assert_eq!(a, b);
            }
            assert_eq!(a.len(), b.len(), "shard sizes must be preserved");
        }
    }

    #[test]
    fn provenance_names_the_shard() {
        let original = shards(20, 4);
        let (_, report) = ShardFaultPlan::pair_flip(1, 30.0).apply(&original, 3);
        assert!(!report.records.is_empty());
        assert!(report.records.iter().all(|r| r.target == "shard 1"));
        assert!(report.records.iter().all(|r| r.kind == "PairFlip"));
    }

    #[test]
    fn clean_plan_is_identity() {
        let original = shards(10, 2);
        let (faulty, report) = ShardFaultPlan::clean().apply(&original, 9);
        assert_eq!(faulty, original);
        assert_eq!(report, InjectionReport::default());
        assert_eq!(ShardFaultPlan::clean().label(), "clean");
    }

    #[test]
    fn application_is_deterministic_and_seed_sensitive() {
        let original = shards(25, 2);
        let plan = ShardFaultPlan::mislabel(0, 40.0);
        let (a, _) = plan.apply(&original, 11);
        let (b, _) = plan.apply(&original, 11);
        assert_eq!(a, b);
        let (c, _) = plan.apply(&original, 12);
        assert_ne!(a[0].labels(), c[0].labels());
    }

    #[test]
    fn labels_read_well() {
        assert_eq!(
            ShardFaultPlan::mislabel(2, 50.0).label(),
            "shard 2: Mislabelling 50%"
        );
        assert_eq!(
            ShardFaultPlan::pair_flip(0, 30.0).label(),
            "shard 0: PairFlip 30%"
        );
    }

    #[test]
    #[should_panic(expected = "preserve shard sizes")]
    fn size_changing_kinds_rejected() {
        let original = shards(10, 2);
        let plan = ShardFaultPlan {
            shard: 0,
            kind: FaultKind::Removal,
            rate: 10.0,
        };
        let _ = plan.apply(&original, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_rejected() {
        let original = shards(10, 2);
        let _ = ShardFaultPlan::mislabel(5, 10.0).apply(&original, 0);
    }

    #[test]
    fn round_trips_through_json() {
        let plan = ShardFaultPlan::pair_flip(3, 50.0);
        let json = tdfm_json::to_string(&plan);
        let back: ShardFaultPlan = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
