//! Model-fault injection: SEU-style bit-flips in weights and activations.
//!
//! The paper studies *training-data* faults; this module adds the second
//! fault axis from ROADMAP item 1 — transient hardware faults corrupting
//! the *model* itself, in the style of MRFI's multi-resolution fault
//! configuration. A [`ModelFaultPlan`] names where faults land
//! ([`FaultSite`]), which tensors are in scope ([`TensorSelector`] — whole
//! model, per-layer, or per-parameter-tensor), which bits may flip
//! ([`BitRange`]), and how instances are generated ([`InjectionMode`] —
//! exhaustive enumeration or stochastic sampling from a seed).
//!
//! Weight faults are materialised as [`FaultInstance`]s — concrete flip
//! lists applied with [`apply_weight_faults`]. Because a bit-flip is an
//! XOR, applying the same instance twice restores the original weights
//! bit-exactly, so a harness can score a fault and undo it without
//! cloning the model. Activation faults install a forward hook on the
//! [`Network`] via [`install_activation_faults`].
//!
//! # Examples
//!
//! ```
//! use tdfm_inject::model::{apply_weight_faults, BitRange, InjectionMode, ModelFaultPlan};
//! use tdfm_nn::models::{ModelConfig, ModelKind};
//!
//! let cfg = ModelConfig { in_shape: (1, 4, 4), classes: 2, width: 2, seed: 0 };
//! let mut net = ModelKind::ConvNet.build(&cfg);
//! let plan = ModelFaultPlan::weights()
//!     .bits(BitRange::new(23, 30))
//!     .mode(InjectionMode::Stochastic { flips: 3, seed: 7 });
//! let instances = plan.weight_instances(&mut net);
//! assert_eq!(instances.len(), 1);
//! let report = apply_weight_faults(&mut net, &instances[0]);
//! assert_eq!(report.flipped, 3);
//! apply_weight_faults(&mut net, &instances[0]); // XOR undo
//! ```

use tdfm_json::json_struct;
use tdfm_nn::{ActivationHook, Network};
use tdfm_tensor::bitops::{bitflip_f32, BitField, F32_BITS};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// Where a model fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bits of stored weights (persistent until undone).
    Weights,
    /// Bits of layer outputs during forward passes (transient, re-drawn
    /// per forward call).
    Activations,
}

impl FaultSite {
    /// Short label used in plan labels and result tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Weights => "weights",
            FaultSite::Activations => "activations",
        }
    }
}

/// Which tensors a plan touches — the multi-resolution selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorSelector {
    /// Every parameter tensor (weight faults) or every top-level layer
    /// output (activation faults).
    All,
    /// Only the named top-level layers (by position in the network body).
    /// For weight faults this resolves to those layers' parameter tensors
    /// via [`Network::layer_param_counts`].
    Layers(Vec<usize>),
    /// Only the named parameter tensors (by position in the flat
    /// `params_mut()` order). Invalid for activation faults.
    Params(Vec<usize>),
}

/// An inclusive range of bit positions eligible for flipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRange {
    lo: u32,
    hi: u32,
}

impl BitRange {
    /// All 32 bits.
    pub const FULL: BitRange = BitRange { lo: 0, hi: 31 };
    /// The exponent field (bits 23–30) — the catastrophic flips.
    pub const EXPONENT: BitRange = BitRange { lo: 23, hi: 30 };
    /// The mantissa field (bits 0–22) — small perturbations.
    pub const MANTISSA: BitRange = BitRange { lo: 0, hi: 22 };

    /// Creates a range covering bits `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < 32`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < F32_BITS, "invalid bit range {lo}..={hi}");
        Self { lo, hi }
    }

    /// Lowest eligible bit.
    pub fn lo(self) -> u32 {
        self.lo
    }

    /// Highest eligible bit (inclusive).
    pub fn hi(self) -> u32 {
        self.hi
    }

    /// Number of eligible bit positions.
    pub fn width(self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Uniform draw from the range.
    fn sample(self, rng: &mut Rng) -> u32 {
        self.lo + rng.below(self.width() as usize) as u32
    }
}

/// How fault instances are generated from a plan's scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionMode {
    /// One single-flip instance per (tensor, element, bit) in scope — the
    /// complete fault space, for small campaigns that score every
    /// possible upset. Weight faults only.
    Exhaustive,
    /// One instance of `flips` simultaneous flips drawn uniformly from
    /// the scope with `seed`. For activation faults, `flips` bits are
    /// re-drawn in every hooked tensor on every forward call.
    Stochastic {
        /// Simultaneous flips per instance (or per hooked activation).
        flips: usize,
        /// Seed of the sampling stream.
        seed: u64,
    },
}

/// A multi-resolution model-fault configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFaultPlan {
    /// Weights or activations.
    pub site: FaultSite,
    /// Tensors in scope.
    pub selector: TensorSelector,
    /// Bits eligible for flipping.
    pub bits: BitRange,
    /// Exhaustive enumeration or stochastic sampling.
    pub mode: InjectionMode,
}

impl ModelFaultPlan {
    /// A stochastic single-flip weight plan over the whole model — the
    /// smallest useful configuration; refine with the builder methods.
    pub fn weights() -> Self {
        Self {
            site: FaultSite::Weights,
            selector: TensorSelector::All,
            bits: BitRange::FULL,
            mode: InjectionMode::Stochastic { flips: 1, seed: 0 },
        }
    }

    /// A stochastic single-flip activation plan over every layer output.
    pub fn activations() -> Self {
        Self {
            site: FaultSite::Activations,
            ..Self::weights()
        }
    }

    /// Restricts the plan to `selector` (builder style).
    #[must_use]
    pub fn select(mut self, selector: TensorSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Restricts flips to `bits` (builder style).
    #[must_use]
    pub fn bits(mut self, bits: BitRange) -> Self {
        self.bits = bits;
        self
    }

    /// Sets the generation mode (builder style).
    #[must_use]
    pub fn mode(mut self, mode: InjectionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Short label like `"weights/all/bits 23-30/x3@seed7"` for result
    /// tables and manifests.
    pub fn label(&self) -> String {
        let scope = match &self.selector {
            TensorSelector::All => "all".to_string(),
            TensorSelector::Layers(l) => format!("layers{l:?}"),
            TensorSelector::Params(p) => format!("params{p:?}"),
        };
        let mode = match self.mode {
            InjectionMode::Exhaustive => "exhaustive".to_string(),
            InjectionMode::Stochastic { flips, seed } => format!("x{flips}@seed{seed}"),
        };
        format!(
            "{}/{}/bits {}-{}/{}",
            self.site.label(),
            scope,
            self.bits.lo(),
            self.bits.hi(),
            mode
        )
    }

    /// Re-seeds a stochastic plan (repetition `r` of an experiment derives
    /// `seed + r` so repetitions sample independent fault sets).
    ///
    /// Exhaustive plans are returned unchanged — their fault space does
    /// not depend on a seed.
    #[must_use]
    pub fn reseed(mut self, seed: u64) -> Self {
        if let InjectionMode::Stochastic { flips, .. } = self.mode {
            self.mode = InjectionMode::Stochastic { flips, seed };
        }
        self
    }

    /// Resolves the parameter tensors in scope for weight faults.
    ///
    /// # Panics
    ///
    /// Panics if the plan is an activation plan, if a selector index is
    /// out of range, or if the scope contains no parameters.
    fn weight_scope(&self, net: &mut Network) -> Vec<usize> {
        assert_eq!(self.site, FaultSite::Weights, "not a weight plan");
        let total = net.params_mut().len();
        let scope: Vec<usize> = match &self.selector {
            TensorSelector::All => (0..total).collect(),
            TensorSelector::Params(idx) => {
                for &i in idx {
                    assert!(i < total, "parameter tensor {i} out of range ({total})");
                }
                idx.clone()
            }
            TensorSelector::Layers(layers) => {
                let counts = net.layer_param_counts();
                let mut offsets = Vec::with_capacity(counts.len() + 1);
                let mut acc = 0usize;
                for &c in &counts {
                    offsets.push(acc);
                    acc += c;
                }
                let mut idx = Vec::new();
                for &l in layers {
                    assert!(
                        l < counts.len(),
                        "layer {l} out of range ({})",
                        counts.len()
                    );
                    idx.extend(offsets[l]..offsets[l] + counts[l]);
                }
                idx
            }
        };
        assert!(
            !scope.is_empty(),
            "plan scope contains no parameter tensors"
        );
        scope
    }

    /// Expands the plan into concrete weight-fault instances.
    ///
    /// Exhaustive mode yields one single-flip instance per
    /// (tensor, element, bit) in scope; stochastic mode yields one
    /// instance of `flips` simultaneous flips. Instances only hold
    /// positions — apply them with [`apply_weight_faults`].
    ///
    /// # Panics
    ///
    /// Panics if the plan targets activations or the scope is empty.
    pub fn weight_instances(&self, net: &mut Network) -> Vec<FaultInstance> {
        let scope = self.weight_scope(net);
        let sizes: Vec<usize> = {
            let params = net.params_mut();
            scope.iter().map(|&t| params[t].value.numel()).collect()
        };
        match self.mode {
            InjectionMode::Exhaustive => {
                let mut out = Vec::new();
                for (&tensor, &numel) in scope.iter().zip(&sizes) {
                    for element in 0..numel {
                        for bit in self.bits.lo()..=self.bits.hi() {
                            out.push(FaultInstance {
                                flips: vec![WeightFlip {
                                    tensor,
                                    element,
                                    bit,
                                }],
                            });
                        }
                    }
                }
                out
            }
            InjectionMode::Stochastic { flips, seed } => {
                let mut rng = Rng::seed_from(seed ^ 0x5EBF_11D5);
                let mut drawn = Vec::with_capacity(flips);
                for _ in 0..flips {
                    let pick = rng.below(scope.len());
                    drawn.push(WeightFlip {
                        tensor: scope[pick],
                        element: rng.below(sizes[pick]),
                        bit: self.bits.sample(&mut rng),
                    });
                }
                vec![FaultInstance { flips: drawn }]
            }
        }
    }
}

impl std::fmt::Display for ModelFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One bit-flip in one element of one parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightFlip {
    /// Position in the flat `params_mut()` order.
    pub tensor: usize,
    /// Element offset within the tensor's data.
    pub element: usize,
    /// Bit position (0 = mantissa LSB, 31 = sign).
    pub bit: u32,
}

/// A concrete set of simultaneous weight bit-flips.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultInstance {
    /// The flips, applied together.
    pub flips: Vec<WeightFlip>,
}

/// Exact record of what one weight-fault application did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelInjectionReport {
    /// Total bits flipped.
    pub flipped: usize,
    /// Flips that landed in mantissa bits.
    pub mantissa: usize,
    /// Flips that landed in exponent bits.
    pub exponent: usize,
    /// Flips that landed in the sign bit.
    pub sign: usize,
    /// Values that became non-finite (Inf/NaN) as a result.
    pub made_nonfinite: usize,
}

json_struct!(ModelInjectionReport {
    flipped,
    mantissa,
    exponent,
    sign,
    made_nonfinite
});

/// Applies `instance` to the network's weights, in place.
///
/// Calling it a second time with the same instance undoes the first call
/// bit-exactly (XOR involution) — the idiom harnesses use to score a
/// fault and restore the golden weights without cloning the model.
///
/// # Panics
///
/// Panics if a flip names a tensor, element or bit out of range.
pub fn apply_weight_faults(net: &mut Network, instance: &FaultInstance) -> ModelInjectionReport {
    let mut params = net.params_mut();
    let mut report = ModelInjectionReport::default();
    for flip in &instance.flips {
        assert!(
            flip.tensor < params.len(),
            "tensor {} out of range ({})",
            flip.tensor,
            params.len()
        );
        let data = params[flip.tensor].value.data_mut();
        let new = bitflip_f32(data[flip.element], flip.bit);
        if !new.is_finite() {
            report.made_nonfinite += 1;
        }
        data[flip.element] = new;
        report.flipped += 1;
        match BitField::of(flip.bit) {
            BitField::Mantissa => report.mantissa += 1,
            BitField::Exponent => report.exponent += 1,
            BitField::Sign => report.sign += 1,
        }
    }
    report
}

/// Installs an activation-fault hook built from `plan` on the network.
///
/// On every forward pass, each in-scope top-level layer output gets
/// `flips` random (element, bit) flips drawn from the plan's own stream.
/// The stream advances across calls, so repeated forwards see different
/// faults; results stay reproducible because evaluation batching is
/// deterministic. Remove with [`Network::clear_activation_hook`].
///
/// # Panics
///
/// Panics if the plan does not target activations, uses a `Params`
/// selector (activations are addressed by layer), or is exhaustive (the
/// activation fault space depends on the data and cannot be enumerated).
pub fn install_activation_faults(net: &mut Network, plan: &ModelFaultPlan) {
    net.set_activation_hook(activation_hook(plan));
}

/// Builds the activation-fault hook [`install_activation_faults`] installs.
///
/// # Panics
///
/// See [`install_activation_faults`].
pub fn activation_hook(plan: &ModelFaultPlan) -> ActivationHook {
    hook_with_counter(plan, None)
}

/// [`activation_hook`] plus a fired-flip counter: every bit actually
/// flipped in a hooked tensor bumps `counter`, so a harness can report
/// how many activation faults a scoring pass really injected (the hook
/// draws per forward call, so the count is not knowable from the plan
/// alone).
///
/// # Panics
///
/// See [`install_activation_faults`].
pub fn counting_activation_hook(
    plan: &ModelFaultPlan,
    counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
) -> ActivationHook {
    hook_with_counter(plan, Some(counter))
}

fn hook_with_counter(
    plan: &ModelFaultPlan,
    counter: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
) -> ActivationHook {
    assert_eq!(plan.site, FaultSite::Activations, "not an activation plan");
    let layers = match &plan.selector {
        TensorSelector::All => None,
        TensorSelector::Layers(l) => Some(l.clone()),
        TensorSelector::Params(_) => {
            panic!("activation faults are addressed by layer, not by parameter tensor")
        }
    };
    let InjectionMode::Stochastic { flips, seed } = plan.mode else {
        panic!("activation fault spaces depend on the data; use stochastic mode")
    };
    let bits = plan.bits;
    let mut rng = Rng::seed_from(seed ^ 0xAC71_F11D);
    Box::new(move |idx: usize, _name: &'static str, t: &mut Tensor| {
        if let Some(layers) = &layers {
            if !layers.contains(&idx) {
                return;
            }
        }
        let n = t.numel();
        if n == 0 {
            return;
        }
        let data = t.data_mut();
        for _ in 0..flips {
            let element = rng.below(n);
            data[element] = bitflip_f32(data[element], bits.sample(&mut rng));
        }
        if let Some(counter) = &counter {
            counter.fetch_add(flips as u64, std::sync::atomic::Ordering::Relaxed);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_nn::loss::CrossEntropy;
    use tdfm_nn::models::{ModelConfig, ModelKind};
    use tdfm_nn::trainer::{fit, FitConfig, TargetSource};

    fn tiny_net() -> Network {
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 1,
        };
        ModelKind::ConvNet.build(&cfg)
    }

    fn weight_bits(net: &mut Network) -> Vec<Vec<u32>> {
        net.params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn stochastic_weight_faults_apply_and_undo_bit_exactly() {
        let mut net = tiny_net();
        let before = weight_bits(&mut net);
        let plan = ModelFaultPlan::weights()
            .bits(BitRange::FULL)
            .mode(InjectionMode::Stochastic { flips: 8, seed: 3 });
        let instance = &plan.weight_instances(&mut net)[0];
        let report = apply_weight_faults(&mut net, instance);
        assert_eq!(report.flipped, 8);
        assert_ne!(weight_bits(&mut net), before, "faults must change bits");
        apply_weight_faults(&mut net, instance);
        assert_eq!(weight_bits(&mut net), before, "undo must be bit-exact");
    }

    #[test]
    fn stochastic_instances_are_deterministic_per_seed() {
        let mut net = tiny_net();
        let plan =
            |seed| ModelFaultPlan::weights().mode(InjectionMode::Stochastic { flips: 4, seed });
        assert_eq!(
            plan(5).weight_instances(&mut net),
            plan(5).weight_instances(&mut net)
        );
        assert_ne!(
            plan(5).weight_instances(&mut net),
            plan(6).weight_instances(&mut net)
        );
    }

    #[test]
    fn exhaustive_mode_enumerates_the_full_space() {
        let mut net = tiny_net();
        // Restrict to one small tensor and two bits to keep this exact.
        let sizes: Vec<usize> = net.params_mut().iter().map(|p| p.value.numel()).collect();
        let smallest = sizes
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap();
        let plan = ModelFaultPlan::weights()
            .select(TensorSelector::Params(vec![smallest]))
            .bits(BitRange::new(30, 31))
            .mode(InjectionMode::Exhaustive);
        let instances = plan.weight_instances(&mut net);
        assert_eq!(instances.len(), sizes[smallest] * 2);
        assert!(instances.iter().all(|i| i.flips.len() == 1));
        // Every instance is distinct.
        let set: std::collections::HashSet<_> = instances
            .iter()
            .map(|i| (i.flips[0].tensor, i.flips[0].element, i.flips[0].bit))
            .collect();
        assert_eq!(set.len(), instances.len());
    }

    #[test]
    fn layer_selector_resolves_to_that_layers_params() {
        let mut net = tiny_net();
        let counts = net.layer_param_counts();
        // Pick the first layer that owns parameters.
        let (layer, _) = counts
            .iter()
            .enumerate()
            .find(|(_, &c)| c > 0)
            .expect("some layer has params");
        let offset: usize = counts[..layer].iter().sum();
        let plan = ModelFaultPlan::weights()
            .select(TensorSelector::Layers(vec![layer]))
            .mode(InjectionMode::Stochastic { flips: 16, seed: 2 });
        let instance = &plan.weight_instances(&mut net)[0];
        for flip in &instance.flips {
            assert!(
                (offset..offset + counts[layer]).contains(&flip.tensor),
                "flip {flip:?} escaped layer {layer}"
            );
        }
    }

    #[test]
    fn report_classifies_bit_fields() {
        let mut net = tiny_net();
        let instance = FaultInstance {
            flips: vec![
                WeightFlip {
                    tensor: 0,
                    element: 0,
                    bit: 0,
                },
                WeightFlip {
                    tensor: 0,
                    element: 1,
                    bit: 25,
                },
                WeightFlip {
                    tensor: 0,
                    element: 2,
                    bit: 31,
                },
            ],
        };
        let report = apply_weight_faults(&mut net, &instance);
        assert_eq!(report.flipped, 3);
        assert_eq!(report.mantissa, 1);
        assert_eq!(report.exponent, 1);
        assert_eq!(report.sign, 1);
    }

    #[test]
    fn activation_faults_perturb_logits_deterministically() {
        let mut net = tiny_net();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[4, 1, 4, 4], 1.0, &mut rng);
        let clean = net.logits(&x, 4);
        let plan = ModelFaultPlan::activations()
            .bits(BitRange::new(28, 30))
            .mode(InjectionMode::Stochastic { flips: 4, seed: 11 });
        install_activation_faults(&mut net, &plan);
        let faulty = net.logits(&x, 4);
        let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
        assert_ne!(bits(&clean), bits(&faulty), "faults must perturb logits");
        // Reinstalling restarts the hook's stream: same faults, same output
        // (bit comparison — exponent flips legitimately produce NaN).
        install_activation_faults(&mut net, &plan);
        let again = net.logits(&x, 4);
        assert_eq!(bits(&faulty), bits(&again));
        net.clear_activation_hook();
        assert_eq!(net.logits(&x, 4).data(), clean.data());
    }

    #[test]
    fn activation_layer_selector_limits_scope() {
        let mut net = tiny_net();
        let mut rng = Rng::seed_from(10);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let clean = net.logits(&x, 2);
        // An empty layer set means the hook never fires.
        let plan = ModelFaultPlan::activations()
            .select(TensorSelector::Layers(vec![]))
            .mode(InjectionMode::Stochastic { flips: 64, seed: 1 });
        install_activation_faults(&mut net, &plan);
        assert_eq!(net.logits(&x, 2).data(), clean.data());
    }

    #[test]
    fn counting_hook_reports_fired_flips() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let mut net = tiny_net();
        let mut rng = Rng::seed_from(14);
        let x = Tensor::randn(&[4, 1, 4, 4], 1.0, &mut rng);
        let plan = ModelFaultPlan::activations()
            .bits(BitRange::MANTISSA)
            .mode(InjectionMode::Stochastic { flips: 2, seed: 5 });
        let fired = Arc::new(AtomicU64::new(0));
        net.set_activation_hook(counting_activation_hook(&plan, Arc::clone(&fired)));
        let _ = net.logits(&x, 4);
        let after_one = fired.load(Ordering::Relaxed);
        // Every hooked layer output gets exactly `flips` flips per forward.
        assert!(after_one > 0, "hook never fired");
        assert_eq!(after_one % 2, 0);
        let _ = net.logits(&x, 4);
        assert_eq!(fired.load(Ordering::Relaxed), after_one * 2);
        net.clear_activation_hook();
    }

    #[test]
    #[should_panic(expected = "not an activation plan")]
    fn weight_plan_rejected_as_hook() {
        let _ = activation_hook(&ModelFaultPlan::weights());
    }

    #[test]
    #[should_panic(expected = "addressed by layer")]
    fn params_selector_rejected_for_activations() {
        let _ =
            activation_hook(&ModelFaultPlan::activations().select(TensorSelector::Params(vec![0])));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ModelFaultPlan::weights().label(),
            "weights/all/bits 0-31/x1@seed0"
        );
        assert_eq!(
            ModelFaultPlan::activations()
                .select(TensorSelector::Layers(vec![1, 2]))
                .bits(BitRange::EXPONENT)
                .mode(InjectionMode::Stochastic { flips: 4, seed: 9 })
                .label(),
            "activations/layers[1, 2]/bits 23-30/x4@seed9"
        );
        assert_eq!(
            ModelFaultPlan::weights()
                .mode(InjectionMode::Exhaustive)
                .label(),
            "weights/all/bits 0-31/exhaustive"
        );
    }

    #[test]
    #[should_panic(expected = "non-finite loss")]
    fn high_exponent_weight_flip_propagates_to_nonfinite_loss() {
        // End-to-end pin of the PR 3/4 NaN-propagation guarantees under
        // model faults: a single weight driven to +Inf by a top
        // exponent-bit flip must surface as a non-finite training loss —
        // not be silently laundered by any kernel on the way.
        let mut net = tiny_net();
        {
            let mut params = net.params_mut();
            params[0].value.data_mut()[0] = 1.0; // biased exponent 127
        }
        let instance = FaultInstance {
            flips: vec![WeightFlip {
                tensor: 0,
                element: 0,
                bit: 30, // exponent 127 -> 255: +Inf
            }],
        };
        let report = apply_weight_faults(&mut net, &instance);
        assert_eq!(report.made_nonfinite, 1);
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[8, 1, 4, 4], 1.0, &mut rng);
        let y: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        let _ = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 1,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
    }
}
