//! Dataset diagnostics.
//!
//! DESIGN.md claims the synthetic analogues preserve the *properties* the
//! paper's findings depend on — GTSRB focused and separable, CIFAR-10
//! cluttered, Pneumonia small and imbalanced. This module measures those
//! properties directly (no training involved) so they are pinned by tests
//! rather than asserted in prose.

use crate::LabeledDataset;

/// Per-dataset first and second moments.
#[derive(Debug, Clone, PartialEq)]
pub struct PixelStats {
    /// Mean over all pixels.
    pub mean: f32,
    /// Standard deviation over all pixels.
    pub std: f32,
}

/// Computes global pixel statistics.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn pixel_stats(ds: &LabeledDataset) -> PixelStats {
    assert!(!ds.is_empty(), "cannot analyse an empty dataset");
    let data = ds.images().data();
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / data.len() as f32;
    PixelStats {
        mean,
        std: var.sqrt(),
    }
}

/// Per-class mean images ("centroids"), `classes x [C*H*W]`.
///
/// Classes with no samples yield all-zero centroids.
pub fn class_centroids(ds: &LabeledDataset) -> Vec<Vec<f32>> {
    let pix = ds.images().numel() / ds.len();
    let mut sums = vec![vec![0.0f32; pix]; ds.classes()];
    let mut counts = vec![0usize; ds.classes()];
    for (i, &label) in ds.labels().iter().enumerate() {
        let img = &ds.images().data()[i * pix..(i + 1) * pix];
        for (s, &v) in sums[label as usize].iter_mut().zip(img) {
            *s += v;
        }
        counts[label as usize] += 1;
    }
    for (sum, &count) in sums.iter_mut().zip(&counts) {
        if count > 0 {
            for s in sum.iter_mut() {
                *s /= count as f32;
            }
        }
    }
    sums
}

/// Fisher-style separability index: mean inter-class centroid distance
/// divided by mean intra-class scatter (both L2, averaged over pixels).
///
/// Larger values mean classes are easier to tell apart; the GTSRB
/// analogue must score above the CIFAR-10 analogue for the paper's
/// dataset-difficulty ordering (Section IV-D) to emerge from training.
///
/// # Panics
///
/// Panics if the dataset is empty or has a single class.
pub fn separability_index(ds: &LabeledDataset) -> f32 {
    assert!(ds.classes() > 1, "separability needs at least two classes");
    let pix = ds.images().numel() / ds.len();
    let centroids = class_centroids(ds);
    let hist = ds.class_histogram();

    // Mean intra-class scatter.
    let mut scatter = 0.0f64;
    for (i, &label) in ds.labels().iter().enumerate() {
        let img = &ds.images().data()[i * pix..(i + 1) * pix];
        let c = &centroids[label as usize];
        let d2: f32 = img.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        scatter += (d2 / pix as f32) as f64;
    }
    let scatter = (scatter / ds.len() as f64).sqrt() as f32;

    // Mean pairwise inter-class centroid distance over populated classes.
    let populated: Vec<usize> = (0..ds.classes()).filter(|&k| hist[k] > 0).collect();
    let mut inter = 0.0f64;
    let mut pairs = 0usize;
    for (ai, &a) in populated.iter().enumerate() {
        for &b in &populated[ai + 1..] {
            let d2: f32 = centroids[a]
                .iter()
                .zip(&centroids[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            inter += ((d2 / pix as f32) as f64).sqrt();
            pairs += 1;
        }
    }
    assert!(pairs > 0, "need at least two populated classes");
    let inter = (inter / pairs as f64) as f32;
    inter / scatter.max(1e-6)
}

/// Imbalance ratio: most frequent class count over least frequent
/// (populated) class count. 1.0 means perfectly balanced.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn imbalance_ratio(ds: &LabeledDataset) -> f32 {
    let hist = ds.class_histogram();
    let max = hist.iter().copied().max().expect("non-empty");
    let min = hist
        .iter()
        .copied()
        .filter(|&c| c > 0)
        .min()
        .expect("non-empty");
    max as f32 / min as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, Scale};
    use tdfm_tensor::Tensor;

    fn toy() -> LabeledDataset {
        // Two well-separated classes with tiny within-class noise.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let class = (i % 2) as u32;
            let base = if class == 0 { -1.0 } else { 1.0 };
            for j in 0..4 {
                data.push(base + 0.01 * (i + j) as f32);
            }
            labels.push(class);
        }
        LabeledDataset::new(Tensor::from_vec(data, &[8, 1, 2, 2]), labels, 2)
    }

    #[test]
    fn pixel_stats_basics() {
        let ds = toy();
        let stats = pixel_stats(&ds);
        assert!(stats.mean.abs() < 0.2, "mean {}", stats.mean);
        assert!(stats.std > 0.9, "std {}", stats.std);
    }

    #[test]
    fn centroids_reflect_class_means() {
        let ds = toy();
        let centroids = class_centroids(&ds);
        assert!(centroids[0][0] < -0.9);
        assert!(centroids[1][0] > 0.9);
    }

    #[test]
    fn separability_high_for_clean_separation() {
        assert!(separability_index(&toy()) > 10.0);
    }

    #[test]
    fn gtsrb_more_separable_than_cifar() {
        // The data-level anchor for the paper's Section IV-D ordering:
        // focused signs are easier than cluttered objects.
        let gtsrb = DatasetKind::Gtsrb.generate(Scale::Smoke, 3).train;
        let cifar = DatasetKind::Cifar10.generate(Scale::Smoke, 3).train;
        let sg = separability_index(&gtsrb);
        let sc = separability_index(&cifar);
        assert!(sg > sc, "GTSRB {sg} should exceed CIFAR {sc}");
    }

    #[test]
    fn pneumonia_is_imbalanced_cifar_is_not() {
        let pneumonia = DatasetKind::Pneumonia.generate(Scale::Smoke, 4).train;
        let cifar = DatasetKind::Cifar10.generate(Scale::Smoke, 4).train;
        assert!(imbalance_ratio(&pneumonia) > 2.0);
        assert!(imbalance_ratio(&cifar) < 1.5);
    }

    #[test]
    fn gtsrb_has_long_tailed_frequencies() {
        let gtsrb = DatasetKind::Gtsrb.generate(Scale::Default, 5).train;
        assert!(imbalance_ratio(&gtsrb) > 1.5);
    }
}
