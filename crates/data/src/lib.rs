#![forbid(unsafe_code)]
//! # tdfm-data
//!
//! Datasets for the TDFM reproduction ("The Fault in Our Data Stars",
//! DSN 2022).
//!
//! The paper evaluates on CIFAR-10, GTSRB and a paediatric Pneumonia X-ray
//! dataset (Table II). Those images cannot ship with this repository, so
//! this crate provides *synthetic stand-ins* that preserve exactly the
//! properties the paper's findings depend on (see `DESIGN.md` §1):
//!
//! * **CIFAR-10 analogue** — 10 balanced classes, colour images with heavy
//!   background clutter and distractor objects (the paper attributes
//!   CIFAR-10's higher accuracy-delta to multi-object backgrounds).
//! * **GTSRB analogue** — 43 classes of centred, high-contrast "sign"
//!   glyphs with an imbalanced class distribution (the paper attributes
//!   GTSRB's lower AD to image focus, and label correction's failure on it
//!   to the class count).
//! * **Pneumonia analogue** — 2 grayscale classes at ~1/10 the size of the
//!   other datasets with a 74/26 class imbalance (small-data effects drive
//!   the paper's Pneumonia findings).
//!
//! [`Scale`] selects how large the whole study runs (image side, sample
//! counts, model width, epochs) so the same experiment code serves unit
//! tests, smoke benchmarks and full runs.

pub mod analysis;
mod dataset;
mod registry;
mod scale;
pub mod synth;

pub use dataset::LabeledDataset;
pub use registry::{DatasetInfo, DatasetKind, TrainTest};
pub use scale::Scale;
