//! Procedural image generator behind the three dataset analogues.
//!
//! Every class has a fixed *prototype* pattern (a low-resolution random
//! field upsampled to image size, optionally focused towards the image
//! centre). A sample is its class prototype plus pixel noise, a random
//! background field, and — for cluttered datasets — a distractor patch
//! borrowed from another class's prototype. The knobs map one-to-one onto
//! the properties the paper uses to explain per-dataset differences
//! (Section IV-D): focus, clutter, class count and class imbalance.

use crate::LabeledDataset;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// How samples are distributed over classes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassWeights {
    /// Every class equally likely (CIFAR-10 is balanced; Table II).
    Balanced,
    /// Class `k` has weight `ratio^k` — a long-tailed distribution like
    /// GTSRB's sign frequencies.
    Geometric(f32),
    /// Explicit weights, e.g. Pneumonia's 74/26 split.
    Explicit(Vec<f32>),
}

impl ClassWeights {
    /// Deterministic per-class sample counts for a dataset of size `n`
    /// (largest-remainder rounding; every class gets at least one sample
    /// when `n >= classes`).
    ///
    /// # Panics
    ///
    /// Panics if weights are non-positive or the count does not match
    /// `classes` for [`ClassWeights::Explicit`].
    pub fn counts(&self, classes: usize, n: usize) -> Vec<usize> {
        let weights: Vec<f32> = match self {
            ClassWeights::Balanced => vec![1.0; classes],
            ClassWeights::Geometric(r) => {
                assert!(*r > 0.0, "geometric ratio must be positive");
                (0..classes).map(|k| r.powi(k as i32)).collect()
            }
            ClassWeights::Explicit(w) => {
                assert_eq!(w.len(), classes, "weight count must equal class count");
                assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
                w.clone()
            }
        };
        let total: f32 = weights.iter().sum();
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f32) as usize)
            .collect();
        // Guarantee coverage, then fix the total with largest remainders.
        if n >= classes {
            for c in counts.iter_mut() {
                if *c == 0 {
                    *c = 1;
                }
            }
        }
        let mut assigned: usize = counts.iter().sum();
        let mut k = 0;
        while assigned < n {
            counts[k % classes] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > n {
            let idx = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("classes > 0");
            counts[idx] -= 1;
            assigned -= 1;
        }
        counts
    }
}

/// Full description of a synthetic dataset distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Number of label classes.
    pub classes: usize,
    /// Image channels (3 = colour, 1 = grayscale).
    pub channels: usize,
    /// Image side length (images are square).
    pub side: usize,
    /// Amplitude of the class prototypes — larger means classes are easier
    /// to separate.
    pub prototype_amplitude: f32,
    /// Per-pixel Gaussian noise added to every sample.
    pub sample_noise: f32,
    /// Background clutter and cross-class distractor strength in `[0, 1]`.
    pub clutter: f32,
    /// Centre focus in `[0, 1]`: 1 concentrates prototype energy centrally
    /// (sign-like images), 0 spreads it uniformly.
    pub focus: f32,
    /// Class frequency distribution.
    pub weights: ClassWeights,
    /// Seed defining the class prototypes (shared by train and test).
    pub prototype_seed: u64,
}

impl SynthSpec {
    /// Generates `n` labelled samples. `sample_seed` varies between train
    /// and test splits; prototypes derive only from `prototype_seed`, so
    /// splits share the same class structure.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the spec is degenerate (no classes/pixels).
    pub fn generate(&self, n: usize, sample_seed: u64) -> LabeledDataset {
        assert!(n > 0, "cannot generate an empty dataset");
        assert!(
            self.classes > 0 && self.channels > 0 && self.side > 0,
            "degenerate spec"
        );
        let protos = self.prototypes();
        let counts = self.weights.counts(self.classes, n);
        let mut labels = Vec::with_capacity(n);
        for (k, &c) in counts.iter().enumerate() {
            labels.extend(std::iter::repeat_n(k as u32, c));
        }
        let mut rng = Rng::seed_from(sample_seed ^ 0xDA7A_5EED);
        rng.shuffle(&mut labels);

        let pix = self.channels * self.side * self.side;
        let mut images = Tensor::zeros(&[n, self.channels, self.side, self.side]);
        for (i, &label) in labels.iter().enumerate() {
            let sample = self.render_sample(&protos, label as usize, &mut rng);
            images.data_mut()[i * pix..(i + 1) * pix].copy_from_slice(&sample);
        }
        LabeledDataset::new(images, labels, self.classes)
    }

    /// The fixed per-class prototype images, `classes x [C*H*W]`.
    pub fn prototypes(&self) -> Vec<Vec<f32>> {
        (0..self.classes)
            .map(|k| {
                let mut rng = Rng::seed_from(
                    self.prototype_seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut proto = smooth_field(
                    self.channels,
                    self.side,
                    4,
                    self.prototype_amplitude,
                    &mut rng,
                );
                if self.focus > 0.0 {
                    apply_focus(&mut proto, self.channels, self.side, self.focus);
                }
                proto
            })
            .collect()
    }

    fn render_sample(&self, protos: &[Vec<f32>], label: usize, rng: &mut Rng) -> Vec<f32> {
        let mut img = protos[label].clone();
        // Background field (sample specific).
        if self.clutter > 0.0 {
            let bg = smooth_field(self.channels, self.side, 3, self.clutter * 0.8, rng);
            for (x, b) in img.iter_mut().zip(&bg) {
                *x += b;
            }
            // Distractor patch borrowed from another class.
            if self.classes > 1 && rng.chance(self.clutter) {
                let mut other = rng.below(self.classes);
                if other == label {
                    other = (other + 1) % self.classes;
                }
                blend_quadrant(
                    &mut img,
                    &protos[other],
                    self.channels,
                    self.side,
                    self.clutter * 0.7,
                    rng,
                );
            }
        }
        // Pixel noise and a mild brightness jitter.
        let brightness = rng.normal() * 0.05;
        for x in img.iter_mut() {
            *x += rng.normal() * self.sample_noise + brightness;
        }
        img
    }
}

/// A smooth random field: a `grid x grid` Gaussian lattice per channel,
/// bilinearly upsampled to `side x side` and scaled by `amplitude`.
pub fn smooth_field(
    channels: usize,
    side: usize,
    grid: usize,
    amplitude: f32,
    rng: &mut Rng,
) -> Vec<f32> {
    let g = grid.max(2);
    let mut out = vec![0.0f32; channels * side * side];
    for c in 0..channels {
        let lattice: Vec<f32> = (0..g * g).map(|_| rng.normal() * amplitude).collect();
        let plane = &mut out[c * side * side..(c + 1) * side * side];
        for i in 0..side {
            for j in 0..side {
                // Map pixel centre to lattice coordinates.
                let fi = i as f32 / (side - 1).max(1) as f32 * (g - 1) as f32;
                let fj = j as f32 / (side - 1).max(1) as f32 * (g - 1) as f32;
                let (i0, j0) = (fi as usize, fj as usize);
                let (i1, j1) = ((i0 + 1).min(g - 1), (j0 + 1).min(g - 1));
                let (di, dj) = (fi - i0 as f32, fj - j0 as f32);
                let v = lattice[i0 * g + j0] * (1.0 - di) * (1.0 - dj)
                    + lattice[i1 * g + j0] * di * (1.0 - dj)
                    + lattice[i0 * g + j1] * (1.0 - di) * dj
                    + lattice[i1 * g + j1] * di * dj;
                plane[i * side + j] = v;
            }
        }
    }
    out
}

/// Scales pixels towards the image centre: `focus = 1` suppresses borders
/// entirely (sign-like images), `focus = 0` is a no-op.
fn apply_focus(img: &mut [f32], channels: usize, side: usize, focus: f32) {
    let centre = (side as f32 - 1.0) / 2.0;
    let max_d = centre * std::f32::consts::SQRT_2;
    for c in 0..channels {
        let plane = &mut img[c * side * side..(c + 1) * side * side];
        for i in 0..side {
            for j in 0..side {
                let d = ((i as f32 - centre).powi(2) + (j as f32 - centre).powi(2)).sqrt() / max_d;
                let mask = 1.0 - focus * d;
                plane[i * side + j] *= mask.max(0.0);
            }
        }
    }
}

/// Blends a random quadrant of `src` into `dst` with the given weight.
fn blend_quadrant(
    dst: &mut [f32],
    src: &[f32],
    channels: usize,
    side: usize,
    weight: f32,
    rng: &mut Rng,
) {
    let half = (side / 2).max(1);
    let oi = rng.below(side - half + 1);
    let oj = rng.below(side - half + 1);
    for c in 0..channels {
        let base = c * side * side;
        for i in oi..oi + half {
            for j in oj..oj + half {
                dst[base + i * side + j] =
                    (1.0 - weight) * dst[base + i * side + j] + weight * src[base + i * side + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            classes: 4,
            channels: 3,
            side: 8,
            prototype_amplitude: 1.0,
            sample_noise: 0.2,
            clutter: 0.5,
            focus: 0.0,
            weights: ClassWeights::Balanced,
            prototype_seed: 11,
        }
    }

    #[test]
    fn generate_produces_requested_size_and_classes() {
        let ds = spec().generate(40, 1);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.classes(), 4);
        assert_eq!(ds.class_histogram(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn prototypes_are_stable_across_splits() {
        let s = spec();
        let a = s.prototypes();
        let b = s.prototypes();
        assert_eq!(a, b);
    }

    #[test]
    fn different_sample_seeds_differ() {
        let s = spec();
        let a = s.generate(10, 1);
        let b = s.generate(10, 2);
        assert_ne!(a.images().data(), b.images().data());
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let s = spec();
        assert_eq!(s.generate(10, 3), s.generate(10, 3));
    }

    #[test]
    fn class_means_are_separable() {
        // Per-class mean images should be closer to their own prototype
        // than to other prototypes; otherwise no model could learn.
        let s = SynthSpec {
            sample_noise: 0.1,
            clutter: 0.2,
            ..spec()
        };
        let ds = s.generate(200, 5);
        let protos = s.prototypes();
        let pix = 3 * 8 * 8;
        for k in 0..s.classes {
            let mut mean = vec![0.0f32; pix];
            let mut count = 0;
            for (i, &l) in ds.labels().iter().enumerate() {
                if l as usize == k {
                    for (m, &v) in mean
                        .iter_mut()
                        .zip(&ds.images().data()[i * pix..(i + 1) * pix])
                    {
                        *m += v;
                    }
                    count += 1;
                }
            }
            for m in &mut mean {
                *m /= count as f32;
            }
            let dist =
                |p: &[f32]| -> f32 { mean.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum() };
            let own = dist(&protos[k]);
            for (j, p) in protos.iter().enumerate() {
                if j != k {
                    assert!(own < dist(p), "class {k} mean closer to prototype {j}");
                }
            }
        }
    }

    #[test]
    fn focus_suppresses_borders() {
        let mut focused = spec();
        focused.focus = 1.0;
        let protos = focused.prototypes();
        // Corner pixels should be (near) zero after focusing.
        for p in &protos {
            assert!(p[0].abs() < 1e-6, "corner {}", p[0]);
        }
    }

    #[test]
    fn geometric_weights_are_long_tailed() {
        let counts = ClassWeights::Geometric(0.8).counts(10, 1000);
        assert!(counts[0] > counts[9]);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn explicit_weights_match_ratio() {
        let counts = ClassWeights::Explicit(vec![0.26, 0.74]).counts(2, 100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!((24..=28).contains(&counts[0]), "{counts:?}");
    }

    #[test]
    fn counts_always_sum_to_n() {
        let mut rng = tdfm_tensor::rng::Rng::seed_from(0xC0);
        for _ in 0..32 {
            let classes = 1 + rng.below(19);
            let n = 1 + rng.below(499);
            let counts = ClassWeights::Balanced.counts(classes, n);
            assert_eq!(counts.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn counts_cover_all_classes_when_possible() {
        let mut rng = tdfm_tensor::rng::Rng::seed_from(0xC1);
        for _ in 0..32 {
            let classes = 1 + rng.below(9);
            let n = classes + rng.below(100);
            let counts = ClassWeights::Geometric(0.5).counts(classes, n);
            assert_eq!(counts.iter().sum::<usize>(), n);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }
}
