//! The three datasets of Table II and their synthetic specs.

use crate::synth::{ClassWeights, SynthSpec};
use crate::{LabeledDataset, Scale};
use tdfm_json::{json_struct_to, json_unit_enum};

/// The datasets of the study (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 10 balanced object classes, cluttered colour images.
    Cifar10,
    /// 43 traffic-sign classes, focused colour images, imbalanced.
    Gtsrb,
    /// 2-class grayscale chest X-rays, ~1/10 the size of the others.
    Pneumonia,
}

/// Table II row: the paper's dataset statistics plus this reproduction's
/// synthetic sizes at a given scale.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// The paper's training-set size.
    pub paper_train: usize,
    /// The paper's test-set size.
    pub paper_test: usize,
    /// The paper's task description.
    pub task: &'static str,
    /// Number of classes.
    pub classes: usize,
}

json_unit_enum!(DatasetKind {
    Cifar10,
    Gtsrb,
    Pneumonia
});
json_struct_to!(DatasetInfo {
    name,
    paper_train,
    paper_test,
    task,
    classes
});

/// A train/test pair drawn from the same synthetic distribution.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training split (this is what the fault injector corrupts).
    pub train: LabeledDataset,
    /// Held-out test split (never injected; used for accuracy and AD).
    pub test: LabeledDataset,
}

impl DatasetKind {
    /// All datasets in Table II order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Cifar10,
        DatasetKind::Gtsrb,
        DatasetKind::Pneumonia,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::Gtsrb => "GTSRB",
            DatasetKind::Pneumonia => "Pneumonia",
        }
    }

    /// Number of label classes (Table II).
    pub fn classes(self) -> usize {
        match self {
            DatasetKind::Cifar10 => 10,
            DatasetKind::Gtsrb => 43,
            DatasetKind::Pneumonia => 2,
        }
    }

    /// Table II metadata.
    pub fn info(self) -> DatasetInfo {
        match self {
            DatasetKind::Cifar10 => DatasetInfo {
                name: self.name(),
                paper_train: 50_000,
                paper_test: 10_000,
                task: "Objects and animals",
                classes: 10,
            },
            DatasetKind::Gtsrb => DatasetInfo {
                name: self.name(),
                paper_train: 39_209,
                paper_test: 12_630,
                task: "Traffic signs",
                classes: 43,
            },
            DatasetKind::Pneumonia => DatasetInfo {
                name: self.name(),
                paper_train: 5_239,
                paper_test: 624,
                task: "Chest X-rays",
                classes: 2,
            },
        }
    }

    /// The synthetic distribution standing in for this dataset.
    ///
    /// The knob values encode the paper's explanations (Section IV-D):
    /// CIFAR-10 gets clutter and distractors, GTSRB gets focus and a
    /// long-tailed class distribution, Pneumonia is grayscale and small.
    pub fn synth_spec(self, scale: Scale) -> SynthSpec {
        let side = scale.image_side();
        match self {
            DatasetKind::Cifar10 => SynthSpec {
                classes: 10,
                channels: 3,
                side,
                prototype_amplitude: 0.9,
                sample_noise: 0.30,
                clutter: 0.65,
                focus: 0.0,
                weights: ClassWeights::Balanced,
                prototype_seed: 0xC1FA_0010,
            },
            DatasetKind::Gtsrb => SynthSpec {
                classes: 43,
                channels: 3,
                side,
                prototype_amplitude: 2.2,
                sample_noise: 0.15,
                clutter: 0.10,
                focus: 0.6,
                weights: ClassWeights::Geometric(0.96),
                prototype_seed: 0x6757_0043,
            },
            DatasetKind::Pneumonia => SynthSpec {
                classes: 2,
                channels: 1,
                side,
                prototype_amplitude: 0.55,
                sample_noise: 0.55,
                clutter: 0.35,
                focus: 0.0,
                // 74% pneumonia / 26% normal, like the Kermany dataset.
                weights: ClassWeights::Explicit(vec![0.26, 0.74]),
                prototype_seed: 0x1446_0002,
            },
        }
    }

    /// Training-set size at a scale (Pneumonia is ~1/10 the others;
    /// Table II).
    pub fn train_size(self, scale: Scale) -> usize {
        match self {
            DatasetKind::Cifar10 => scale.train_size(),
            // GTSRB is slightly smaller than CIFAR-10 in the paper, and its
            // size must cover 43 classes.
            DatasetKind::Gtsrb => (scale.train_size() * 4 / 5).max(43 * 2),
            DatasetKind::Pneumonia => (scale.train_size() / 10).max(24),
        }
    }

    /// Test-set size at a scale.
    pub fn test_size(self, scale: Scale) -> usize {
        match self {
            DatasetKind::Cifar10 => scale.test_size(),
            DatasetKind::Gtsrb => scale.test_size().max(43 * 2),
            DatasetKind::Pneumonia => (scale.test_size() / 4).max(16),
        }
    }

    /// Generates the train/test pair for this dataset.
    ///
    /// `seed` perturbs the *samples* only; the class prototypes are fixed
    /// per dataset so repeated experiments draw from the same underlying
    /// distribution, exactly as the paper retrains on a fixed dataset.
    pub fn generate(self, scale: Scale, seed: u64) -> TrainTest {
        let spec = self.synth_spec(scale);
        let train = spec.generate(self.train_size(scale), seed ^ 0x0071_2411);
        let test = spec.generate(self.test_size(scale), seed ^ 0x007E_5722);
        TrainTest { train, test }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_metadata_matches_paper() {
        let c = DatasetKind::Cifar10.info();
        assert_eq!(
            (c.paper_train, c.paper_test, c.classes),
            (50_000, 10_000, 10)
        );
        let g = DatasetKind::Gtsrb.info();
        assert_eq!(
            (g.paper_train, g.paper_test, g.classes),
            (39_209, 12_630, 43)
        );
        let p = DatasetKind::Pneumonia.info();
        assert_eq!((p.paper_train, p.paper_test, p.classes), (5_239, 624, 2));
    }

    #[test]
    fn generate_produces_consistent_pair() {
        let tt = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
        assert_eq!(tt.train.classes(), 10);
        assert_eq!(tt.test.classes(), 10);
        assert_eq!(tt.train.image_shape(), tt.test.image_shape());
        assert_ne!(
            tt.train.images().data()[..64],
            tt.test.images().data()[..64]
        );
    }

    #[test]
    fn pneumonia_is_an_order_of_magnitude_smaller() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Full] {
            let big = DatasetKind::Cifar10.train_size(scale);
            let small = DatasetKind::Pneumonia.train_size(scale);
            assert!(small * 5 <= big, "{scale}: {small} vs {big}");
        }
    }

    #[test]
    fn gtsrb_covers_all_43_classes() {
        let tt = DatasetKind::Gtsrb.generate(Scale::Tiny, 1);
        let hist = tt.train.class_histogram();
        assert_eq!(hist.len(), 43);
        assert!(hist.iter().all(|&c| c >= 1), "{hist:?}");
        // Long-tailed: most frequent class strictly more common than rarest.
        assert!(hist.iter().max() > hist.iter().min());
    }

    #[test]
    fn pneumonia_is_imbalanced_towards_class_one() {
        let tt = DatasetKind::Pneumonia.generate(Scale::Smoke, 2);
        let hist = tt.train.class_histogram();
        assert!(hist[1] > hist[0] * 2, "{hist:?}");
    }

    #[test]
    fn pneumonia_is_grayscale() {
        let tt = DatasetKind::Pneumonia.generate(Scale::Tiny, 3);
        assert_eq!(tt.train.image_shape().0, 1);
    }

    #[test]
    fn seeds_change_samples_not_structure() {
        let a = DatasetKind::Cifar10.generate(Scale::Tiny, 10);
        let b = DatasetKind::Cifar10.generate(Scale::Tiny, 11);
        assert_eq!(a.train.len(), b.train.len());
        assert_ne!(a.train.images().data(), b.train.images().data());
    }
}
