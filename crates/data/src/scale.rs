//! Experiment scale presets.

use tdfm_json::json_unit_enum;

/// How large the whole study runs.
///
/// The paper burned 33 days of P100 GPU time; this reproduction runs on CPU,
/// so every experiment is parameterised by a scale preset controlling image
/// size, sample counts, model width, epochs and repetition counts. Relative
/// effects (which technique wins, where crossovers fall) are stable across
/// scales; absolute accuracies grow with scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal: unit tests. Seconds per experiment.
    Tiny,
    /// Small: integration tests and CI benches. Tens of seconds.
    Smoke,
    /// The default for the bench binaries. Minutes.
    Default,
    /// The largest preset; closest to the paper's regime. Tens of minutes.
    Full,
}

json_unit_enum!(Scale {
    Tiny,
    Smoke,
    Default,
    Full
});

impl Scale {
    /// Reads the scale from the `TDFM_SCALE` environment variable
    /// (`tiny|smoke|default|full`), falling back to [`Scale::Smoke`].
    pub fn from_env() -> Self {
        match std::env::var("TDFM_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("smoke") => Scale::Smoke,
            Ok("default") => Scale::Default,
            Ok("full") => Scale::Full,
            _ => Scale::Smoke,
        }
    }

    /// Image side length (images are square).
    pub fn image_side(self) -> usize {
        match self {
            Scale::Tiny => 6,
            Scale::Smoke => 8,
            Scale::Default => 10,
            Scale::Full => 14,
        }
    }

    /// Training-set size for the two large datasets (CIFAR-10/GTSRB
    /// analogues). The Pneumonia analogue is ~1/10 of this (Table II).
    pub fn train_size(self) -> usize {
        match self {
            Scale::Tiny => 160,
            Scale::Smoke => 640,
            Scale::Default => 1600,
            Scale::Full => 4000,
        }
    }

    /// Test-set size for the two large datasets.
    pub fn test_size(self) -> usize {
        match self {
            Scale::Tiny => 80,
            Scale::Smoke => 240,
            Scale::Default => 500,
            Scale::Full => 1200,
        }
    }

    /// Base channel width of the models.
    pub fn model_width(self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Smoke => 4,
            Scale::Default => 6,
            Scale::Full => 8,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Tiny => 3,
            Scale::Smoke => 10,
            Scale::Default => 12,
            Scale::Full => 16,
        }
    }

    /// Experiment repetitions (the paper used 20).
    pub fn repetitions(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Smoke => 3,
            Scale::Default => 3,
            Scale::Full => 5,
        }
    }

    /// Lower-case name (matches the `TDFM_SCALE` values).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_monotone() {
        let order = [Scale::Tiny, Scale::Smoke, Scale::Default, Scale::Full];
        for pair in order.windows(2) {
            assert!(pair[0].train_size() < pair[1].train_size());
            assert!(pair[0].image_side() <= pair[1].image_side());
            assert!(pair[0].epochs() <= pair[1].epochs());
            assert!(pair[0].model_width() <= pair[1].model_width());
        }
    }

    #[test]
    fn names_round_trip() {
        for s in [Scale::Tiny, Scale::Smoke, Scale::Default, Scale::Full] {
            assert_eq!(s.to_string(), s.name());
        }
    }

    #[test]
    fn image_side_supports_models() {
        // Models require at least 4x4 input.
        assert!(Scale::Tiny.image_side() >= 4);
    }
}
