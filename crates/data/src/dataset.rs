//! Labelled image datasets.

use tdfm_tensor::Tensor;

/// A labelled image-classification dataset: an NCHW image tensor plus one
/// integer label per image.
///
/// This is the unit the fault injector mutates and the techniques train on.
///
/// # Examples
///
/// ```
/// use tdfm_data::LabeledDataset;
/// use tdfm_tensor::Tensor;
///
/// let images = Tensor::zeros(&[4, 1, 4, 4]);
/// let ds = LabeledDataset::new(images, vec![0, 1, 0, 1], 2);
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.class_histogram(), vec![2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    images: Tensor,
    labels: Vec<u32>,
    classes: usize,
}

impl LabeledDataset {
    /// Bundles images and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not NCHW, if counts disagree, or if any label
    /// is out of range.
    pub fn new(images: Tensor, labels: Vec<u32>, classes: usize) -> Self {
        assert_eq!(images.shape().rank(), 4, "images must be NCHW");
        assert_eq!(
            images.shape().dim(0),
            labels.len(),
            "image/label count mismatch"
        );
        assert!(classes > 0, "need at least one class");
        assert!(
            labels.iter().all(|&l| (l as usize) < classes),
            "label out of range for {classes} classes"
        );
        Self {
            images,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of label classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The image tensor, `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per image.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Image shape as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let d = self.images.shape().dims();
        (d[1], d[2], d[3])
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.classes];
        for &l in &self.labels {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Returns a copy with different labels (used by mislabelling injection
    /// and label correction).
    ///
    /// # Panics
    ///
    /// Panics if the label count or range is wrong.
    pub fn with_labels(&self, labels: Vec<u32>) -> Self {
        Self::new(self.images.clone(), labels, self.classes)
    }

    /// Selects the given sample indices into a new dataset (duplicates
    /// allowed — that is how repetition faults are materialised).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of range.
    pub fn select(&self, indices: &[usize]) -> Self {
        let images = self.images.gather_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Self {
            images,
            labels,
            classes: self.classes,
        }
    }

    /// Splits into `(first k, rest)` by index order.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < len`: both sides must be non-empty, because a
    /// zero-sample dataset cannot be materialised (`gather_rows` needs at
    /// least one row). `k == 0` and `k >= len` are rejected with distinct
    /// messages so sharding callers can tell which invariant they broke.
    pub fn split_at(&self, k: usize) -> (Self, Self) {
        assert!(k > 0, "split point 0 would leave an empty head");
        assert!(
            k < self.len(),
            "split point {k} would leave an empty tail (len = {})",
            self.len()
        );
        let head: Vec<usize> = (0..k).collect();
        let tail: Vec<usize> = (k..self.len()).collect();
        (self.select(&head), self.select(&tail))
    }

    /// Partitions the dataset into `n` contiguous shards in index order.
    ///
    /// Sizes differ by at most one: the first `len % n` shards get one extra
    /// sample, deterministically, instead of truncating the remainder. A
    /// shard may starve a class entirely (its class histogram then has zero
    /// entries) — consumers must tolerate that.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > len` (every shard must be non-empty).
    pub fn shards(&self, n: usize) -> Vec<Self> {
        assert!(n > 0, "cannot shard into 0 parts");
        assert!(
            n <= self.len(),
            "cannot shard {} samples into {n} non-empty parts",
            self.len()
        );
        let base = self.len() / n;
        let extra = self.len() % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        for w in 0..n {
            let size = base + usize::from(w < extra);
            let indices: Vec<usize> = (start..start + size).collect();
            out.push(self.select(&indices));
            start += size;
        }
        debug_assert_eq!(start, self.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledDataset {
        let images = Tensor::from_vec((0..4 * 4).map(|v| v as f32).collect(), &[4, 1, 2, 2]);
        LabeledDataset::new(images, vec![0, 1, 2, 1], 3)
    }

    #[test]
    fn histogram_counts_labels() {
        assert_eq!(tiny().class_histogram(), vec![1, 2, 1]);
    }

    #[test]
    fn select_allows_duplicates() {
        let ds = tiny();
        let dup = ds.select(&[1, 1, 3]);
        assert_eq!(dup.len(), 3);
        assert_eq!(dup.labels(), &[1, 1, 1]);
        // Images of index 1 appear twice.
        assert_eq!(&dup.images().data()[0..4], &dup.images().data()[4..8]);
    }

    #[test]
    fn split_at_partitions() {
        let ds = tiny();
        let (a, b) = ds.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(a.labels(), &[0]);
        assert_eq!(b.labels(), &[1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "empty head")]
    fn split_at_zero_rejected() {
        let _ = tiny().split_at(0);
    }

    #[test]
    #[should_panic(expected = "empty tail")]
    fn split_at_len_rejected() {
        let ds = tiny();
        let _ = ds.split_at(ds.len());
    }

    #[test]
    fn shards_distribute_remainder_to_first_shards() {
        let images = Tensor::from_vec((0..10 * 4).map(|v| v as f32).collect(), &[10, 1, 2, 2]);
        let ds = LabeledDataset::new(images, (0..10).map(|i| (i % 3) as u32).collect(), 3);
        let shards = ds.shards(3);
        assert_eq!(
            shards.iter().map(LabeledDataset::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Contiguous, in index order, covering everything exactly once.
        let all: Vec<u32> = shards.iter().flat_map(|s| s.labels().to_vec()).collect();
        assert_eq!(all, ds.labels());
    }

    #[test]
    fn shards_may_starve_a_class() {
        let ds = tiny(); // labels [0, 1, 2, 1]
        let shards = ds.shards(2);
        assert_eq!(shards[0].class_histogram(), vec![1, 1, 0]);
        assert_eq!(shards[1].class_histogram(), vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "0 parts")]
    fn shards_zero_rejected() {
        let _ = tiny().shards(0);
    }

    #[test]
    #[should_panic(expected = "non-empty parts")]
    fn shards_more_than_len_rejected() {
        let _ = tiny().shards(5);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = LabeledDataset::new(images, vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn count_mismatch_rejected() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        let _ = LabeledDataset::new(images, vec![0], 2);
    }

    #[test]
    fn image_shape_reports_chw() {
        assert_eq!(tiny().image_shape(), (1, 2, 2));
    }
}
