#![forbid(unsafe_code)]
//! # tdfm-nn
//!
//! The neural-network framework for the TDFM reproduction ("The Fault in Our
//! Data Stars", DSN 2022). It supplies everything the paper's TensorFlow
//! stack provided for the study:
//!
//! * [`layer`] — a [`layer::Layer`] trait with explicit forward/backward
//!   passes, plus the layers the seven architectures need (dense,
//!   convolution, batch norm, pooling, dropout, residual blocks, ...).
//! * [`loss`] — every loss in the study: plain cross entropy, label
//!   smoothing, label relaxation (the representative label-smoothing
//!   technique), NCE/RCE and their Active-Passive combination (robust
//!   loss), and the distillation loss (Section III-B of the paper).
//! * [`optim`] — SGD with momentum/weight decay and Adam.
//! * [`models`] — the seven-model zoo of Table III (ConvNet, DeconvNet,
//!   VGG11, VGG16, ResNet18, ResNet50, MobileNet) as width-scaled analogues.
//! * [`trainer`] — a mini-batch training loop with wall-clock accounting
//!   (needed by the paper's Section IV-E overhead study).
//!
//! # Examples
//!
//! Train a tiny ConvNet on random data:
//!
//! ```
//! use tdfm_nn::models::{ModelConfig, ModelKind};
//! use tdfm_nn::loss::CrossEntropy;
//! use tdfm_nn::trainer::{fit, FitConfig, TargetSource};
//! use tdfm_tensor::{rng::Rng, Tensor};
//!
//! let cfg = ModelConfig { in_shape: (1, 8, 8), classes: 2, width: 2, seed: 0 };
//! let mut net = ModelKind::ConvNet.build(&cfg);
//! let mut rng = Rng::seed_from(1);
//! let x = Tensor::randn(&[8, 1, 8, 8], 1.0, &mut rng);
//! let y: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
//! let report = fit(
//!     &mut net,
//!     &CrossEntropy,
//!     &x,
//!     &TargetSource::Hard(y),
//!     &FitConfig { epochs: 1, ..FitConfig::default() },
//! );
//! assert_eq!(report.epoch_losses.len(), 1);
//! ```

pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod serialize;
pub mod trainer;

pub use layer::{Layer, Mode, Param};
pub use network::{ActivationHook, Network};
