//! The [`Layer`] trait and trainable [`Param`]s.

use tdfm_tensor::{ScratchHandle, Tensor};

/// Whether a forward pass is part of training or evaluation.
///
/// Dropout and batch normalisation behave differently between the two —
/// exactly the distinction the paper's overhead study (Section IV-E) draws
/// between training time and inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, batch statistics collected.
    Train,
    /// Inference: deterministic, running statistics used.
    Eval,
}

/// One trainable tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps initial values with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Self { value, grad }
    }

    /// Resets the gradient to zero (called once per optimiser step).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A differentiable network component.
///
/// Layers own their parameters and the activation caches backpropagation
/// needs; `forward` must be called before the matching `backward`. All
/// layers are `Send` so ensemble members can train on worker threads.
pub trait Layer: Send {
    /// Computes the layer output, caching whatever `backward` will need.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates the output gradient, accumulating parameter gradients and
    /// returning the input gradient.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the layer's trainable parameters (may be empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Mutable access to non-trainable state that must survive
    /// checkpointing (batch-norm running statistics). Most layers have
    /// none.
    fn state_mut(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Rebinds the layer onto a scratch arena for activation and gradient
    /// buffers. Layers default to the process-wide shared arena, so calling
    /// this is only needed to isolate a training run (e.g. one arena per
    /// ensemble member). Container layers must forward the call to their
    /// children.
    fn bind_scratch(&mut self, _scratch: &ScratchHandle) {}

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Total scalar parameter count (for Table III style summaries).
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.data(), &[0.0; 6]);
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
