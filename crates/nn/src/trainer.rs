//! Mini-batch training loop with wall-clock accounting.
//!
//! The paper trains every (model, technique, dataset, fault) configuration
//! with the same loop and measures both accuracy effects and runtime
//! overheads (Section IV-E); [`fit`] is that loop.

use crate::loss::{Loss, Target};
use crate::network::Network;
use crate::optim::{Optimizer, Sgd};
use crate::Mode;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tdfm_obs::{event, span, Level};
use tdfm_tensor::bitops::bitflip_f32;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// Cached handle on the global grad-clip counter: per-batch increments
/// must not pay the registry's name lookup.
fn clip_counter() -> &'static tdfm_obs::metrics::Counter {
    static HANDLE: OnceLock<Arc<tdfm_obs::metrics::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| tdfm_obs::global().counter("grad_clip_activations"))
}

/// Cached handle on the global batches-trained counter.
fn batches_counter() -> &'static tdfm_obs::metrics::Counter {
    static HANDLE: OnceLock<Arc<tdfm_obs::metrics::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| tdfm_obs::global().counter("batches_trained"))
}

/// Whole-training-set targets, batched on demand.
///
/// The five TDFM techniques differ in what they train against:
/// plain/smoothed hard labels, corrected soft distributions (label
/// correction), or hard labels plus teacher logits (distillation).
#[derive(Debug, Clone)]
pub enum TargetSource {
    /// Integer labels per training sample.
    Hard(Vec<u32>),
    /// A full `[N, K]` soft distribution per training sample.
    Soft(Tensor),
    /// Hard labels plus per-sample teacher logits `[N, K]`.
    Distill {
        /// Ground-truth (possibly faulty) labels.
        labels: Vec<u32>,
        /// Teacher logits for every training sample.
        teacher_logits: Tensor,
    },
}

impl TargetSource {
    /// Number of training samples covered.
    pub fn len(&self) -> usize {
        match self {
            TargetSource::Hard(l) => l.len(),
            TargetSource::Soft(t) => t.shape().dim(0),
            TargetSource::Distill { labels, .. } => labels.len(),
        }
    }

    /// `true` when no samples are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the target rows for one mini-batch.
    pub fn batch(&self, indices: &[usize]) -> BatchTarget {
        match self {
            TargetSource::Hard(l) => BatchTarget::Hard(indices.iter().map(|&i| l[i]).collect()),
            TargetSource::Soft(t) => BatchTarget::Soft(t.gather_rows(indices)),
            TargetSource::Distill {
                labels,
                teacher_logits,
            } => BatchTarget::Distill {
                labels: indices.iter().map(|&i| labels[i]).collect(),
                teacher_logits: teacher_logits.gather_rows(indices),
            },
        }
    }
}

/// Owned per-batch target produced by [`TargetSource::batch`].
#[derive(Debug, Clone)]
pub enum BatchTarget {
    /// Hard labels for the batch.
    Hard(Vec<u32>),
    /// Soft distributions for the batch.
    Soft(Tensor),
    /// Labels plus teacher logits for the batch.
    Distill {
        /// Batch labels.
        labels: Vec<u32>,
        /// Batch teacher logits.
        teacher_logits: Tensor,
    },
}

impl BatchTarget {
    /// Borrows the batch target as a [`Target`].
    pub fn as_target(&self) -> Target<'_> {
        match self {
            BatchTarget::Hard(l) => Target::Hard(l),
            BatchTarget::Soft(t) => Target::Soft(t),
            BatchTarget::Distill {
                labels,
                teacher_logits,
            } => Target::Distill {
                labels,
                teacher_logits,
            },
        }
    }
}

/// Hyperparameters of one training run.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Global gradient-norm clip (0 disables). Stabilises the deep models
    /// (VGG16, ResNet50) at the study's small widths.
    pub grad_clip: f32,
    /// Seed for mini-batch shuffling.
    pub shuffle_seed: u64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.9,
            grad_clip: 5.0,
            shuffle_seed: 0,
        }
    }
}

/// Configuration of fault-aware training (Vinck et al. 2024): stochastic
/// weight bit-flips are injected before each optimisation step's forward
/// pass and reverted before the weight update, so the network learns to
/// produce correct outputs under transient SEU-style weight corruption.
#[derive(Debug, Clone, Copy)]
pub struct FaultAwareConfig {
    /// Simultaneous bit-flips injected per optimisation step.
    pub flips_per_step: usize,
    /// Lowest bit position faults may hit (0 = LSB of the mantissa).
    pub bit_lo: u32,
    /// Highest bit position faults may hit, inclusive (31 = sign).
    pub bit_hi: u32,
    /// Seed of the injection stream (independent of the shuffle seed).
    pub seed: u64,
}

impl Default for FaultAwareConfig {
    fn default() -> Self {
        Self {
            flips_per_step: 2,
            bit_lo: 0,
            bit_hi: 31,
            seed: 0,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock time of each epoch — the Section IV-E overhead numbers
    /// at per-epoch grain instead of one total.
    pub epoch_walls: Vec<Duration>,
    /// Mean pre-clip global gradient L2 norm per epoch.
    pub epoch_grad_norms: Vec<f32>,
    /// Wall-clock training time (feeds the Section IV-E overhead study).
    pub wall: Duration,
    /// Batches dropped because an injected fault drove the loss non-finite
    /// (always 0 outside [`fit_fault_aware`] runs).
    pub skipped_batches: usize,
}

impl FitReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were run.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("no epochs were run")
    }
}

/// Trains `net` on `(images, targets)` with SGD + momentum.
///
/// Mini-batches are reshuffled every epoch; the learning rate decays by
/// `cfg.lr_decay` per epoch. Returns per-epoch losses and wall-clock time.
///
/// # Panics
///
/// Panics if `images` is not NCHW, if the target count does not match the
/// image count, or if `cfg.batch_size == 0`.
pub fn fit(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    targets: &TargetSource,
    cfg: &FitConfig,
) -> FitReport {
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    fit_with(net, loss, images, targets, cfg, &mut opt)
}

/// [`fit`] with a caller-provided optimiser.
///
/// The per-epoch learning-rate decay runs through a local schedule: the
/// optimiser's entry learning rate is restored before returning, so a
/// reused optimiser starts every run at its configured rate instead of
/// the previous run's decayed one.
///
/// # Panics
///
/// See [`fit`]. Additionally panics — in every build profile — if a batch
/// produces a non-finite loss, naming the loss, epoch and batch index;
/// a silent NaN would corrupt every subsequent weight update.
pub fn fit_with(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    targets: &TargetSource,
    cfg: &FitConfig,
    opt: &mut dyn Optimizer,
) -> FitReport {
    fit_with_arena(net, loss, images, targets, cfg, opt, Scratch::shared())
}

/// [`fit_with`] drawing every per-batch buffer from a caller-provided
/// scratch arena.
///
/// The network is rebound onto `scratch` for the duration of the run, and
/// the batch input, logits, loss gradient and input gradient are recycled
/// back into the arena after every step — once the arena is warm, the
/// dense/conv hot path performs no heap allocation per batch. Buffer
/// routing never changes numerics: two runs sharing one arena produce
/// bit-identical loss curves.
///
/// # Panics
///
/// See [`fit_with`].
pub fn fit_with_arena(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    targets: &TargetSource,
    cfg: &FitConfig,
    opt: &mut dyn Optimizer,
    scratch: &ScratchHandle,
) -> FitReport {
    fit_inner(net, loss, images, targets, cfg, opt, scratch, None)
}

/// Fault-aware training (Vinck et al. 2024): [`fit`] plus stochastic
/// weight bit-flips, injected before each step's forward pass and reverted
/// (XOR is involutive, so reversal is bit-exact) before the optimiser
/// updates the weights. Gradients are therefore computed *under* the
/// fault but applied to the clean weights — the scheme that teaches the
/// network to tolerate transient SEUs at inference time.
///
/// Unlike every other `fit` variant, a non-finite loss does **not** panic
/// here: an exponent-bit flip legitimately drives the loss to Inf/NaN, so
/// the batch is reverted, dropped and counted in
/// [`FitReport::skipped_batches`] instead. The clean-weight invariant
/// makes the drop safe — no corrupted value can reach the weights.
///
/// # Panics
///
/// As [`fit`], and additionally if `fa` names an invalid bit range or the
/// network has no parameters to flip.
pub fn fit_fault_aware(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    targets: &TargetSource,
    cfg: &FitConfig,
    fa: &FaultAwareConfig,
) -> FitReport {
    assert!(fa.flips_per_step > 0, "fault-aware training needs flips");
    assert!(
        fa.bit_lo <= fa.bit_hi && fa.bit_hi < 32,
        "invalid bit range {}..={}",
        fa.bit_lo,
        fa.bit_hi
    );
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    fit_inner(
        net,
        loss,
        images,
        targets,
        cfg,
        &mut opt,
        Scratch::shared(),
        Some(fa),
    )
}

/// Applies (or, by involution, reverts) a set of weight bit-flips.
fn xor_weight_flips(net: &mut Network, flips: &[(usize, usize, u32)]) {
    let mut params = net.params_mut();
    for &(tensor, element, bit) in flips {
        let data = params[tensor].value.data_mut();
        data[element] = bitflip_f32(data[element], bit);
    }
}

#[allow(clippy::too_many_arguments)]
fn fit_inner(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    targets: &TargetSource,
    cfg: &FitConfig,
    opt: &mut dyn Optimizer,
    scratch: &ScratchHandle,
    fault: Option<&FaultAwareConfig>,
) -> FitReport {
    assert_eq!(images.shape().rank(), 4, "images must be NCHW");
    let n = images.shape().dim(0);
    assert_eq!(n, targets.len(), "target count must match image count");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(cfg.epochs > 0, "must train for at least one epoch");

    let start = Instant::now();
    let _fit_span = span!("fit", epochs = cfg.epochs, samples = n, loss = loss.name());
    net.bind_scratch(scratch);
    let mut rng = Rng::seed_from(cfg.shuffle_seed ^ 0xF17_5EED);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_walls = Vec::with_capacity(cfg.epochs);
    let mut epoch_grad_norms = Vec::with_capacity(cfg.epochs);
    let row_len = images.numel() / n.max(1);
    let mut batch_dims = [0usize; 4];
    batch_dims.copy_from_slice(images.shape().dims());

    // Decay through a local schedule so the caller's optimiser comes back
    // with the learning rate it arrived with, and drop any per-parameter
    // state left over from a previous run — both would otherwise make a
    // reused optimiser train differently from a fresh one.
    opt.reset();
    let entry_lr = opt.learning_rate();
    let mut lr = entry_lr;

    // Fault-aware runs draw flip locations from their own stream so the
    // shuffle order stays identical to a fault-free run with the same
    // shuffle seed.
    let mut fault_rng = Rng::seed_from(fault.map_or(0, |fa| fa.seed) ^ 0xB17F_11B5);
    if fault.is_some() {
        assert!(
            !net.params_mut().is_empty(),
            "fault-aware training needs trainable parameters"
        );
    }
    let mut skipped_batches = 0usize;

    for epoch in 0..cfg.epochs {
        let epoch_start = Instant::now();
        rng.shuffle(&mut order);
        let mut total_loss = 0.0;
        let mut total_norm = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            // Gather the batch into an arena buffer instead of a fresh
            // allocation (`gather_rows` would clone every row into a new
            // tensor each step).
            batch_dims[0] = chunk.len();
            let mut x = scratch.tensor_uninit(&batch_dims);
            for (r, &i) in chunk.iter().enumerate() {
                x.data_mut()[r * row_len..(r + 1) * row_len]
                    .copy_from_slice(&images.data()[i * row_len..(i + 1) * row_len]);
            }
            let target = targets.batch(chunk);

            // Fault-aware training: flip weight bits for the duration of
            // this step's forward/backward, remembering the locations so
            // the flips can be reverted bit-exactly (XOR involution)
            // before the optimiser touches the weights.
            let mut flips: Vec<(usize, usize, u32)> = Vec::new();
            if let Some(fa) = fault {
                let mut params = net.params_mut();
                for _ in 0..fa.flips_per_step {
                    let tensor = fault_rng.below(params.len());
                    let data = params[tensor].value.data_mut();
                    let element = fault_rng.below(data.len());
                    let bit =
                        fa.bit_lo + fault_rng.below((fa.bit_hi - fa.bit_lo + 1) as usize) as u32;
                    data[element] = bitflip_f32(data[element], bit);
                    flips.push((tensor, element, bit));
                }
            }

            let logits = net.forward(&x, Mode::Train);
            let out = loss.evaluate(&logits, &target.as_target());
            if !out.loss.is_finite() {
                if fault.is_some() {
                    // An exponent-bit flip can legitimately blow the loss
                    // up; revert the flips and drop the batch — training
                    // on a non-finite gradient would corrupt the weights,
                    // and panicking would make high-bit fault-aware
                    // training impossible.
                    xor_weight_flips(net, &flips);
                    scratch.recycle(x);
                    scratch.recycle(logits);
                    scratch.recycle(out.grad);
                    skipped_batches += 1;
                    event!(
                        Level::Debug,
                        "fault_aware_skip",
                        loss_name = loss.name(),
                        loss = out.loss,
                        epoch = epoch,
                        batch = batches
                    );
                    continue;
                }
                // Leave evidence in the trace file before the panic
                // message dies on a joined worker thread.
                event!(
                    Level::Error,
                    "loss_nonfinite",
                    loss_name = loss.name(),
                    loss = out.loss,
                    epoch = epoch,
                    batch = batches,
                    lr = lr
                );
                tdfm_obs::flush();
                panic!(
                    "{} produced a non-finite loss ({}) at epoch {epoch}, batch {batches} — \
                     a NaN here would silently corrupt every subsequent update",
                    loss.name(),
                    out.loss
                );
            }
            let grad_input = net.backward(&out.grad);
            if !flips.is_empty() {
                // Gradients were computed under the fault; the update
                // below must land on the clean weights.
                xor_weight_flips(net, &flips);
            }
            scratch.recycle(x);
            scratch.recycle(logits);
            scratch.recycle(out.grad);
            scratch.recycle(grad_input);
            let mut params = net.params_mut();
            let norm = global_grad_norm(&params);
            if !norm.is_finite() {
                if fault.is_some() {
                    // A fault-amplified batch can overflow the gradients
                    // while the loss itself stays finite; the clip below
                    // cannot rescale a non-finite norm, and stepping
                    // unclipped would blast the clean weights into the
                    // 1e34 range and kill the rest of the run. Drop the
                    // batch like a non-finite loss.
                    for p in params.iter_mut() {
                        p.zero_grad();
                    }
                    skipped_batches += 1;
                    event!(
                        Level::Debug,
                        "fault_aware_skip",
                        loss_name = loss.name(),
                        grad_norm = norm,
                        epoch = epoch,
                        batch = batches
                    );
                    continue;
                }
                event!(
                    Level::Error,
                    "grad_nonfinite",
                    loss_name = loss.name(),
                    grad_norm = norm,
                    epoch = epoch,
                    batch = batches,
                    lr = lr
                );
                tdfm_obs::flush();
                panic!(
                    "{} produced a non-finite gradient norm ({norm}) at epoch {epoch}, \
                     batch {batches} — an unclipped step here would silently corrupt \
                     every subsequent update",
                    loss.name()
                );
            }
            if cfg.grad_clip > 0.0 && norm > cfg.grad_clip {
                let scale = cfg.grad_clip / norm;
                for p in params.iter_mut() {
                    p.grad.scale(scale);
                }
                clip_counter().inc();
            }
            opt.step(&mut params);
            event!(
                Level::Trace,
                "batch",
                epoch = epoch,
                batch = batches,
                loss = out.loss,
                grad_norm = norm
            );
            total_loss += out.loss;
            total_norm += norm;
            batches += 1;
        }
        batches_counter().add(batches as u64);
        let denom = batches.max(1) as f32;
        epoch_losses.push(total_loss / denom);
        epoch_grad_norms.push(total_norm / denom);
        epoch_walls.push(epoch_start.elapsed());
        event!(
            Level::Debug,
            "epoch",
            epoch = epoch,
            loss = total_loss / denom,
            lr = lr,
            grad_norm = total_norm / denom,
            seconds = epoch_start.elapsed()
        );
        lr *= cfg.lr_decay;
        opt.set_learning_rate(lr);
    }

    opt.set_learning_rate(entry_lr);
    FitReport {
        epoch_losses,
        epoch_walls,
        epoch_grad_norms,
        wall: start.elapsed(),
        skipped_batches,
    }
}

/// Global L2 norm over all parameter gradients.
fn global_grad_norm(params: &[&mut crate::layer::Param]) -> f32 {
    let sq: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    sq.sqrt()
}

/// Gradients exported from one forward/backward pass — the unit a
/// data-parallel shard worker ships to a gradient aggregator
/// (`tdfm-core`'s `distributed` module).
#[derive(Debug, Clone)]
pub struct BatchGradients {
    /// One gradient tensor per parameter, in `Network::params_mut` order.
    pub grads: Vec<Tensor>,
    /// The batch loss.
    pub loss: f32,
    /// Global L2 norm over the exported gradients (non-finite whenever any
    /// exported gradient value is, so callers can screen workers cheaply).
    pub grad_norm: f32,
}

impl BatchGradients {
    /// `true` when the loss and every gradient value are finite.
    pub fn is_finite(&self) -> bool {
        self.loss.is_finite() && self.grad_norm.is_finite()
    }
}

/// Runs one forward/backward pass on a batch and exports the resulting
/// parameter gradients instead of stepping an optimiser.
///
/// The network's accumulated gradients are zeroed on exit, so exporting
/// never bleeds state into a later `fit` or another export.
///
/// # Panics
///
/// Panics if `images` is not NCHW.
pub fn export_batch_gradients(
    net: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    target: &Target<'_>,
) -> BatchGradients {
    assert_eq!(images.shape().rank(), 4, "images must be NCHW");
    let logits = net.forward(images, Mode::Train);
    let out = loss.evaluate(&logits, target);
    let grad_input = net.backward(&out.grad);
    drop(grad_input);
    let mut params = net.params_mut();
    let grads: Vec<Tensor> = params.iter().map(|p| p.grad.clone()).collect();
    let grad_norm = global_grad_norm(&params);
    for p in params.iter_mut() {
        p.zero_grad();
    }
    BatchGradients {
        grads,
        loss: out.loss,
        grad_norm,
    }
}

/// Loads externally produced gradients into the network's parameter slots,
/// so a subsequent [`Optimizer::step`] applies them — the receive side of
/// [`export_batch_gradients`].
///
/// # Panics
///
/// Panics if the gradient count or any gradient shape disagrees with the
/// network's parameters.
pub fn load_gradients(net: &mut Network, grads: &[Tensor]) {
    let mut params = net.params_mut();
    assert_eq!(
        params.len(),
        grads.len(),
        "gradient/parameter count mismatch"
    );
    for (p, g) in params.iter_mut().zip(grads) {
        assert_eq!(p.grad.shape(), g.shape(), "gradient shape mismatch");
        p.grad.data_mut().copy_from_slice(g.data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;
    use crate::models::{ModelConfig, ModelKind};
    use tdfm_tensor::ops::one_hot;

    /// Two linearly separable blobs rendered as tiny "images".
    fn blob_data(n: usize, seed: u64) -> (Tensor, Vec<u32>) {
        let mut rng = Rng::seed_from(seed);
        let mut x = Tensor::zeros(&[n, 1, 4, 4]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 2) as u32;
            let base = if class == 0 { -1.0 } else { 1.0 };
            for j in 0..16 {
                x.data_mut()[i * 16 + j] = base + rng.normal() * 0.3;
            }
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn fit_reduces_loss_on_separable_data() {
        let (x, y) = blob_data(64, 0);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 1,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let report = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y.clone()),
            &FitConfig {
                epochs: 8,
                batch_size: 16,
                lr: 0.05,
                ..FitConfig::default()
            },
        );
        assert!(
            report.final_loss() < report.epoch_losses[0] * 0.5,
            "losses: {:?}",
            report.epoch_losses
        );
        assert!(net.accuracy(&x, &y, 32) > 0.9);
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let (x, y) = blob_data(32, 1);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 3,
        };
        let fit_once = || {
            let mut net = ModelKind::ConvNet.build(&cfg);
            let report = fit(
                &mut net,
                &CrossEntropy,
                &x,
                &TargetSource::Hard(y.clone()),
                &FitConfig {
                    epochs: 2,
                    batch_size: 8,
                    ..FitConfig::default()
                },
            );
            report.epoch_losses
        };
        assert_eq!(fit_once(), fit_once());
    }

    #[test]
    fn soft_targets_train_too() {
        let (x, y) = blob_data(32, 2);
        let soft = one_hot(&y, 2);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 4,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let report = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Soft(soft),
            &FitConfig {
                epochs: 4,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn wall_clock_is_recorded() {
        let (x, y) = blob_data(16, 3);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 5,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let report = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 1,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn per_epoch_walls_and_grad_norms_are_populated() {
        let (x, y) = blob_data(16, 11);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 12,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let report = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 3,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
        assert_eq!(report.epoch_walls.len(), 3);
        assert_eq!(report.epoch_grad_norms.len(), 3);
        assert!(report.epoch_walls.iter().all(|w| *w > Duration::ZERO));
        // Gradients on separable data are real, finite and non-zero.
        assert!(report
            .epoch_grad_norms
            .iter()
            .all(|g| g.is_finite() && *g > 0.0));
        // The per-epoch walls decompose the total.
        let summed: Duration = report.epoch_walls.iter().sum();
        assert!(summed <= report.wall);
    }

    #[test]
    #[should_panic(expected = "target count")]
    fn mismatched_targets_rejected() {
        let (x, _) = blob_data(8, 4);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 6,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let _ = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(vec![0, 1]),
            &FitConfig::default(),
        );
    }

    #[test]
    fn reused_optimiser_reproduces_identical_loss_curves() {
        // Regression test: fit_with used to leave the caller's optimiser at
        // the decayed learning rate, so a second run with the same optimiser
        // silently trained at a different schedule.
        let (x, y) = blob_data(32, 7);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 8,
        };
        let fit_cfg = FitConfig {
            epochs: 3,
            batch_size: 8,
            lr_decay: 0.5,
            ..FitConfig::default()
        };
        let mut opt = crate::optim::Sgd::new(0.05, 0.9, 1e-4);
        let run = |opt: &mut crate::optim::Sgd| {
            let mut net = ModelKind::ConvNet.build(&cfg);
            fit_with(
                &mut net,
                &CrossEntropy,
                &x,
                &TargetSource::Hard(y.clone()),
                &fit_cfg,
                opt,
            )
            .epoch_losses
        };
        let first = run(&mut opt);
        assert_eq!(
            opt.learning_rate(),
            0.05,
            "entry learning rate must be restored"
        );
        let second = run(&mut opt);
        assert_eq!(
            first, second,
            "a reused optimiser must reproduce the same curve"
        );
    }

    #[test]
    #[should_panic(expected = "non-finite loss")]
    fn non_finite_loss_fails_loudly_in_every_build() {
        struct NanLoss;
        impl Loss for NanLoss {
            fn name(&self) -> &'static str {
                "NanLoss"
            }
            fn evaluate(&self, logits: &Tensor, _target: &Target) -> crate::loss::LossOutput {
                crate::loss::LossOutput {
                    loss: f32::NAN,
                    grad: Tensor::zeros(&[logits.shape().dim(0), logits.shape().dim(1)]),
                }
            }
        }
        let (x, y) = blob_data(8, 9);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 10,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let _ = fit(
            &mut net,
            &NanLoss,
            &x,
            &TargetSource::Hard(y),
            &FitConfig::default(),
        );
    }

    #[test]
    fn shared_arena_runs_are_bit_identical() {
        // Buffer reuse must be invisible to numerics: two identical runs
        // sharing ONE scratch arena (so the second run trains entirely out
        // of recycled buffers) must produce byte-identical loss curves and
        // gradient norms.
        use std::sync::Arc;
        let (x, y) = blob_data(32, 13);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 14,
        };
        let arena: tdfm_tensor::ScratchHandle = Arc::new(Scratch::new());
        let run = || {
            let mut net = ModelKind::ConvNet.build(&cfg);
            let mut opt = crate::optim::Sgd::new(0.05, 0.9, 1e-4);
            fit_with_arena(
                &mut net,
                &CrossEntropy,
                &x,
                &TargetSource::Hard(y.clone()),
                &FitConfig {
                    epochs: 2,
                    batch_size: 8,
                    ..FitConfig::default()
                },
                &mut opt,
                &arena,
            )
        };
        let first = run();
        let second = run();
        let bits = |v: &[f32]| -> Vec<u32> { v.iter().map(|f| f.to_bits()).collect() };
        assert_eq!(bits(&first.epoch_losses), bits(&second.epoch_losses));
        assert_eq!(
            bits(&first.epoch_grad_norms),
            bits(&second.epoch_grad_norms)
        );
        // The second run actually exercised recycled buffers.
        assert!(arena.stats().hits > 0, "arena never served a reuse");
    }

    #[test]
    #[should_panic(expected = "non-finite loss")]
    fn nan_training_input_reaches_the_loss_and_fails_loudly() {
        // End-to-end IEEE faithfulness: one NaN pixel must survive every
        // kernel (no sparsity shortcut may swallow it) and surface as a
        // non-finite loss instead of silently corrupting training.
        let (mut x, y) = blob_data(8, 15);
        x.data_mut()[3] = f32::NAN;
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 16,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let _ = fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 1,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
    }

    #[test]
    fn fault_aware_training_still_learns() {
        // Low-mantissa flips are tiny perturbations: fault-aware training
        // must converge about as well as plain training.
        let (x, y) = blob_data(64, 20);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 21,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let report = fit_fault_aware(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y.clone()),
            &FitConfig {
                epochs: 8,
                batch_size: 16,
                ..FitConfig::default()
            },
            &FaultAwareConfig {
                flips_per_step: 2,
                bit_lo: 0,
                bit_hi: 15,
                seed: 1,
            },
        );
        assert!(report.final_loss() < report.epoch_losses[0]);
        assert!(net.accuracy(&x, &y, 32) > 0.8);
    }

    #[test]
    fn fault_aware_flips_are_reverted_bit_exactly() {
        // With a loss whose gradient is identically zero (and zero
        // momentum/weight decay) the optimiser's update is `w += -lr * 0`,
        // which leaves every weight's bit pattern unchanged — so after
        // training the network must hold its initial weights bit-for-bit,
        // even though every step injected (and reverted) exponent- and
        // sign-bit flips.
        struct ZeroLoss;
        impl Loss for ZeroLoss {
            fn name(&self) -> &'static str {
                "ZeroLoss"
            }
            fn evaluate(&self, logits: &Tensor, _target: &Target) -> crate::loss::LossOutput {
                crate::loss::LossOutput {
                    loss: 0.0,
                    grad: Tensor::zeros(&[logits.shape().dim(0), logits.shape().dim(1)]),
                }
            }
        }
        let (x, y) = blob_data(16, 22);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 23,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let before: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let _ = fit_fault_aware(
            &mut net,
            &ZeroLoss,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 2,
                batch_size: 8,
                momentum: 0.0,
                weight_decay: 0.0,
                ..FitConfig::default()
            },
            &FaultAwareConfig {
                flips_per_step: 4,
                bit_lo: 23,
                bit_hi: 31,
                seed: 3,
            },
        );
        let after: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(before, after, "reverted flips must restore exact bits");
    }

    #[test]
    fn fault_aware_is_deterministic_given_seeds() {
        let (x, y) = blob_data(32, 24);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 25,
        };
        let run = || {
            let mut net = ModelKind::ConvNet.build(&cfg);
            fit_fault_aware(
                &mut net,
                &CrossEntropy,
                &x,
                &TargetSource::Hard(y.clone()),
                &FitConfig {
                    epochs: 2,
                    batch_size: 8,
                    ..FitConfig::default()
                },
                &FaultAwareConfig::default(),
            )
            .epoch_losses
        };
        let bits = |v: Vec<f32>| -> Vec<u32> { v.iter().map(|f| f.to_bits()).collect() };
        assert_eq!(bits(run()), bits(run()));
    }

    #[test]
    fn fault_aware_skips_nonfinite_batches_instead_of_panicking() {
        // Force the skip path deterministically with a loss that is always
        // NaN: every batch must be dropped, reverted and counted — the
        // plain trainer panics in this exact situation (test above).
        struct NanLoss;
        impl Loss for NanLoss {
            fn name(&self) -> &'static str {
                "NanLoss"
            }
            fn evaluate(&self, logits: &Tensor, _target: &Target) -> crate::loss::LossOutput {
                crate::loss::LossOutput {
                    loss: f32::NAN,
                    grad: Tensor::zeros(&[logits.shape().dim(0), logits.shape().dim(1)]),
                }
            }
        }
        let (x, y) = blob_data(16, 26);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 27,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let before: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let report = fit_fault_aware(
            &mut net,
            &NanLoss,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 2,
                batch_size: 8,
                ..FitConfig::default()
            },
            &FaultAwareConfig::default(),
        );
        assert_eq!(report.skipped_batches, 4, "2 epochs x 2 batches");
        assert_eq!(report.epoch_losses, vec![0.0, 0.0]);
        let after: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(before, after, "skipped batches must leave weights clean");
    }

    /// Finite loss, non-finite gradient — the combination a fault-blown
    /// forward pass can produce (the loss saturates while an intermediate
    /// gradient overflows), which the clip cannot rescale.
    struct InfGradLoss;
    impl Loss for InfGradLoss {
        fn name(&self) -> &'static str {
            "InfGradLoss"
        }
        fn evaluate(&self, logits: &Tensor, _target: &Target) -> crate::loss::LossOutput {
            let mut grad = Tensor::zeros(&[logits.shape().dim(0), logits.shape().dim(1)]);
            grad.data_mut()[0] = f32::INFINITY;
            crate::loss::LossOutput { loss: 1.0, grad }
        }
    }

    #[test]
    fn fault_aware_skips_nonfinite_gradients_instead_of_stepping() {
        // Regression: the clip guard used to silently *skip clipping* on a
        // non-finite norm, so the optimiser stepped with overflowed
        // gradients and blasted weights into the 1e34 range — after which
        // every batch went non-finite and training never recovered. The
        // batch must be dropped and the clean weights left bit-exact.
        let (x, y) = blob_data(16, 30);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 31,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let before: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let report = fit_fault_aware(
            &mut net,
            &InfGradLoss,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 2,
                batch_size: 8,
                momentum: 0.0,
                weight_decay: 0.0,
                ..FitConfig::default()
            },
            &FaultAwareConfig::default(),
        );
        assert_eq!(report.skipped_batches, 4, "2 epochs x 2 batches");
        let after: Vec<Vec<u32>> = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(before, after, "dropped gradients must not touch weights");
    }

    #[test]
    #[should_panic(expected = "non-finite gradient norm")]
    fn plain_training_panics_on_nonfinite_gradients() {
        // Outside fault-aware runs a non-finite gradient is the same
        // corruption class as a non-finite loss: fail loudly.
        let (x, y) = blob_data(8, 32);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 33,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let _ = fit(
            &mut net,
            &InfGradLoss,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 1,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid bit range")]
    fn fault_aware_rejects_bad_bit_range() {
        let (x, y) = blob_data(8, 28);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 29,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let _ = fit_fault_aware(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig::default(),
            &FaultAwareConfig {
                bit_hi: 32,
                ..FaultAwareConfig::default()
            },
        );
    }

    #[test]
    fn exported_gradients_round_trip_through_load() {
        // A step taken from exported-then-loaded gradients must equal the
        // in-place backward + step bit-for-bit — the invariant that lets
        // the distributed trainer reuse the single-worker optimiser.
        let (x, y) = blob_data(8, 40);
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 41,
        };
        let mut exported_net = ModelKind::ConvNet.build(&cfg);
        let mut direct_net = ModelKind::ConvNet.build(&cfg);

        let export =
            export_batch_gradients(&mut exported_net, &CrossEntropy, &x, &Target::Hard(&y));
        assert!(export.is_finite());
        assert!(export.grad_norm > 0.0);
        load_gradients(&mut exported_net, &export.grads);
        let mut opt = crate::optim::Sgd::new(0.05, 0.0, 0.0);
        opt.step(&mut exported_net.params_mut());

        let logits = direct_net.forward(&x, Mode::Train);
        let out = CrossEntropy.evaluate(&logits, &Target::Hard(&y));
        let _ = direct_net.backward(&out.grad);
        let mut opt2 = crate::optim::Sgd::new(0.05, 0.0, 0.0);
        opt2.step(&mut direct_net.params_mut());

        let weights = |net: &mut Network| -> Vec<Vec<u32>> {
            net.params_mut()
                .iter()
                .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        assert_eq!(weights(&mut exported_net), weights(&mut direct_net));
    }

    #[test]
    fn export_flags_non_finite_gradients() {
        let (mut x, y) = blob_data(8, 42);
        x.data_mut()[0] = f32::NAN;
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 43,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let export = export_batch_gradients(&mut net, &CrossEntropy, &x, &Target::Hard(&y));
        assert!(!export.is_finite(), "NaN input must surface in the export");
        // Export must leave no gradient residue behind.
        assert!(net
            .params_mut()
            .iter()
            .all(|p| p.grad.data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn target_source_batching() {
        let src = TargetSource::Hard(vec![5, 6, 7, 8]);
        match src.batch(&[3, 0]) {
            BatchTarget::Hard(l) => assert_eq!(l, vec![8, 5]),
            _ => panic!("wrong variant"),
        }
        assert_eq!(src.len(), 4);
        assert!(!src.is_empty());
    }
}
