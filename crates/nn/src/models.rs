//! The seven-model zoo of Table III.
//!
//! Each architecture is a width-scaled analogue of the paper's model,
//! preserving the family's distinguishing mechanism and the paper's
//! shallow/deep split:
//!
//! | Name      | Depth    | Paper summary                    | This crate             |
//! |-----------|----------|----------------------------------|------------------------|
//! | ConvNet   | Moderate | 3 Conv + 3 FC + Max Pooling      | same structure         |
//! | DeconvNet | Moderate | 4 Conv + 2 FC w/ 0.5 Dropout     | same structure         |
//! | VGG11     | Deep     | 8 Conv + 3 FC + Max Pooling      | same structure         |
//! | VGG16     | Deep     | 13 Conv + 3 FC + Max Pooling     | same structure         |
//! | ResNet18  | Deep     | 17 Conv + 1 FC + Avg Pooling     | 17 convs (8 blocks)    |
//! | ResNet50  | Deep     | 49 Conv + 1 FC + Avg Pooling     | 25 convs (12 blocks)*  |
//! | MobileNet | Deep     | 27 Conv + 1 FC + Avg Pooling     | 13 convs (6 ds-blocks)*|
//!
//! *Scaled for CPU budgets; relative depth ordering is preserved (see
//! DESIGN.md §1).

use crate::layers::{
    BatchNorm2d, Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, MaxPool2d, ReLU, ResidualBlock,
    Sequential,
};
use crate::network::Network;
use tdfm_json::{json_struct, json_struct_to, json_unit_enum};
use tdfm_tensor::ops::Conv2dSpec;
use tdfm_tensor::rng::Rng;

/// Construction parameters shared by all architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Input image shape `(channels, height, width)`.
    pub in_shape: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// Base channel width; deeper stages use multiples of it.
    pub width: usize,
    /// Seed for weight initialisation.
    pub seed: u64,
}

json_struct!(ModelConfig {
    in_shape,
    classes,
    width,
    seed
});

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            in_shape: (3, 12, 12),
            classes: 10,
            width: 8,
            seed: 0,
        }
    }
}

/// The architectures of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// 3 conv + 3 FC + max pooling (moderate depth).
    ConvNet,
    /// 4 conv + 2 FC with 0.5 dropout (moderate depth).
    DeconvNet,
    /// VGG-style 8 conv + 3 FC (deep).
    Vgg11,
    /// VGG-style 13 conv + 3 FC (deep).
    Vgg16,
    /// Residual network, 17 convs + 1 FC (deep).
    ResNet18,
    /// Residual network, deeper than ResNet18 (deep).
    ResNet50,
    /// Depthwise-separable convolutions + 1 FC (deep).
    MobileNet,
}

json_unit_enum!(ModelKind {
    ConvNet,
    DeconvNet,
    Vgg11,
    Vgg16,
    ResNet18,
    ResNet50,
    MobileNet
});

/// Depth classification used by Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthClass {
    /// Few layers; the paper shows these react badly to softened losses.
    Moderate,
    /// Many layers.
    Deep,
}

json_unit_enum!(DepthClass { Moderate, Deep });

impl std::fmt::Display for DepthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepthClass::Moderate => write!(f, "Moderate"),
            DepthClass::Deep => write!(f, "Deep"),
        }
    }
}

/// Registry row describing one architecture (renders Table III).
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Architecture name as printed in the paper.
    pub name: &'static str,
    /// Depth class.
    pub depth: DepthClass,
    /// The paper's architecture summary string.
    pub summary: &'static str,
}

json_struct_to!(ModelInfo {
    name,
    depth,
    summary
});

impl ModelKind {
    /// All seven architectures in Table III order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::ConvNet,
        ModelKind::DeconvNet,
        ModelKind::Vgg11,
        ModelKind::Vgg16,
        ModelKind::ResNet18,
        ModelKind::MobileNet,
        ModelKind::ResNet50,
    ];

    /// Architecture name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ConvNet => "ConvNet",
            ModelKind::DeconvNet => "DeconvNet",
            ModelKind::Vgg11 => "VGG11",
            ModelKind::Vgg16 => "VGG16",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::MobileNet => "MobileNet",
        }
    }

    /// Registry metadata (Table III).
    pub fn info(self) -> ModelInfo {
        let (depth, summary) = match self {
            ModelKind::ConvNet => (DepthClass::Moderate, "3 Conv + 3 FC + Max Pooling"),
            ModelKind::DeconvNet => (DepthClass::Moderate, "4 Conv + 2 FC w/ 0.5 Dropout"),
            ModelKind::Vgg11 => (DepthClass::Deep, "8 Conv + 3 FC + Max Pooling"),
            ModelKind::Vgg16 => (DepthClass::Deep, "13 Conv + 3 FC + Max Pooling"),
            ModelKind::ResNet18 => (DepthClass::Deep, "17 Conv + 1 FC + Avg Pooling"),
            ModelKind::ResNet50 => (DepthClass::Deep, "25 Conv + 1 FC + Avg Pooling"),
            ModelKind::MobileNet => (DepthClass::Deep, "13 Conv + 1 FC + Avg Pooling"),
        };
        ModelInfo {
            name: self.name(),
            depth,
            summary,
        }
    }

    /// Builds a freshly initialised network of this architecture.
    ///
    /// # Panics
    ///
    /// Panics if the input image is smaller than 4×4 or `width == 0`.
    pub fn build(self, cfg: &ModelConfig) -> Network {
        assert!(cfg.width > 0, "model width must be positive");
        assert!(
            cfg.in_shape.1 >= 4 && cfg.in_shape.2 >= 4,
            "input must be at least 4x4, got {}x{}",
            cfg.in_shape.1,
            cfg.in_shape.2
        );
        let mut rng = Rng::seed_from(cfg.seed ^ 0x5EED_0000 ^ (self as u64) << 32);
        let body = match self {
            ModelKind::ConvNet => build_convnet(cfg, &mut rng),
            ModelKind::DeconvNet => build_deconvnet(cfg, &mut rng),
            ModelKind::Vgg11 => build_vgg(cfg, &[1, 1, 2, 2, 2], &mut rng),
            ModelKind::Vgg16 => build_vgg(cfg, &[2, 2, 3, 3, 3], &mut rng),
            ModelKind::ResNet18 => build_resnet(cfg, &[2, 2, 2, 2], &mut rng),
            ModelKind::ResNet50 => build_resnet(cfg, &[3, 3, 3, 3], &mut rng),
            ModelKind::MobileNet => build_mobilenet(cfg, &mut rng),
        };
        Network::new(self.name(), cfg.classes, body)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracks `(channels, height, width)` while stacking layers.
#[derive(Clone, Copy)]
struct Dims {
    c: usize,
    h: usize,
    w: usize,
}

impl Dims {
    fn flat(self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether a 2×2/stride-2 pool still shrinks this size meaningfully.
    fn can_pool(self) -> bool {
        self.h >= 2 && self.w >= 2
    }

    fn pooled(self) -> Dims {
        Dims {
            c: self.c,
            h: tdfm_tensor::ops::conv_out_dim(self.h, 2, 2, 0),
            w: tdfm_tensor::ops::conv_out_dim(self.w, 2, 2, 0),
        }
    }

    fn strided(self) -> Dims {
        Dims {
            c: self.c,
            h: tdfm_tensor::ops::conv_out_dim(self.h, 3, 2, 1),
            w: tdfm_tensor::ops::conv_out_dim(self.w, 3, 2, 1),
        }
    }
}

fn conv_relu(seq: &mut Sequential, dims: &mut Dims, out_c: usize, rng: &mut Rng) {
    seq.add(Box::new(Conv2d::new(
        dims.c,
        out_c,
        3,
        Conv2dSpec::same(3),
        rng,
    )));
    seq.add(Box::new(ReLU::new()));
    dims.c = out_c;
}

/// Conv + batch norm + ReLU — the stabilised block the deeper plain stacks
/// (VGG, DeconvNet) need to train at the study's reduced widths.
fn conv_bn_relu(seq: &mut Sequential, dims: &mut Dims, out_c: usize, rng: &mut Rng) {
    seq.add(Box::new(Conv2d::new(
        dims.c,
        out_c,
        3,
        Conv2dSpec::same(3),
        rng,
    )));
    seq.add(Box::new(BatchNorm2d::new(out_c)));
    seq.add(Box::new(ReLU::new()));
    dims.c = out_c;
}

fn maybe_pool(seq: &mut Sequential, dims: &mut Dims) {
    if dims.can_pool() {
        seq.add(Box::new(MaxPool2d::new(2, 2)));
        *dims = dims.pooled();
    }
}

fn head_3fc(seq: &mut Sequential, dims: Dims, cfg: &ModelConfig, rng: &mut Rng) {
    let hidden1 = (8 * cfg.width).max(cfg.classes);
    let hidden2 = (4 * cfg.width).max(cfg.classes);
    seq.add(Box::new(Flatten::new()));
    seq.add(Box::new(Dense::new(dims.flat(), hidden1, rng)));
    seq.add(Box::new(ReLU::new()));
    seq.add(Box::new(Dense::new(hidden1, hidden2, rng)));
    seq.add(Box::new(ReLU::new()));
    seq.add(Box::new(Dense::new(hidden2, cfg.classes, rng)));
}

fn build_convnet(cfg: &ModelConfig, rng: &mut Rng) -> Sequential {
    let mut seq = Sequential::new();
    let mut dims = Dims {
        c: cfg.in_shape.0,
        h: cfg.in_shape.1,
        w: cfg.in_shape.2,
    };
    let w = cfg.width;
    conv_relu(&mut seq, &mut dims, w, rng);
    maybe_pool(&mut seq, &mut dims);
    conv_relu(&mut seq, &mut dims, 2 * w, rng);
    maybe_pool(&mut seq, &mut dims);
    conv_relu(&mut seq, &mut dims, 4 * w, rng);
    head_3fc(&mut seq, dims, cfg, rng);
    seq
}

fn build_deconvnet(cfg: &ModelConfig, rng: &mut Rng) -> Sequential {
    let mut seq = Sequential::new();
    let mut dims = Dims {
        c: cfg.in_shape.0,
        h: cfg.in_shape.1,
        w: cfg.in_shape.2,
    };
    let w = cfg.width;
    conv_bn_relu(&mut seq, &mut dims, w, rng);
    conv_bn_relu(&mut seq, &mut dims, w, rng);
    maybe_pool(&mut seq, &mut dims);
    conv_bn_relu(&mut seq, &mut dims, 2 * w, rng);
    conv_bn_relu(&mut seq, &mut dims, 2 * w, rng);
    maybe_pool(&mut seq, &mut dims);
    let hidden = (8 * cfg.width).max(2 * cfg.classes);
    seq.add(Box::new(Flatten::new()));
    seq.add(Box::new(Dense::new(dims.flat(), hidden, rng)));
    seq.add(Box::new(ReLU::new()));
    seq.add(Box::new(Dropout::new(0.5, rng.derive(102))));
    seq.add(Box::new(Dense::new(hidden, cfg.classes, rng)));
    seq
}

fn build_vgg(cfg: &ModelConfig, stage_convs: &[usize], rng: &mut Rng) -> Sequential {
    let mut seq = Sequential::new();
    let mut dims = Dims {
        c: cfg.in_shape.0,
        h: cfg.in_shape.1,
        w: cfg.in_shape.2,
    };
    let w = cfg.width;
    let stage_width = [w, 2 * w, 4 * w, 4 * w, 4 * w];
    for (stage, &n_convs) in stage_convs.iter().enumerate() {
        for _ in 0..n_convs {
            conv_bn_relu(&mut seq, &mut dims, stage_width[stage], rng);
        }
        maybe_pool(&mut seq, &mut dims);
    }
    head_3fc(&mut seq, dims, cfg, rng);
    seq
}

fn basic_block(dims: &mut Dims, out_c: usize, downsample: bool, rng: &mut Rng) -> ResidualBlock {
    let stride_spec = if downsample {
        Conv2dSpec {
            stride: 2,
            pad: 1,
            groups: 1,
        }
    } else {
        Conv2dSpec::same(3)
    };
    let mut main = Sequential::new();
    main.add(Box::new(Conv2d::new(dims.c, out_c, 3, stride_spec, rng)));
    main.add(Box::new(BatchNorm2d::new(out_c)));
    main.add(Box::new(ReLU::new()));
    main.add(Box::new(Conv2d::new(
        out_c,
        out_c,
        3,
        Conv2dSpec::same(3),
        rng,
    )));
    main.add(Box::new(BatchNorm2d::new(out_c)));
    let needs_projection = downsample || dims.c != out_c;
    let block = if needs_projection {
        let mut skip = Sequential::new();
        let skip_spec = if downsample {
            Conv2dSpec {
                stride: 2,
                pad: 0,
                groups: 1,
            }
        } else {
            Conv2dSpec {
                stride: 1,
                pad: 0,
                groups: 1,
            }
        };
        skip.add(Box::new(Conv2d::new(dims.c, out_c, 1, skip_spec, rng)));
        skip.add(Box::new(BatchNorm2d::new(out_c)));
        ResidualBlock::projected(main, skip)
    } else {
        ResidualBlock::identity(main)
    };
    if downsample {
        *dims = dims.strided();
    }
    dims.c = out_c;
    block
}

fn build_resnet(cfg: &ModelConfig, stage_blocks: &[usize], rng: &mut Rng) -> Sequential {
    let mut seq = Sequential::new();
    let mut dims = Dims {
        c: cfg.in_shape.0,
        h: cfg.in_shape.1,
        w: cfg.in_shape.2,
    };
    let w = cfg.width;
    // Stem.
    seq.add(Box::new(Conv2d::new(
        dims.c,
        w,
        3,
        Conv2dSpec::same(3),
        rng,
    )));
    seq.add(Box::new(BatchNorm2d::new(w)));
    seq.add(Box::new(ReLU::new()));
    dims.c = w;
    let stage_width = [w, 2 * w, 4 * w, 4 * w];
    for (stage, &n_blocks) in stage_blocks.iter().enumerate() {
        for b in 0..n_blocks {
            let downsample = stage > 0 && b == 0 && dims.h >= 2;
            seq.add(Box::new(basic_block(
                &mut dims,
                stage_width[stage],
                downsample,
                rng,
            )));
        }
    }
    seq.add(Box::new(GlobalAvgPool::new()));
    seq.add(Box::new(Dense::new(dims.c, cfg.classes, rng)));
    seq
}

fn build_mobilenet(cfg: &ModelConfig, rng: &mut Rng) -> Sequential {
    let mut seq = Sequential::new();
    let mut dims = Dims {
        c: cfg.in_shape.0,
        h: cfg.in_shape.1,
        w: cfg.in_shape.2,
    };
    let w = cfg.width;
    // Stem.
    seq.add(Box::new(Conv2d::new(
        dims.c,
        w,
        3,
        Conv2dSpec::same(3),
        rng,
    )));
    seq.add(Box::new(BatchNorm2d::new(w)));
    seq.add(Box::new(ReLU::new()));
    dims.c = w;
    // Depthwise-separable blocks: (out_channels, downsample).
    let blocks = [
        (w, false),
        (2 * w, true),
        (2 * w, false),
        (4 * w, true),
        (4 * w, false),
        (8 * w, false),
    ];
    for &(out_c, down) in &blocks {
        let stride = if down && dims.h >= 2 { 2 } else { 1 };
        // Depthwise 3x3.
        seq.add(Box::new(Conv2d::new(
            dims.c,
            dims.c,
            3,
            Conv2dSpec {
                stride,
                pad: 1,
                groups: dims.c,
            },
            rng,
        )));
        seq.add(Box::new(BatchNorm2d::new(dims.c)));
        seq.add(Box::new(ReLU::new()));
        if stride == 2 {
            dims = dims.strided();
        }
        // Pointwise 1x1.
        seq.add(Box::new(Conv2d::new(
            dims.c,
            out_c,
            1,
            Conv2dSpec {
                stride: 1,
                pad: 0,
                groups: 1,
            },
            rng,
        )));
        seq.add(Box::new(BatchNorm2d::new(out_c)));
        seq.add(Box::new(ReLU::new()));
        dims.c = out_c;
    }
    seq.add(Box::new(GlobalAvgPool::new()));
    seq.add(Box::new(Dense::new(dims.c, cfg.classes, rng)));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use tdfm_tensor::Tensor;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            in_shape: (3, 8, 8),
            classes: 5,
            width: 4,
            seed: 7,
        }
    }

    #[test]
    fn all_models_produce_logits_of_right_shape() {
        let cfg = small_cfg();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        for kind in ModelKind::ALL {
            let mut net = kind.build(&cfg);
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.shape().dims(), &[2, 5], "{kind}");
        }
    }

    #[test]
    fn all_models_backpropagate() {
        let cfg = small_cfg();
        let mut rng = tdfm_tensor::rng::Rng::seed_from(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        for kind in ModelKind::ALL {
            let mut net = kind.build(&cfg);
            let y = net.forward(&x, Mode::Train);
            let gx = net.backward(&Tensor::ones(y.shape().dims()));
            assert_eq!(gx.shape().dims(), x.shape().dims(), "{kind}");
            assert!(!gx.has_non_finite(), "{kind} produced non-finite gradients");
            // At least one parameter received gradient.
            let got_grad = net.params_mut().iter().any(|p| p.grad.max_abs() > 0.0);
            assert!(got_grad, "{kind} has all-zero parameter gradients");
        }
    }

    #[test]
    fn deep_models_have_more_parameters_than_shallow() {
        let cfg = small_cfg();
        let mut convnet = ModelKind::ConvNet.build(&cfg);
        let mut resnet50 = ModelKind::ResNet50.build(&cfg);
        let mut vgg16 = ModelKind::Vgg16.build(&cfg);
        let mut vgg11 = ModelKind::Vgg11.build(&cfg);
        assert!(resnet50.param_count() > convnet.param_count());
        assert!(vgg16.param_count() > vgg11.param_count());
    }

    #[test]
    fn resnet50_is_deeper_than_resnet18() {
        let cfg = small_cfg();
        let mut r18 = ModelKind::ResNet18.build(&cfg);
        let mut r50 = ModelKind::ResNet50.build(&cfg);
        assert!(r50.param_count() > r18.param_count());
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let mut cfg = small_cfg();
        let mut a = ModelKind::ConvNet.build(&cfg);
        cfg.seed = 8;
        let mut b = ModelKind::ConvNet.build(&cfg);
        let wa = a.params_mut()[0].value.clone();
        let wb = b.params_mut()[0].value.clone();
        assert_ne!(wa.data(), wb.data());
    }

    #[test]
    fn registry_matches_table_iii_names() {
        let names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.info().name).collect();
        assert_eq!(
            names,
            vec![
                "ConvNet",
                "DeconvNet",
                "VGG11",
                "VGG16",
                "ResNet18",
                "MobileNet",
                "ResNet50"
            ]
        );
        assert_eq!(ModelKind::ConvNet.info().depth, DepthClass::Moderate);
        assert_eq!(ModelKind::ResNet50.info().depth, DepthClass::Deep);
    }

    #[test]
    fn tiny_4x4_input_is_supported() {
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 0,
        };
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        for kind in ModelKind::ALL {
            let mut net = kind.build(&cfg);
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.shape().dims(), &[1, 2], "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4x4")]
    fn too_small_input_rejected() {
        let cfg = ModelConfig {
            in_shape: (1, 2, 2),
            classes: 2,
            width: 2,
            seed: 0,
        };
        let _ = ModelKind::ConvNet.build(&cfg);
    }
}
