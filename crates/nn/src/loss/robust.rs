//! Robust losses: NCE, RCE and their Active-Passive combination
//! (Ma et al., ICML'20 — the paper's representative robust-loss technique).

use super::{check_logits, Loss, LossOutput, Target};
use tdfm_tensor::ops::{log_softmax_rows, softmax_rows};
use tdfm_tensor::Tensor;

/// Normalized Cross Entropy — the *active* half of the paper's robust loss.
///
/// `NCE = (-log p_y) / (-sum_k log p_k)`. Normalisation bounds the loss
/// in `[0, 1]`, making it robust to label noise but prone to underfitting —
/// the property behind the paper's finding that robust loss harms shallow
/// models (Section IV-B). Accepts [`Target::Hard`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedCrossEntropy;

impl Loss for NormalizedCrossEntropy {
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let labels = match target {
            Target::Hard(l) => *l,
            _ => panic!("NormalizedCrossEntropy accepts only Hard targets"),
        };
        let log_p = log_softmax_rows(logits);
        let p = softmax_rows(logits, 1.0);
        let inv_n = 1.0 / n as f32;
        let mut loss = 0.0;
        let mut grad = Tensor::zeros(&[n, k]);
        for (i, &y) in labels.iter().enumerate() {
            let yi = y as usize;
            assert!(yi < k, "label {y} out of range");
            let row_log = &log_p.data()[i * k..(i + 1) * k];
            let a = -row_log[yi]; // numerator
            let b: f32 = -row_log.iter().sum::<f32>(); // denominator
            loss += a / b;
            // dA/dz_j = p_j - delta_jy ; dB/dz_j = K p_j - 1.
            for j in 0..k {
                let pj = p.data()[i * k + j];
                let da = pj - if j == yi { 1.0 } else { 0.0 };
                let db = k as f32 * pj - 1.0;
                grad.data_mut()[i * k + j] = (da * b - a * db) / (b * b) * inv_n;
            }
        }
        LossOutput {
            loss: loss * inv_n,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "NCE"
    }
}

/// Reverse Cross Entropy — the *passive* half of the paper's robust loss.
///
/// `RCE = -sum_k p_k log q_k` with the one-hot `q` and `log 0` clipped to
/// `A = -4` (Ma et al.'s convention), which reduces to `-A * (1 - p_y)`.
/// Accepts [`Target::Hard`].
#[derive(Debug, Clone, Copy)]
pub struct ReverseCrossEntropy {
    clip: f32,
}

impl Default for ReverseCrossEntropy {
    fn default() -> Self {
        Self { clip: -4.0 }
    }
}

impl ReverseCrossEntropy {
    /// Creates an RCE loss with the standard `log 0 ~ -4` clipping.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Loss for ReverseCrossEntropy {
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let labels = match target {
            Target::Hard(l) => *l,
            _ => panic!("ReverseCrossEntropy accepts only Hard targets"),
        };
        let p = softmax_rows(logits, 1.0);
        let inv_n = 1.0 / n as f32;
        let a = self.clip;
        let mut loss = 0.0;
        let mut grad = Tensor::zeros(&[n, k]);
        for (i, &y) in labels.iter().enumerate() {
            let yi = y as usize;
            assert!(yi < k, "label {y} out of range");
            let py = p.data()[i * k + yi];
            loss += -a * (1.0 - py);
            // dL/dz_j = A * dp_y/dz_j = A * p_y (delta_jy - p_j).
            for j in 0..k {
                let pj = p.data()[i * k + j];
                let delta = if j == yi { 1.0 } else { 0.0 };
                grad.data_mut()[i * k + j] = a * py * (delta - pj) * inv_n;
            }
        }
        LossOutput {
            loss: loss * inv_n,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "RCE"
    }
}

/// Active-Passive Loss: `alpha * NCE + beta * RCE` (paper Section III-B3).
///
/// The active term drives the target class up; the passive term drives the
/// non-target classes down, compensating the active term's underfitting.
/// Accepts [`Target::Hard`].
#[derive(Debug, Clone, Copy)]
pub struct ActivePassiveLoss {
    alpha: f32,
    beta: f32,
    active: NormalizedCrossEntropy,
    passive: ReverseCrossEntropy,
}

impl ActivePassiveLoss {
    /// Creates an APL loss; the study uses `alpha = beta = 1`.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative.
    pub fn new(alpha: f32, beta: f32) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0,
            "APL weights must be non-negative"
        );
        Self {
            alpha,
            beta,
            active: NormalizedCrossEntropy,
            passive: ReverseCrossEntropy::new(),
        }
    }

    /// Weight of the active (NCE) term.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Weight of the passive (RCE) term.
    pub fn beta(&self) -> f32 {
        self.beta
    }
}

impl Loss for ActivePassiveLoss {
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput {
        let a = self.active.evaluate(logits, target);
        let b = self.passive.evaluate(logits, target);
        let mut grad = a.grad;
        grad.scale(self.alpha);
        grad.axpy(self.beta, &b.grad);
        LossOutput {
            loss: self.alpha * a.loss + self.beta * b.loss,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "NCE+RCE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::grad_check;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn nce_is_bounded_by_one() {
        let mut rng = Rng::seed_from(0);
        for _ in 0..16 {
            let logits = Tensor::randn(&[4, 6], 3.0, &mut rng);
            let labels = [0u32, 1, 2, 3];
            let out = NormalizedCrossEntropy.evaluate(&logits, &Target::Hard(&labels));
            assert!((0.0..=1.0).contains(&out.loss), "loss {}", out.loss);
        }
    }

    #[test]
    fn nce_gradient_check() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[3, 4], 1.5, &mut rng);
        grad_check(
            &NormalizedCrossEntropy,
            &logits,
            &Target::Hard(&[1, 0, 3]),
            2e-3,
        );
    }

    #[test]
    fn rce_matches_closed_form() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        // p_y = 0.5 -> loss = 4 * 0.5 = 2.
        let out = ReverseCrossEntropy::new().evaluate(&logits, &Target::Hard(&[0]));
        assert!((out.loss - 2.0).abs() < 1e-5);
    }

    #[test]
    fn rce_gradient_check() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[3, 5], 1.5, &mut rng);
        grad_check(
            &ReverseCrossEntropy::new(),
            &logits,
            &Target::Hard(&[4, 2, 0]),
            2e-3,
        );
    }

    #[test]
    fn apl_is_weighted_sum() {
        let mut rng = Rng::seed_from(3);
        let logits = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let labels = [0u32, 2];
        let t = Target::Hard(&labels);
        let apl = ActivePassiveLoss::new(1.0, 1.0).evaluate(&logits, &t);
        let nce = NormalizedCrossEntropy.evaluate(&logits, &t);
        let rce = ReverseCrossEntropy::new().evaluate(&logits, &t);
        assert!((apl.loss - (nce.loss + rce.loss)).abs() < 1e-5);
    }

    #[test]
    fn apl_gradient_check() {
        let mut rng = Rng::seed_from(4);
        let logits = Tensor::randn(&[2, 4], 1.0, &mut rng);
        grad_check(
            &ActivePassiveLoss::new(1.0, 1.0),
            &logits,
            &Target::Hard(&[3, 1]),
            2e-3,
        );
    }

    #[test]
    fn robust_losses_saturate_under_noise() {
        // Under a wrong (noisy) label, CE grows without bound as the model
        // becomes confident, but NCE stays bounded — the robustness the
        // paper relies on.
        let confident = Tensor::from_vec(vec![12.0, 0.0], &[1, 2]);
        let wrong = Target::Hard(&[1]);
        let ce = super::super::CrossEntropy.evaluate(&confident, &wrong).loss;
        let nce = NormalizedCrossEntropy.evaluate(&confident, &wrong).loss;
        assert!(ce > 5.0);
        assert!(nce <= 1.0);
    }
}
