//! Plain cross entropy — the study's baseline criterion.

use super::{check_logits, Loss, LossOutput, Target};
use tdfm_tensor::ops::{log_softmax_rows, softmax_rows};
use tdfm_tensor::Tensor;

/// Softmax cross entropy.
///
/// This is the criterion every *baseline* (unprotected) model in the paper
/// trains with; the paper notes it is not robust to label noise
/// (Section III-B3), which is what the mitigation techniques address.
///
/// Accepts [`Target::Hard`] and [`Target::Soft`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropy;

impl Loss for CrossEntropy {
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let log_p = log_softmax_rows(logits);
        let p = softmax_rows(logits, 1.0);
        let inv_n = 1.0 / n as f32;
        match target {
            Target::Hard(labels) => {
                let mut loss = 0.0;
                let mut grad = p;
                for (i, &y) in labels.iter().enumerate() {
                    assert!((y as usize) < k, "label {y} out of range");
                    loss -= log_p.data()[i * k + y as usize];
                    grad.data_mut()[i * k + y as usize] -= 1.0;
                }
                grad.scale(inv_n);
                LossOutput {
                    loss: loss * inv_n,
                    grad,
                }
            }
            Target::Soft(q) => {
                assert_eq!(q.shape().dims(), logits.shape().dims(), "soft target shape");
                let loss = -q
                    .data()
                    .iter()
                    .zip(log_p.data())
                    .map(|(&qi, &lp)| qi * lp)
                    .sum::<f32>()
                    * inv_n;
                let mut grad = p.zip(q, |pi, qi| pi - qi);
                grad.scale(inv_n);
                LossOutput { loss, grad }
            }
            Target::Distill { .. } => panic!("CrossEntropy does not accept Distill targets"),
        }
    }

    fn name(&self) -> &'static str {
        "CE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::grad_check;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = CrossEntropy.evaluate(&logits, &Target::Hard(&[0, 3]));
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 20.0], &[2, 2]);
        let out = CrossEntropy.evaluate(&logits, &Target::Hard(&[0, 1]));
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn hard_gradient_check() {
        let mut rng = Rng::seed_from(0);
        let logits = Tensor::randn(&[3, 5], 2.0, &mut rng);
        grad_check(&CrossEntropy, &logits, &Target::Hard(&[1, 4, 0]), 1e-3);
    }

    #[test]
    fn soft_gradient_check() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[2, 4], 2.0, &mut rng);
        let q = tdfm_tensor::ops::softmax_rows(&Tensor::randn(&[2, 4], 1.0, &mut rng), 1.0);
        grad_check(&CrossEntropy, &logits, &Target::Soft(&q), 1e-3);
    }

    #[test]
    fn soft_equals_hard_for_one_hot() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [2u32, 0, 3];
        let one_hot = tdfm_tensor::ops::one_hot(&labels, 4);
        let hard = CrossEntropy.evaluate(&logits, &Target::Hard(&labels));
        let soft = CrossEntropy.evaluate(&logits, &Target::Soft(&one_hot));
        assert!((hard.loss - soft.loss).abs() < 1e-5);
        tdfm_tensor::assert_close(hard.grad.data(), soft.grad.data(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "Distill")]
    fn distill_target_rejected() {
        let logits = Tensor::zeros(&[1, 2]);
        let teacher = Tensor::zeros(&[1, 2]);
        let _ = CrossEntropy.evaluate(
            &logits,
            &Target::Distill {
                labels: &[0],
                teacher_logits: &teacher,
            },
        );
    }
}
