//! Every loss function in the study (paper Section III-B).
//!
//! All losses consume raw logits and produce the mean loss over the batch
//! plus its gradient w.r.t. the logits, so networks never apply softmax
//! themselves.

mod cross_entropy;
mod distill;
mod robust;
mod smoothing;

pub use cross_entropy::CrossEntropy;
pub use distill::DistillationLoss;
pub use robust::{ActivePassiveLoss, NormalizedCrossEntropy, ReverseCrossEntropy};
pub use smoothing::{LabelRelaxationLoss, LabelSmoothingLoss};

use tdfm_tensor::Tensor;

/// The training target a loss is evaluated against.
#[derive(Debug, Clone, Copy)]
pub enum Target<'a> {
    /// Integer class labels (possibly faulty — that is the point of the
    /// study).
    Hard(&'a [u32]),
    /// A full `[N, K]` probability distribution per sample (used by label
    /// correction's corrected targets).
    Soft(&'a Tensor),
    /// Hard labels plus a teacher's logits (knowledge distillation).
    Distill {
        /// Ground-truth (possibly faulty) labels.
        labels: &'a [u32],
        /// Raw logits produced by the teacher network.
        teacher_logits: &'a Tensor,
    },
}

impl Target<'_> {
    /// Number of samples in the target.
    pub fn len(&self) -> usize {
        match self {
            Target::Hard(l) => l.len(),
            Target::Soft(t) => t.shape().dim(0),
            Target::Distill { labels, .. } => labels.len(),
        }
    }

    /// `true` when the target covers zero samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Mean loss over a batch and its gradient w.r.t. the logits.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss value.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, shaped `[N, K]`.
    pub grad: Tensor,
}

/// A differentiable training criterion over logits.
///
/// Implementations document which [`Target`] variants they accept and panic
/// on the others — mixing a loss with the wrong target is a programming
/// error in an experiment definition, not a runtime condition.
pub trait Loss: Send + Sync {
    /// Computes mean loss and logits gradient for one batch.
    ///
    /// # Panics
    ///
    /// Panics if the target variant is unsupported or shapes disagree.
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput;

    /// Short name for reports (e.g. `"NCE+RCE"`).
    fn name(&self) -> &'static str;
}

pub(crate) fn check_logits(logits: &Tensor, target: &Target<'_>) -> (usize, usize) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, K]");
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    assert_eq!(n, target.len(), "target count must match batch size");
    (n, k)
}

/// Central-difference gradient check used by the loss tests.
#[cfg(test)]
pub(crate) fn grad_check(loss: &dyn Loss, logits: &Tensor, target: &Target<'_>, tol: f32) {
    let out = loss.evaluate(logits, target);
    let eps = 1e-2;
    for i in 0..logits.numel() {
        let mut lp = logits.clone();
        lp.data_mut()[i] += eps;
        let mut lm = logits.clone();
        lm.data_mut()[i] -= eps;
        let num = (loss.evaluate(&lp, target).loss - loss.evaluate(&lm, target).loss) / (2.0 * eps);
        let ana = out.grad.data()[i];
        assert!(
            (num - ana).abs() < tol,
            "{}: grad[{i}] numeric {num} vs analytic {ana}",
            loss.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::rng::Rng;

    /// Every softmax-based loss has logits-gradients that sum to zero per
    /// sample: adding a constant to all logits of a row cannot change the
    /// loss (softmax shift invariance), so the directional derivative
    /// along the all-ones vector must vanish.
    fn assert_row_sums_zero(loss: &dyn Loss, logits: &Tensor, target: &Target<'_>) {
        let out = loss.evaluate(logits, target);
        let k = logits.shape().dim(1);
        for (i, row) in out.grad.data().chunks(k).enumerate() {
            let s: f32 = row.iter().sum();
            assert!(
                s.abs() < 1e-4,
                "{}: row {i} gradient sums to {s}",
                loss.name()
            );
        }
    }

    #[test]
    fn gradients_are_shift_invariant() {
        for seed in (0..24u64).map(|i| i * 417) {
            let mut rng = Rng::seed_from(seed);
            let n = 3usize;
            let k = 2 + (seed % 5) as usize;
            let logits = Tensor::randn(&[n, k], 2.0, &mut rng);
            let labels: Vec<u32> = (0..n).map(|_| rng.below(k) as u32).collect();
            let hard = Target::Hard(&labels);

            assert_row_sums_zero(&CrossEntropy, &logits, &hard);
            assert_row_sums_zero(&LabelSmoothingLoss::new(0.1), &logits, &hard);
            assert_row_sums_zero(&LabelRelaxationLoss::new(0.1), &logits, &hard);
            assert_row_sums_zero(&NormalizedCrossEntropy, &logits, &hard);
            assert_row_sums_zero(&ReverseCrossEntropy::new(), &logits, &hard);
            assert_row_sums_zero(&ActivePassiveLoss::new(1.0, 1.0), &logits, &hard);

            let teacher = Tensor::randn(&[n, k], 2.0, &mut rng);
            let distill = Target::Distill {
                labels: &labels,
                teacher_logits: &teacher,
            };
            assert_row_sums_zero(&DistillationLoss::new(0.7, 4.0), &logits, &distill);
        }
    }

    #[test]
    fn losses_are_finite_on_extreme_logits() {
        let mut rng = Rng::seed_from(0xF1);
        for _ in 0..24 {
            let scale = rng.uniform(1.0, 50.0);
            let logits = Tensor::from_vec(vec![scale, -scale, 0.0, scale * 0.5], &[1, 4]);
            let labels = [2u32];
            let hard = Target::Hard(&labels);
            for loss in [
                &CrossEntropy as &dyn Loss,
                &LabelSmoothingLoss::new(0.1),
                &LabelRelaxationLoss::new(0.1),
                &NormalizedCrossEntropy,
                &ReverseCrossEntropy::new(),
                &ActivePassiveLoss::new(1.0, 1.0),
            ] {
                let out = loss.evaluate(&logits, &hard);
                assert!(out.loss.is_finite(), "{} loss not finite", loss.name());
                assert!(
                    !out.grad.has_non_finite(),
                    "{} grad not finite",
                    loss.name()
                );
            }
        }
    }

    #[test]
    fn target_len_variants() {
        let labels = [0u32, 1];
        let soft = Tensor::zeros(&[3, 4]);
        let teacher = Tensor::zeros(&[2, 4]);
        assert_eq!(Target::Hard(&labels).len(), 2);
        assert_eq!(Target::Soft(&soft).len(), 3);
        assert_eq!(
            Target::Distill {
                labels: &labels,
                teacher_logits: &teacher
            }
            .len(),
            2
        );
        assert!(!Target::Hard(&labels).is_empty());
    }
}
