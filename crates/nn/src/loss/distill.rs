//! Knowledge-distillation loss (Hinton et al.; paper Section III-B4).

use super::{check_logits, Loss, LossOutput, Target};
use tdfm_tensor::ops::softmax_rows;
use tdfm_tensor::Tensor;

/// The student criterion of (self-)distillation:
///
/// `L = (1 - alpha) * CE(p, y) + alpha * T^2 * KL(q_T || p_T)`
///
/// where `p` is the student's softmax, `q_T`/`p_T` are teacher/student
/// softmaxes at temperature `T`. A larger `alpha` weights the teacher's
/// distilled knowledge more — which is exactly why distillation degrades at
/// high mislabelling rates ("garbage in, garbage out", Section IV-B): the
/// teacher itself was trained on the faulty data.
///
/// Accepts [`Target::Distill`].
#[derive(Debug, Clone, Copy)]
pub struct DistillationLoss {
    alpha: f32,
    temperature: f32,
}

impl DistillationLoss {
    /// Creates a distillation loss; the study uses `alpha = 0.7`, `T = 4`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= alpha <= 1` and `temperature > 0`.
    pub fn new(alpha: f32, temperature: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(temperature > 0.0, "temperature must be positive");
        Self { alpha, temperature }
    }

    /// Teacher-knowledge weight.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Softmax temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }
}

impl Loss for DistillationLoss {
    fn evaluate(&self, logits: &Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let (labels, teacher_logits) = match target {
            Target::Distill {
                labels,
                teacher_logits,
            } => (*labels, *teacher_logits),
            _ => panic!("DistillationLoss accepts only Distill targets"),
        };
        assert_eq!(
            teacher_logits.shape().dims(),
            logits.shape().dims(),
            "teacher logits shape mismatch"
        );
        let t = self.temperature;
        let p = softmax_rows(logits, 1.0);
        let p_t = softmax_rows(logits, t);
        let q_t = softmax_rows(teacher_logits, t);
        let inv_n = 1.0 / n as f32;
        let eps = 1e-8;

        // Hard-label CE part.
        let mut loss = 0.0;
        let mut grad = Tensor::zeros(&[n, k]);
        for (i, &y) in labels.iter().enumerate() {
            let yi = y as usize;
            assert!(yi < k, "label {y} out of range");
            loss += -(1.0 - self.alpha) * (p.data()[i * k + yi] + eps).ln();
            for j in 0..k {
                let delta = if j == yi { 1.0 } else { 0.0 };
                grad.data_mut()[i * k + j] +=
                    (1.0 - self.alpha) * (p.data()[i * k + j] - delta) * inv_n;
            }
        }

        // Distillation part: alpha * T^2 * KL(q_T || p_T).
        // d/dz of that term is alpha * T * (p_T - q_T).
        for i in 0..n {
            for j in 0..k {
                let q = q_t.data()[i * k + j];
                let pt = p_t.data()[i * k + j];
                if q > 0.0 {
                    loss += self.alpha * t * t * q * ((q + eps).ln() - (pt + eps).ln());
                }
                grad.data_mut()[i * k + j] += self.alpha * t * (pt - q) * inv_n;
            }
        }
        LossOutput {
            loss: loss * inv_n,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "KD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::grad_check;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn matching_teacher_and_correct_label_give_low_loss() {
        let logits = Tensor::from_vec(vec![8.0, 0.0], &[1, 2]);
        let teacher = logits.clone();
        let out = DistillationLoss::new(0.7, 4.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &[0],
                teacher_logits: &teacher,
            },
        );
        assert!(out.loss < 1e-2, "loss {}", out.loss);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::seed_from(0);
        let logits = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let teacher = Tensor::randn(&[2, 4], 1.0, &mut rng);
        grad_check(
            &DistillationLoss::new(0.7, 4.0),
            &logits,
            &Target::Distill {
                labels: &[1, 3],
                teacher_logits: &teacher,
            },
            2e-3,
        );
    }

    #[test]
    fn alpha_zero_reduces_to_cross_entropy() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let teacher = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [0u32, 1, 2];
        let kd = DistillationLoss::new(0.0, 4.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &labels,
                teacher_logits: &teacher,
            },
        );
        let ce = super::super::CrossEntropy.evaluate(&logits, &Target::Hard(&labels));
        assert!((kd.loss - ce.loss).abs() < 1e-4);
        tdfm_tensor::assert_close(kd.grad.data(), ce.grad.data(), 1e-5);
    }

    #[test]
    fn alpha_one_ignores_labels() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let teacher = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let a = DistillationLoss::new(1.0, 2.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &[0, 0],
                teacher_logits: &teacher,
            },
        );
        let b = DistillationLoss::new(1.0, 2.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &[2, 1],
                teacher_logits: &teacher,
            },
        );
        assert!((a.loss - b.loss).abs() < 1e-6);
    }

    #[test]
    fn teacher_pull_strengthens_with_alpha() {
        // A teacher that disagrees with the label pulls the student harder
        // as alpha grows — the mechanism behind garbage-in-garbage-out.
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let teacher = Tensor::from_vec(vec![6.0, 0.0], &[1, 2]);
        // Label says class 1, teacher says class 0.
        let low = DistillationLoss::new(0.2, 4.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &[1],
                teacher_logits: &teacher,
            },
        );
        let high = DistillationLoss::new(0.9, 4.0).evaluate(
            &logits,
            &Target::Distill {
                labels: &[1],
                teacher_logits: &teacher,
            },
        );
        // With high alpha, the gradient on logit 0 is more negative
        // (pushing towards the teacher's class 0).
        assert!(high.grad.data()[0] < low.grad.data()[0]);
    }
}
