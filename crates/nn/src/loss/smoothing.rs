//! Label smoothing and label relaxation (paper Section III-B1).

use super::{check_logits, Loss, LossOutput, Target};
use tdfm_tensor::ops::{log_softmax_rows, softmax_rows};

/// Classic label smoothing: the one-hot target is mixed with the uniform
/// distribution, `q_i = (1 - alpha) * p_i + alpha / K`.
///
/// Accepts [`Target::Hard`].
#[derive(Debug, Clone, Copy)]
pub struct LabelSmoothingLoss {
    alpha: f32,
}

impl LabelSmoothingLoss {
    /// Creates a smoothing loss; the paper's configurations use
    /// `alpha = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= alpha < 1`.
    pub fn new(alpha: f32) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        Self { alpha }
    }

    /// The smoothing coefficient.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Loss for LabelSmoothingLoss {
    fn evaluate(&self, logits: &tdfm_tensor::Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let labels = match target {
            Target::Hard(l) => *l,
            _ => panic!("LabelSmoothingLoss accepts only Hard targets"),
        };
        let log_p = log_softmax_rows(logits);
        let p = softmax_rows(logits, 1.0);
        let off = self.alpha / k as f32;
        let on = 1.0 - self.alpha + off;
        let inv_n = 1.0 / n as f32;
        let mut loss = 0.0;
        let mut grad = p;
        for (i, &y) in labels.iter().enumerate() {
            assert!((y as usize) < k, "label {y} out of range");
            for j in 0..k {
                let q = if j == y as usize { on } else { off };
                loss -= q * log_p.data()[i * k + j];
                grad.data_mut()[i * k + j] -= q;
            }
        }
        grad.scale(inv_n);
        LossOutput {
            loss: loss * inv_n,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "LS"
    }
}

/// Label relaxation (Lienen & Hüllermeier, AAAI'21) — the paper's
/// *representative* label-smoothing technique (Table I).
///
/// Instead of a single smoothed target, the target is the *credal set* of
/// distributions giving the true class at least `1 - alpha` mass. The loss
/// is zero when the prediction already lies in the set; otherwise it is the
/// KL divergence to the set's closest member, whose off-target mass is
/// distributed proportionally to the prediction itself:
///
/// `pr_y = 1 - alpha`, `pr_j = alpha * p_j / (1 - p_y)` for `j != y`.
///
/// This is what lets the model "choose from any distribution" over the
/// non-target classes (Section III-B1). Accepts [`Target::Hard`].
#[derive(Debug, Clone, Copy)]
pub struct LabelRelaxationLoss {
    alpha: f32,
}

impl LabelRelaxationLoss {
    /// Creates a relaxation loss; the paper's configurations use
    /// `alpha = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        Self { alpha }
    }

    /// The relaxation coefficient.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Loss for LabelRelaxationLoss {
    fn evaluate(&self, logits: &tdfm_tensor::Tensor, target: &Target<'_>) -> LossOutput {
        let (n, k) = check_logits(logits, target);
        let labels = match target {
            Target::Hard(l) => *l,
            _ => panic!("LabelRelaxationLoss accepts only Hard targets"),
        };
        let p = softmax_rows(logits, 1.0);
        let log_p = log_softmax_rows(logits);
        let inv_n = 1.0 / n as f32;
        let mut loss = 0.0;
        let mut grad = tdfm_tensor::Tensor::zeros(&[n, k]);
        let eps = 1e-8;
        for (i, &y) in labels.iter().enumerate() {
            let yi = y as usize;
            assert!(yi < k, "label {y} out of range");
            let py = p.data()[i * k + yi];
            if py >= 1.0 - self.alpha {
                // Prediction already inside the credal set: zero loss.
                continue;
            }
            // Projection onto the credal set boundary. Clamp away from
            // zero without f32::max: a NaN prediction must stay NaN
            // (f32::max(NaN, eps) would launder it into eps); for finite
            // py the comparison picks the same bits `max` would.
            let rest = 1.0 - py;
            let rest = if rest < eps { eps } else { rest };
            for j in 0..k {
                let pj = p.data()[i * k + j];
                let pr = if j == yi {
                    1.0 - self.alpha
                } else {
                    self.alpha * pj / rest
                };
                // KL(pr || p) = sum pr log(pr / p); gradient w.r.t. logits
                // with pr treated as constant is (p - pr).
                if pr > 0.0 {
                    loss += pr * ((pr + eps).ln() - log_p.data()[i * k + j]);
                }
                grad.data_mut()[i * k + j] = (pj - pr) * inv_n;
            }
        }
        LossOutput {
            loss: loss * inv_n,
            grad,
        }
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Target;
    use tdfm_tensor::rng::Rng;
    use tdfm_tensor::Tensor;

    #[test]
    fn smoothing_matches_paper_example() {
        // alpha = 0.1 turns [0, 1, 0] into [0.033, 0.933, 0.033]
        // (Section III-B1). Verify via the implied target in the gradient:
        // at p == q the gradient is zero.
        let ls = LabelSmoothingLoss::new(0.1);
        // Build logits whose softmax equals the smoothed target.
        let q = [0.1f32 / 3.0, 1.0 - 0.1 + 0.1 / 3.0, 0.1 / 3.0];
        let logits = Tensor::from_vec(q.iter().map(|x| x.ln()).collect(), &[1, 3]);
        let out = ls.evaluate(&logits, &Target::Hard(&[1]));
        assert!(
            out.grad.max_abs() < 1e-4,
            "gradient at the target should vanish"
        );
    }

    #[test]
    fn smoothing_gradient_check() {
        let mut rng = Rng::seed_from(0);
        let logits = Tensor::randn(&[3, 4], 2.0, &mut rng);
        crate::loss::grad_check(
            &LabelSmoothingLoss::new(0.1),
            &logits,
            &Target::Hard(&[0, 2, 3]),
            1e-3,
        );
    }

    #[test]
    fn smoothing_with_zero_alpha_is_cross_entropy() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let labels = [4u32, 1];
        let ls = LabelSmoothingLoss::new(0.0).evaluate(&logits, &Target::Hard(&labels));
        let ce = super::super::CrossEntropy.evaluate(&logits, &Target::Hard(&labels));
        assert!((ls.loss - ce.loss).abs() < 1e-5);
        tdfm_tensor::assert_close(ls.grad.data(), ce.grad.data(), 1e-6);
    }

    #[test]
    fn relaxation_zero_inside_credal_set() {
        // Confident correct prediction: p_y > 1 - alpha -> loss 0, grad 0.
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]);
        let lr = LabelRelaxationLoss::new(0.1);
        let out = lr.evaluate(&logits, &Target::Hard(&[0]));
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.max_abs(), 0.0);
    }

    #[test]
    fn relaxation_penalises_outside_credal_set() {
        let logits = Tensor::from_vec(vec![0.0, 0.0, 0.0], &[1, 3]);
        let lr = LabelRelaxationLoss::new(0.1);
        let out = lr.evaluate(&logits, &Target::Hard(&[0]));
        assert!(out.loss > 0.0);
        // Gradient pushes the target logit up.
        assert!(out.grad.data()[0] < 0.0);
    }

    #[test]
    fn relaxation_softer_than_cross_entropy() {
        // The relaxed target demands less than the one-hot target, so the
        // loss should be smaller on imperfect predictions — the mechanism
        // by which it "reduces the distance between correct and incorrect
        // encodings" (Section III-B1).
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let labels = [0u32, 1, 2, 3];
        let lr = LabelRelaxationLoss::new(0.1).evaluate(&logits, &Target::Hard(&labels));
        let ce = super::super::CrossEntropy.evaluate(&logits, &Target::Hard(&labels));
        assert!(lr.loss < ce.loss);
    }

    #[test]
    #[should_panic(expected = "Hard targets")]
    fn relaxation_rejects_soft_targets() {
        let logits = Tensor::zeros(&[1, 2]);
        let q = Tensor::zeros(&[1, 2]);
        let _ = LabelRelaxationLoss::new(0.1).evaluate(&logits, &Target::Soft(&q));
    }
}
