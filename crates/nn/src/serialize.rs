//! Saving and loading trained models.
//!
//! Networks are rebuilt from their `(ModelKind, ModelConfig)` recipe, so a
//! saved model is just that recipe plus the flat parameter buffers in
//! construction order — compact, versionable, and independent of layer
//! internals. The experiment runner's golden models and the examples'
//! trained classifiers can thus be checkpointed to disk and reloaded
//! bit-exactly.

use crate::models::{ModelConfig, ModelKind};
use crate::Network;
use tdfm_json::{FromJson, JsonError, ToJson, Value};

/// A serialisable snapshot of a trained [`Network`].
///
/// # Examples
///
/// ```
/// use tdfm_nn::models::{ModelConfig, ModelKind};
/// use tdfm_nn::serialize::SavedModel;
///
/// let cfg = ModelConfig { in_shape: (1, 4, 4), classes: 2, width: 2, seed: 0 };
/// let mut net = ModelKind::ConvNet.build(&cfg);
/// let saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
/// let mut restored = saved.restore().unwrap();
/// assert_eq!(restored.param_count(), net.param_count());
/// ```
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// Architecture recipe.
    pub kind: ModelKind,
    /// Construction parameters.
    pub config: ModelConfig,
    /// Flat parameter buffers in `params_mut()` order.
    pub params: Vec<Vec<f32>>,
    /// Non-trainable state (batch-norm running statistics) in
    /// `state_mut()` order. Defaults to empty when absent, so snapshots
    /// written before state was captured still load.
    pub state: Vec<Vec<f32>>,
}

// Hand-written (de)serialization instead of `json_struct!`: weight buffers
// are stored as IEEE-754 bit patterns (`params_bits`/`state_bits`,
// `Vec<Vec<u32>>`) because the float wire format writes non-finite values
// as `null` and reads `null` back as NaN — an Inf weight (the common result
// of an exponent-bit SEU flip) would silently become NaN and a NaN payload
// would be lost. Bit patterns round-trip every f32 exactly.
impl ToJson for SavedModel {
    fn to_json(&self) -> Value {
        let bits = |buffers: &[Vec<f32>]| {
            Value::Array(
                buffers
                    .iter()
                    .map(|buf| {
                        buf.iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<u32>>()
                            .to_json()
                    })
                    .collect(),
            )
        };
        Value::Object(vec![
            ("kind".to_string(), self.kind.to_json()),
            ("config".to_string(), self.config.to_json()),
            ("params_bits".to_string(), bits(&self.params)),
            ("state_bits".to_string(), bits(&self.state)),
        ])
    }
}

impl FromJson for SavedModel {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let from_bits = |v: &Value, name: &str| -> Result<Vec<Vec<f32>>, JsonError> {
            let raw: Vec<Vec<u32>> = tdfm_json::field(v, name)?;
            Ok(raw
                .into_iter()
                .map(|buf| buf.into_iter().map(f32::from_bits).collect())
                .collect())
        };
        let params = if v.get("params_bits").is_some() {
            from_bits(v, "params_bits")?
        } else {
            // Legacy float format (pre-0.4.0 checkpoints).
            tdfm_json::field(v, "params")?
        };
        let state = if v.get("state_bits").is_some() {
            from_bits(v, "state_bits")?
        } else {
            tdfm_json::field_or_default(v, "state")?
        };
        Ok(Self {
            kind: tdfm_json::field(v, "kind")?,
            config: tdfm_json::field(v, "config")?,
            params,
            state,
        })
    }
}

/// Errors returned when restoring a saved model.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot's parameter count does not match the rebuilt network
    /// (e.g. the snapshot was produced by an incompatible version).
    ParameterMismatch {
        /// Parameter tensors the architecture expects.
        expected: usize,
        /// Parameter tensors found in the snapshot.
        found: usize,
    },
    /// One parameter buffer has the wrong number of elements.
    ShapeMismatch {
        /// Index of the offending parameter.
        index: usize,
        /// Elements the architecture expects.
        expected: usize,
        /// Elements found in the snapshot.
        found: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ParameterMismatch { expected, found } => write!(
                f,
                "snapshot has {found} parameter tensors, architecture expects {expected}"
            ),
            RestoreError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {index} has {found} elements, architecture expects {expected}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl SavedModel {
    /// Captures the current parameters and state of a network built from
    /// `(kind, config)`.
    pub fn capture(kind: ModelKind, config: ModelConfig, net: &mut Network) -> Self {
        let params = net
            .params_mut()
            .iter()
            .map(|p| p.value.data().to_vec())
            .collect();
        let state = net.state_mut().iter().map(|s| s.to_vec()).collect();
        Self {
            kind,
            config,
            params,
            state,
        }
    }

    /// Rebuilds the network and restores the captured parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] when the snapshot does not match the
    /// architecture the recipe builds.
    pub fn restore(&self) -> Result<Network, RestoreError> {
        let mut net = self.kind.build(&self.config);
        let mut params = net.params_mut();
        if params.len() != self.params.len() {
            return Err(RestoreError::ParameterMismatch {
                expected: params.len(),
                found: self.params.len(),
            });
        }
        for (i, (param, saved)) in params.iter_mut().zip(&self.params).enumerate() {
            if param.value.numel() != saved.len() {
                return Err(RestoreError::ShapeMismatch {
                    index: i,
                    expected: param.value.numel(),
                    found: saved.len(),
                });
            }
            param.value.data_mut().copy_from_slice(saved);
        }
        let mut state = net.state_mut();
        if state.len() != self.state.len() {
            return Err(RestoreError::ParameterMismatch {
                expected: state.len(),
                found: self.state.len(),
            });
        }
        for (i, (buf, saved)) in state.iter_mut().zip(&self.state).enumerate() {
            if buf.len() != saved.len() {
                return Err(RestoreError::ShapeMismatch {
                    index: i,
                    expected: buf.len(),
                    found: saved.len(),
                });
            }
            buf.copy_from_slice(saved);
        }
        Ok(net)
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        tdfm_json::to_string(self)
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, tdfm_json::JsonError> {
        tdfm_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;
    use crate::trainer::{fit, FitConfig, TargetSource};
    use tdfm_tensor::rng::Rng;
    use tdfm_tensor::Tensor;

    fn trained_net() -> (ModelConfig, Network, Tensor) {
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 3,
        };
        let mut net = ModelKind::ConvNet.build(&cfg);
        let mut rng = Rng::seed_from(0);
        let x = Tensor::randn(&[16, 1, 4, 4], 1.0, &mut rng);
        let y: Vec<u32> = (0..16).map(|i| (i % 2) as u32).collect();
        fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 2,
                batch_size: 8,
                ..FitConfig::default()
            },
        );
        (cfg, net, x)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (cfg, mut net, x) = trained_net();
        let saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        let mut restored = saved.restore().unwrap();
        assert_eq!(restored.predict(&x, 8), net.predict(&x, 8));
        let logits_a = net.logits(&x, 8);
        let logits_b = restored.logits(&x, 8);
        assert_eq!(logits_a.data(), logits_b.data());
    }

    #[test]
    fn json_roundtrip() {
        let (cfg, mut net, x) = trained_net();
        let saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        let json = saved.to_json();
        let back = SavedModel::from_json(&json).unwrap();
        let mut restored = back.restore().unwrap();
        assert_eq!(restored.predict(&x, 8), net.predict(&x, 8));
    }

    #[test]
    fn mismatched_snapshot_is_rejected() {
        let (cfg, mut net, _) = trained_net();
        let mut saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        saved.params.pop();
        assert!(matches!(
            saved.restore(),
            Err(RestoreError::ParameterMismatch { .. })
        ));

        let mut saved2 = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        saved2.params[0].push(0.0);
        assert!(matches!(
            saved2.restore(),
            Err(RestoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn batch_norm_running_statistics_survive_checkpointing() {
        // Regression test: running statistics are state, not parameters;
        // dropping them silently changes eval-mode predictions.
        let cfg = ModelConfig {
            in_shape: (1, 4, 4),
            classes: 2,
            width: 2,
            seed: 5,
        };
        let mut net = ModelKind::ResNet18.build(&cfg);
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[8, 1, 4, 4], 1.0, &mut rng).map(|v| v * 3.0 + 1.0);
        let y: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        fit(
            &mut net,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(y),
            &FitConfig {
                epochs: 3,
                batch_size: 4,
                ..FitConfig::default()
            },
        );
        let saved = SavedModel::capture(ModelKind::ResNet18, cfg, &mut net);
        assert!(!saved.state.is_empty(), "ResNet18 must expose BN state");
        // Trained running stats are not the initialisation values.
        assert!(saved
            .state
            .iter()
            .any(|s| s.iter().any(|&v| v != 0.0 && v != 1.0)));
        let mut restored = saved.restore().unwrap();
        assert_eq!(
            restored.logits(&x, 4).data(),
            net.logits(&x, 4).data(),
            "eval-mode outputs must match bit-for-bit"
        );
    }

    #[test]
    fn non_finite_and_denormal_weights_round_trip_bit_exactly() {
        // A fault-injected checkpoint routinely holds Inf (exponent-bit
        // flip), NaN (possibly with payload bits) and denormals. The old
        // float wire format laundered all of these through `null`.
        let (cfg, mut net, _) = trained_net();
        let mut saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        let specials = [
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::from_bits(0x0000_0001), // smallest positive denormal
            f32::MIN_POSITIVE / 2.0,     // denormal
            -0.0,
        ];
        for (i, &v) in specials.iter().enumerate() {
            saved.params[0][i] = v;
        }
        let back = SavedModel::from_json(&saved.to_json()).unwrap();
        for (a, b) in saved.params.iter().zip(&back.params) {
            let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "params must survive bit-for-bit");
        }
        for (a, b) in saved.state.iter().zip(&back.state) {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn bitflipped_to_inf_weight_survives_save_load() {
        // The acceptance criterion verbatim: flip a weight's top exponent
        // bit (1.0 -> +Inf), checkpoint, reload, and find the same bits.
        let (cfg, mut net, _) = trained_net();
        let mut saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        saved.params[0][0] = tdfm_tensor::bitops::bitflip_f32(1.0, 30);
        assert!(saved.params[0][0].is_infinite());
        let back = SavedModel::from_json(&saved.to_json()).unwrap();
        assert_eq!(back.params[0][0].to_bits(), f32::INFINITY.to_bits());
        let restored = back.restore().unwrap();
        drop(restored); // restore() must accept non-finite buffers
    }

    #[test]
    fn legacy_float_format_still_loads() {
        // Pre-0.4.0 checkpoints carry `params`/`state` as float arrays
        // (and may omit `state` entirely); from_json must keep reading them.
        let (cfg, mut net, x) = trained_net();
        let saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
        let legacy = tdfm_json::to_string(&LegacySavedModel {
            kind: saved.kind,
            config: saved.config,
            params: saved.params.clone(),
            state: saved.state.clone(),
        });
        let back = SavedModel::from_json(&legacy).unwrap();
        let mut restored = back.restore().unwrap();
        assert_eq!(restored.predict(&x, 8), net.predict(&x, 8));
        // `state` may be absent in the oldest snapshots.
        let no_state = legacy.replace(",\"state\":", ",\"ignored\":");
        let back2 = SavedModel::from_json(&no_state).unwrap();
        assert!(back2.state.is_empty());
    }

    // The old wire format, reconstructed for the compatibility test above.
    struct LegacySavedModel {
        kind: ModelKind,
        config: ModelConfig,
        params: Vec<Vec<f32>>,
        state: Vec<Vec<f32>>,
    }
    tdfm_json::json_struct!(LegacySavedModel {
        kind,
        config,
        params,
        state
    });

    #[test]
    fn works_for_every_architecture() {
        let cfg = ModelConfig {
            in_shape: (3, 6, 6),
            classes: 4,
            width: 2,
            seed: 9,
        };
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        for kind in ModelKind::ALL {
            let mut net = kind.build(&cfg);
            let saved = SavedModel::capture(kind, cfg, &mut net);
            let mut restored = saved.restore().unwrap();
            assert_eq!(
                restored.logits(&x, 2).data(),
                net.logits(&x, 2).data(),
                "{kind}"
            );
        }
    }
}
