//! Pooling layers wrapping the `tdfm-tensor` kernels.

use crate::layer::{Layer, Mode};
use tdfm_tensor::ops::{
    avg_pool2d_backward_with, avg_pool2d_forward_with, global_avg_pool_backward_with,
    global_avg_pool_forward_with, max_pool2d_backward_with, max_pool2d_forward_with, MaxPoolCache,
};
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// Max pooling over square windows (ConvNet / VGG families).
///
/// The argmax cache is recycled through the scratch arena between batches.
/// Unlike the value caches of dense/conv layers, the cache is kept in every
/// mode: it holds routing indices, not activations, and the backward pass
/// cannot run without it.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    s: usize,
    cache: Option<MaxPoolCache>,
    scratch: ScratchHandle,
}

impl MaxPool2d {
    /// Creates a max pool with window `k` and stride `s`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `s == 0`.
    pub fn new(k: usize, s: usize) -> Self {
        assert!(k > 0 && s > 0, "pool window and stride must be positive");
        Self {
            k,
            s,
            cache: None,
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (out, cache) = max_pool2d_forward_with(input, self.k, self.s, &self.scratch);
        if let Some(old) = self.cache.take() {
            old.recycle(&self.scratch);
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("forward before backward");
        max_pool2d_backward_with(grad_output, cache, &self.scratch)
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Average pooling over square windows.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    s: usize,
    input_dims: Vec<usize>,
    scratch: ScratchHandle,
}

impl AvgPool2d {
    /// Creates an average pool with window `k` and stride `s`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `s == 0`.
    pub fn new(k: usize, s: usize) -> Self {
        assert!(k > 0 && s > 0, "pool window and stride must be positive");
        Self {
            k,
            s,
            input_dims: Vec::new(),
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims.clear();
        self.input_dims.extend_from_slice(input.shape().dims());
        avg_pool2d_forward_with(input, self.k, self.s, &self.scratch)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.input_dims.is_empty(), "forward before backward");
        avg_pool2d_backward_with(grad_output, &self.input_dims, self.k, self.s, &self.scratch)
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[N,C,H,W] -> [N,C]` (ResNet / MobileNet heads).
#[derive(Debug)]
pub struct GlobalAvgPool {
    input_dims: Vec<usize>,
    scratch: ScratchHandle,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self {
            input_dims: Vec::new(),
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims.clear();
        self.input_dims.extend_from_slice(input.shape().dims());
        global_avg_pool_forward_with(input, &self.scratch)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.input_dims.is_empty(), "forward before backward");
        global_avg_pool_backward_with(grad_output, &self.input_dims, &self.scratch)
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_roundtrip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        let gx = p.backward(&Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(gx.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn global_avg_pool_layer_shapes() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let gx = p.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(gx.shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn avg_pool_layer_gradient_is_uniform() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let _ = p.forward(&x, Mode::Train);
        let gx = p.backward(&Tensor::ones(&[1, 1, 2, 2]));
        assert!(gx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }
}
