//! Convolution layer wrapping the `tdfm-tensor` conv kernels.

use crate::layer::{Layer, Mode, Param};
use tdfm_tensor::ops::{conv2d_backward_with, conv2d_forward_with, Conv2dSpec};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// A 2-D convolution layer with optional stride, padding and groups.
///
/// `groups == in_channels` produces the depthwise convolution MobileNet
/// uses; `kernel == 1` with `groups == 1` is its pointwise companion.
///
/// The input activation is cached only under [`Mode::Train`]; evaluation
/// passes drop any previous cache so inference never retains (or trains
/// against) stale activations.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    input_cache: Option<Tensor>,
    scratch: ScratchHandle,
}

impl Conv2d {
    /// Creates a convolution with He-initialised kernels.
    ///
    /// # Panics
    ///
    /// Panics if channel counts are not divisible by `spec.groups`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            in_channels.is_multiple_of(spec.groups),
            "in_channels vs groups"
        );
        assert!(
            out_channels.is_multiple_of(spec.groups),
            "out_channels vs groups"
        );
        let fan_in = (in_channels / spec.groups) * kernel * kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            weight: Param::new(Tensor::randn(
                &[out_channels, in_channels / spec.groups, kernel, kernel],
                std,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            spec,
            input_cache: None,
            scratch: Scratch::shared().clone(),
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// `true` when a Train-mode forward pass has left an activation cached.
    pub fn has_cached_input(&self) -> bool {
        self.input_cache.is_some()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = conv2d_forward_with(
            input,
            &self.weight.value,
            Some(&self.bias.value),
            self.spec,
            &self.scratch,
        );
        if let Some(old) = self.input_cache.take() {
            self.scratch.recycle(old);
        }
        if mode == Mode::Train {
            let mut cache = self.scratch.tensor_uninit(input.shape().dims());
            cache.data_mut().copy_from_slice(input.data());
            self.input_cache = Some(cache);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .as_ref()
            .expect("Train-mode forward before backward");
        let grads = conv2d_backward_with(
            input,
            &self.weight.value,
            grad_output,
            self.spec,
            &self.scratch,
        );
        self.weight.grad.axpy(1.0, &grads.grad_weight);
        self.bias.grad.axpy(1.0, &grads.grad_bias);
        self.scratch.recycle(grads.grad_weight);
        self.scratch.recycle(grads.grad_bias);
        grads.grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_respects_spec() {
        let mut rng = Rng::seed_from(0);
        let mut c = Conv2d::new(
            3,
            8,
            3,
            Conv2dSpec {
                stride: 2,
                pad: 1,
                groups: 1,
            },
            &mut rng,
        );
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn depthwise_parameter_count() {
        let mut rng = Rng::seed_from(1);
        let mut c = Conv2d::new(
            8,
            8,
            3,
            Conv2dSpec {
                stride: 1,
                pad: 1,
                groups: 8,
            },
            &mut rng,
        );
        // 8 kernels of 1x3x3 plus 8 biases.
        assert_eq!(c.param_count(), 8 * 9 + 8);
    }

    #[test]
    fn backward_gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut c = Conv2d::new(2, 3, 3, Conv2dSpec::same(3), &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let y = c.forward(&x, Mode::Train);
        let gx = c.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-2;
        for i in [0usize, 13, 27, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (c.forward(&xp, Mode::Train).sum() - c.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 2e-2, "x[{i}]");
        }
    }

    #[test]
    fn eval_forward_leaves_no_cached_input() {
        // Regression test: forward used to cache the input unconditionally.
        let mut rng = Rng::seed_from(3);
        let mut c = Conv2d::new(1, 2, 3, Conv2dSpec::same(3), &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let _ = c.forward(&x, Mode::Eval);
        assert!(!c.has_cached_input(), "Eval must not cache activations");
        let _ = c.forward(&x, Mode::Train);
        assert!(c.has_cached_input());
        let _ = c.forward(&x, Mode::Eval);
        assert!(!c.has_cached_input(), "Eval must drop a stale Train cache");
    }

    #[test]
    fn nan_input_poisons_forward_even_with_zero_weights() {
        let mut rng = Rng::seed_from(4);
        let mut c = Conv2d::new(1, 1, 3, Conv2dSpec::same(3), &mut rng);
        c.weight.value.fill(0.0);
        let mut x = Tensor::zeros(&[1, 1, 4, 4]);
        x.data_mut()[5] = f32::NAN;
        let y = c.forward(&x, Mode::Train);
        // Every window covering index 5 must see 0·NaN = NaN.
        assert!(y.data()[5].is_nan(), "NaN must not be skipped: {:?}", y);
    }
}
