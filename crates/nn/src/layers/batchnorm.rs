//! Batch normalisation over channels of NCHW tensors.

use crate::layer::{Layer, Mode, Param};
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// 2-D batch normalisation: normalises each channel over the batch and
/// spatial dimensions, then applies a learned scale (`gamma`) and shift
/// (`beta`).
///
/// Running statistics are tracked with exponential moving averages and used
/// in [`Mode::Eval`]; the ResNet and MobileNet analogues rely on this layer
/// to train stably at the study's depths. Per-channel work buffers are
/// reused across batches and the activation tensors come from the scratch
/// arena, so steady-state passes allocate nothing.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Caches for backward.
    x_hat: Option<Tensor>,
    inv_std: Vec<f32>,
    count: usize,
    last_was_train: bool,
    // Reused per-channel work buffers.
    mean_buf: Vec<f32>,
    var_buf: Vec<f32>,
    sum_gy: Vec<f32>,
    sum_gy_xhat: Vec<f32>,
    scratch: ScratchHandle,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            x_hat: None,
            inv_std: vec![0.0; channels],
            count: 0,
            last_was_train: false,
            mean_buf: vec![0.0; channels],
            var_buf: vec![0.0; channels],
            sum_gy: vec![0.0; channels],
            sum_gy_xhat: vec![0.0; channels],
            scratch: Scratch::shared().clone(),
        }
    }

    fn channel_stats(input: &Tensor) -> (usize, usize, usize) {
        assert_eq!(input.shape().rank(), 4, "batch norm input must be NCHW");
        let n = input.shape().dim(0);
        let c = input.shape().dim(1);
        let hw = input.shape().dim(2) * input.shape().dim(3);
        (n, c, hw)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (n, c, hw) = Self::channel_stats(input);
        assert_eq!(c, self.gamma.numel(), "channel count mismatch");
        let count = n * hw;
        self.count = count;
        self.last_was_train = mode == Mode::Train;

        self.mean_buf.fill(0.0);
        self.var_buf.fill(0.0);
        if mode == Mode::Train {
            for s in 0..n {
                for (ch, m) in self.mean_buf.iter_mut().enumerate() {
                    let base = (s * c + ch) * hw;
                    let slice = &input.data()[base..base + hw];
                    *m += slice.iter().sum::<f32>();
                }
            }
            for m in &mut self.mean_buf {
                *m /= count as f32;
            }
            for s in 0..n {
                for ch in 0..c {
                    let base = (s * c + ch) * hw;
                    for &x in &input.data()[base..base + hw] {
                        let d = x - self.mean_buf[ch];
                        self.var_buf[ch] += d * d;
                    }
                }
            }
            for v in &mut self.var_buf {
                *v /= count as f32;
            }
            for ch in 0..c {
                self.running_mean[ch] = (1.0 - self.momentum) * self.running_mean[ch]
                    + self.momentum * self.mean_buf[ch];
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * self.var_buf[ch];
            }
        } else {
            self.mean_buf.copy_from_slice(&self.running_mean);
            self.var_buf.copy_from_slice(&self.running_var);
        }

        let eps = self.eps;
        self.inv_std.clear();
        self.inv_std
            .extend(self.var_buf.iter().map(|v| 1.0 / (v + eps).sqrt()));

        let mut out = self.scratch.tensor_uninit(input.shape().dims());
        let mut x_hat = self.scratch.tensor_uninit(input.shape().dims());
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                let (m, is) = (self.mean_buf[ch], self.inv_std[ch]);
                let (gc, bc) = (g[ch], b[ch]);
                let src = &input.data()[base..base + hw];
                let xh = &mut x_hat.data_mut()[base..base + hw];
                let o = &mut out.data_mut()[base..base + hw];
                for i in 0..hw {
                    let norm = (src[i] - m) * is;
                    xh[i] = norm;
                    o[i] = gc * norm + bc;
                }
            }
        }
        if let Some(old) = self.x_hat.take() {
            self.scratch.recycle(old);
        }
        if mode == Mode::Train {
            self.x_hat = Some(x_hat);
        } else {
            self.scratch.recycle(x_hat);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            self.last_was_train,
            "backward requires a Train-mode forward"
        );
        let x_hat = self.x_hat.as_ref().expect("forward before backward");
        let (n, c, hw) = Self::channel_stats(grad_output);
        let count = self.count as f32;

        // Per-channel reductions.
        self.sum_gy.fill(0.0);
        self.sum_gy_xhat.fill(0.0);
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                let gy = &grad_output.data()[base..base + hw];
                let xh = &x_hat.data()[base..base + hw];
                for i in 0..hw {
                    self.sum_gy[ch] += gy[i];
                    self.sum_gy_xhat[ch] += gy[i] * xh[i];
                }
            }
        }
        for ch in 0..c {
            self.beta.grad.data_mut()[ch] += self.sum_gy[ch];
            self.gamma.grad.data_mut()[ch] += self.sum_gy_xhat[ch];
        }

        let g = self.gamma.value.data();
        let mut grad_input = self.scratch.tensor_uninit(grad_output.shape().dims());
        for s in 0..n {
            // `ch` indexes four per-channel buffers at once, so a plain
            // counted loop reads better than chained enumerates.
            #[allow(clippy::needless_range_loop)]
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                let coeff = g[ch] * self.inv_std[ch];
                let mean_gy = self.sum_gy[ch] / count;
                let mean_gy_xhat = self.sum_gy_xhat[ch] / count;
                let xh = &x_hat.data()[base..base + hw];
                let gy = &grad_output.data()[base..base + hw];
                let gi = &mut grad_input.data_mut()[base..base + hw];
                for i in 0..hw {
                    gi[i] = coeff * (gy[i] - mean_gy - xh[i] * mean_gy_xhat);
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn state_mut(&mut self) -> Vec<&mut [f32]> {
        vec![
            self.running_mean.as_mut_slice(),
            self.running_var.as_mut_slice(),
        ]
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn train_output_is_normalised() {
        let mut rng = Rng::seed_from(0);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], 5.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of y should have ~zero mean and ~unit variance.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let base = (s * 2 + ch) * 9;
                vals.extend_from_slice(&y.data()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng::seed_from(1);
        let mut bn = BatchNorm2d::new(1);
        // Warm up running statistics.
        for _ in 0..200 {
            let x = Tensor::randn(&[8, 1, 2, 2], 2.0, &mut rng).map(|v| v + 3.0);
            let _ = bn.forward(&x, Mode::Train);
        }
        let x = Tensor::full(&[1, 1, 2, 2], 3.0);
        let y = bn.forward(&x, Mode::Eval);
        // Input at the running mean -> output near beta (= 0).
        assert!(y.max_abs() < 0.2, "{:?}", y);
    }

    #[test]
    fn backward_gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[3, 2, 2, 2], 1.0, &mut rng);
        // Random projection so the loss is sensitive to normalisation.
        let proj = Tensor::randn(&[3 * 2 * 2 * 2], 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, Mode::Train);
            y.data().iter().zip(proj.data()).map(|(a, b)| a * b).sum()
        };
        let y = bn.forward(&x, Mode::Train);
        let gy = Tensor::from_vec(proj.data().to_vec(), y.shape().dims());
        let gx = bn.backward(&gy);
        let eps = 1e-2;
        for i in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 2e-2,
                "x[{i}]: {num} vs {}",
                gx.data()[i]
            );
        }
    }
}
