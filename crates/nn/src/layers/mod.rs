//! The layer zoo used by the seven architectures of Table III.

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod residual;
mod sequential;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
pub use sequential::Sequential;
