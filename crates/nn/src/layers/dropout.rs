//! Inverted dropout.

use crate::layer::{Layer, Mode};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; evaluation is
/// the identity.
///
/// DeconvNet (Table III) uses `p = 0.5` before its dense layers. The mask
/// and output buffers are reused across batches.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Vec<f32>,
    last_was_train: bool,
    scratch: ScratchHandle,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self {
            p,
            rng,
            mask: Vec::new(),
            last_was_train: false,
            scratch: Scratch::shared().clone(),
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn copy_out(&self, src: &Tensor) -> Tensor {
        let mut out = self.scratch.tensor_uninit(src.shape().dims());
        out.data_mut().copy_from_slice(src.data());
        out
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.last_was_train = false;
                self.copy_out(input)
            }
            Mode::Train => {
                self.last_was_train = true;
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                self.mask.clear();
                let rng = &mut self.rng;
                self.mask.extend((0..input.numel()).map(|_| {
                    if rng.chance(keep) {
                        scale
                    } else {
                        0.0
                    }
                }));
                let mut out = self.scratch.tensor_uninit(input.shape().dims());
                for ((o, &x), &m) in out.data_mut().iter_mut().zip(input.data()).zip(&self.mask) {
                    *o = x * m;
                }
                out
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if !self.last_was_train {
            return self.copy_out(grad_output);
        }
        assert_eq!(
            grad_output.numel(),
            self.mask.len(),
            "forward before backward"
        );
        let mut out = self.scratch.tensor_uninit(grad_output.shape().dims());
        for ((o, &g), &m) in out
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(&self.mask)
        {
            *o = g * m;
        }
        out
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, Rng::seed_from(0));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.5, Rng::seed_from(1));
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, Mode::Train);
        // E[y] = 1; with 10k samples the mean should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, Rng::seed_from(2));
        let x = Tensor::ones(&[1, 64]);
        let y = d.forward(&x, Mode::Train);
        let gx = d.backward(&Tensor::ones(&[1, 64]));
        // Grad must be zero exactly where the output was zero.
        for (o, g) in y.data().iter().zip(gx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, Rng::seed_from(3));
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]);
        assert_eq!(d.forward(&x, Mode::Train).data(), x.data());
    }
}
