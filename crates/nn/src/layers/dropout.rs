//! Inverted dropout.

use crate::layer::{Layer, Mode};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; evaluation is
/// the identity.
///
/// DeconvNet (Table III) uses `p = 0.5` before its dense layers.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Vec<f32>,
    last_was_train: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self {
            p,
            rng,
            mask: Vec::new(),
            last_was_train: false,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.last_was_train = false;
                input.clone()
            }
            Mode::Train => {
                self.last_was_train = true;
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                self.mask = (0..input.numel())
                    .map(|_| if self.rng.chance(keep) { scale } else { 0.0 })
                    .collect();
                let mut out = input.clone();
                for (o, &m) in out.data_mut().iter_mut().zip(&self.mask) {
                    *o *= m;
                }
                out
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if !self.last_was_train {
            return grad_output.clone();
        }
        assert_eq!(
            grad_output.numel(),
            self.mask.len(),
            "forward before backward"
        );
        let mut out = grad_output.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(&self.mask) {
            *g *= m;
        }
        out
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, Rng::seed_from(0));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.5, Rng::seed_from(1));
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, Mode::Train);
        // E[y] = 1; with 10k samples the mean should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, Rng::seed_from(2));
        let x = Tensor::ones(&[1, 64]);
        let y = d.forward(&x, Mode::Train);
        let gx = d.backward(&Tensor::ones(&[1, 64]));
        // Grad must be zero exactly where the output was zero.
        for (o, g) in y.data().iter().zip(gx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, Rng::seed_from(3));
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]);
        assert_eq!(d.forward(&x, Mode::Train).data(), x.data());
    }
}
