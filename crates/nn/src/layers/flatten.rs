//! Flattening between convolutional and dense stages.

use crate::layer::{Layer, Mode};
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// Flattens `[N, ...]` to `[N, prod(...)]`, remembering the original shape
/// for the backward pass. Both directions copy through the scratch arena,
/// so steady-state passes allocate nothing.
#[derive(Debug)]
pub struct Flatten {
    input_dims: Vec<usize>,
    scratch: ScratchHandle,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self {
            input_dims: Vec::new(),
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims.clear();
        self.input_dims.extend_from_slice(input.shape().dims());
        let n = self.input_dims[0];
        let mut out = self.scratch.tensor_uninit(&[n, input.numel() / n]);
        out.data_mut().copy_from_slice(input.data());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.input_dims.is_empty(), "forward before backward");
        let mut out = self.scratch.tensor_uninit(&self.input_dims);
        out.data_mut().copy_from_slice(grad_output.data());
        out
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(gx.data(), x.data());
    }
}
