//! Flattening between convolutional and dense stages.

use crate::layer::{Layer, Mode};
use tdfm_tensor::Tensor;

/// Flattens `[N, ...]` to `[N, prod(...)]`, remembering the original shape
/// for the backward pass.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims = input.shape().dims().to_vec();
        let n = self.input_dims[0];
        input.reshape(&[n, input.numel() / n])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.input_dims.is_empty(), "forward before backward");
        grad_output.reshape(&self.input_dims)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(gx.data(), x.data());
    }
}
