//! Residual blocks (the ResNet family's distinguishing mechanism).

use crate::layer::{Layer, Mode, Param};
use crate::layers::Sequential;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// A residual block: `y = relu(main(x) + skip(x))`.
///
/// `skip` is the identity when the main path preserves shape, or a
/// projection (typically a strided 1×1 convolution + batch norm) when it
/// does not. The paper attributes part of ensemble diversity to exactly
/// this structural difference between ResNet and the plain-stack families
/// (Section IV-B).
pub struct ResidualBlock {
    main: Sequential,
    skip: Option<Sequential>,
    sum_cache: Option<Tensor>,
    scratch: ScratchHandle,
}

impl ResidualBlock {
    /// Creates a block with an identity skip connection.
    pub fn identity(main: Sequential) -> Self {
        Self {
            main,
            skip: None,
            sum_cache: None,
            scratch: Scratch::shared().clone(),
        }
    }

    /// Creates a block with a projection skip path.
    pub fn projected(main: Sequential, skip: Sequential) -> Self {
        Self {
            main,
            skip: Some(skip),
            sum_cache: None,
            scratch: Scratch::shared().clone(),
        }
    }
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResidualBlock {{ main: {:?}, skip: {} }}",
            self.main,
            if self.skip.is_some() {
                "projection"
            } else {
                "identity"
            }
        )
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let skip_out = self.skip.as_mut().map(|proj| proj.forward(input, mode));
        let skip_data = skip_out.as_ref().unwrap_or(input);
        assert_eq!(
            main_out.shape(),
            skip_data.shape(),
            "residual paths must produce identical shapes"
        );
        let mut sum = self.scratch.tensor_uninit(main_out.shape().dims());
        for ((s, &a), &b) in sum
            .data_mut()
            .iter_mut()
            .zip(main_out.data())
            .zip(skip_data.data())
        {
            *s = a + b;
        }
        let mut out = self.scratch.tensor_uninit(sum.shape().dims());
        for (o, &s) in out.data_mut().iter_mut().zip(sum.data()) {
            // NaN-propagating ReLU, like the standalone layer.
            *o = if s.is_nan() { s } else { s.max(0.0) };
        }
        self.scratch.recycle(main_out);
        if let Some(t) = skip_out {
            self.scratch.recycle(t);
        }
        if let Some(old) = self.sum_cache.take() {
            self.scratch.recycle(old);
        }
        self.sum_cache = Some(sum);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let sum = self.sum_cache.as_ref().expect("forward before backward");
        // ReLU gradient on the summed pre-activation.
        let mut g = self.scratch.tensor_uninit(grad_output.shape().dims());
        for ((o, &gy), &s) in g
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(sum.data())
        {
            *o = if s > 0.0 { gy } else { 0.0 };
        }
        let g_main = self.main.backward(&g);
        let g_skip = match &mut self.skip {
            Some(proj) => {
                let gs = proj.backward(&g);
                self.scratch.recycle(g);
                gs
            }
            None => g,
        };
        let mut out = g_main;
        for (o, &b) in out.data_mut().iter_mut().zip(g_skip.data()) {
            *o += b;
        }
        self.scratch.recycle(g_skip);
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.main.params_mut();
        if let Some(proj) = &mut self.skip {
            params.extend(proj.params_mut());
        }
        params
    }

    fn state_mut(&mut self) -> Vec<&mut [f32]> {
        let mut state = self.main.state_mut();
        if let Some(proj) = &mut self.skip {
            state.extend(proj.state_mut());
        }
        state
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
        self.main.bind_scratch(scratch);
        if let Some(proj) = &mut self.skip {
            proj.bind_scratch(scratch);
        }
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense};
    use tdfm_tensor::ops::Conv2dSpec;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn identity_skip_adds_input() {
        let mut rng = Rng::seed_from(0);
        // Main path that outputs all zeros -> block is relu(x).
        let mut zero = Dense::new(3, 3, &mut rng);
        for p in zero.params_mut() {
            p.value.fill(0.0);
        }
        let mut block = ResidualBlock::identity(Sequential::new().push(zero));
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut rng = Rng::seed_from(1);
        let main = Sequential::new().push(Conv2d::new(2, 2, 3, Conv2dSpec::same(3), &mut rng));
        let mut block = ResidualBlock::identity(main);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let gx = block.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-2;
        for i in [0usize, 9, 22, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (block.forward(&xp, Mode::Train).sum()
                - block.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 3e-2, "x[{i}]");
        }
    }

    #[test]
    fn projection_skip_changes_shape() {
        let mut rng = Rng::seed_from(2);
        let main = Sequential::new().push(Conv2d::new(
            2,
            4,
            3,
            Conv2dSpec {
                stride: 2,
                pad: 1,
                groups: 1,
            },
            &mut rng,
        ));
        let skip = Sequential::new().push(Conv2d::new(
            2,
            4,
            1,
            Conv2dSpec {
                stride: 2,
                pad: 0,
                groups: 1,
            },
            &mut rng,
        ));
        let mut block = ResidualBlock::projected(main, skip);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[1, 4, 2, 2]);
        let gx = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(gx.shape().dims(), x.shape().dims());
    }
}
