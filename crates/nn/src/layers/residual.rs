//! Residual blocks (the ResNet family's distinguishing mechanism).

use crate::layer::{Layer, Mode, Param};
use crate::layers::Sequential;
use tdfm_tensor::Tensor;

/// A residual block: `y = relu(main(x) + skip(x))`.
///
/// `skip` is the identity when the main path preserves shape, or a
/// projection (typically a strided 1×1 convolution + batch norm) when it
/// does not. The paper attributes part of ensemble diversity to exactly
/// this structural difference between ResNet and the plain-stack families
/// (Section IV-B).
pub struct ResidualBlock {
    main: Sequential,
    skip: Option<Sequential>,
    sum_cache: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a block with an identity skip connection.
    pub fn identity(main: Sequential) -> Self {
        Self {
            main,
            skip: None,
            sum_cache: None,
        }
    }

    /// Creates a block with a projection skip path.
    pub fn projected(main: Sequential, skip: Sequential) -> Self {
        Self {
            main,
            skip: Some(skip),
            sum_cache: None,
        }
    }
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResidualBlock {{ main: {:?}, skip: {} }}",
            self.main,
            if self.skip.is_some() {
                "projection"
            } else {
                "identity"
            }
        )
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let skip_out = match &mut self.skip {
            Some(proj) => proj.forward(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            skip_out.shape(),
            "residual paths must produce identical shapes"
        );
        let sum = main_out.zip(&skip_out, |a, b| a + b);
        let out = sum.map(|v| v.max(0.0));
        self.sum_cache = Some(sum);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let sum = self.sum_cache.as_ref().expect("forward before backward");
        // ReLU gradient on the summed pre-activation.
        let g = grad_output.zip(sum, |g, s| if s > 0.0 { g } else { 0.0 });
        let g_main = self.main.backward(&g);
        let g_skip = match &mut self.skip {
            Some(proj) => proj.backward(&g),
            None => g,
        };
        g_main.zip(&g_skip, |a, b| a + b)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.main.params_mut();
        if let Some(proj) = &mut self.skip {
            params.extend(proj.params_mut());
        }
        params
    }

    fn state_mut(&mut self) -> Vec<&mut [f32]> {
        let mut state = self.main.state_mut();
        if let Some(proj) = &mut self.skip {
            state.extend(proj.state_mut());
        }
        state
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense};
    use tdfm_tensor::ops::Conv2dSpec;
    use tdfm_tensor::rng::Rng;

    #[test]
    fn identity_skip_adds_input() {
        let mut rng = Rng::seed_from(0);
        // Main path that outputs all zeros -> block is relu(x).
        let mut zero = Dense::new(3, 3, &mut rng);
        for p in zero.params_mut() {
            p.value.fill(0.0);
        }
        let mut block = ResidualBlock::identity(Sequential::new().push(zero));
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut rng = Rng::seed_from(1);
        let main = Sequential::new().push(Conv2d::new(2, 2, 3, Conv2dSpec::same(3), &mut rng));
        let mut block = ResidualBlock::identity(main);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let gx = block.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-2;
        for i in [0usize, 9, 22, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (block.forward(&xp, Mode::Train).sum()
                - block.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 3e-2, "x[{i}]");
        }
    }

    #[test]
    fn projection_skip_changes_shape() {
        let mut rng = Rng::seed_from(2);
        let main = Sequential::new().push(Conv2d::new(
            2,
            4,
            3,
            Conv2dSpec {
                stride: 2,
                pad: 1,
                groups: 1,
            },
            &mut rng,
        ));
        let skip = Sequential::new().push(Conv2d::new(
            2,
            4,
            1,
            Conv2dSpec {
                stride: 2,
                pad: 0,
                groups: 1,
            },
            &mut rng,
        ));
        let mut block = ResidualBlock::projected(main, skip);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[1, 4, 2, 2]);
        let gx = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(gx.shape().dims(), x.shape().dims());
    }
}
