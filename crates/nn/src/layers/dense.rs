//! Fully-connected layer.

use crate::layer::{Layer, Mode, Param};
use tdfm_tensor::ops::{matmul_a_bt_with, matmul_at_b_with, matmul_with};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// A fully-connected (dense) layer: `y = x · W + b`.
///
/// `x` is `[N, in]`, `W` is `[in, out]`, `b` is `[out]`.
///
/// Weights use He initialisation (`std = sqrt(2 / in)`), the convention for
/// the ReLU networks of the study.
///
/// The input activation is cached only under [`Mode::Train`]; evaluation
/// passes drop any previous cache so inference never retains (or trains
/// against) stale activations.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    input_cache: Option<Tensor>,
    scratch: ScratchHandle,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dims must be positive"
        );
        let std = (2.0 / in_features as f32).sqrt();
        Self {
            weight: Param::new(Tensor::randn(&[in_features, out_features], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            input_cache: None,
            scratch: Scratch::shared().clone(),
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// `true` when a Train-mode forward pass has left an activation cached.
    pub fn has_cached_input(&self) -> bool {
        self.input_cache.is_some()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense input must be [N, in]");
        let mut out = matmul_with(input, &self.weight.value, &self.scratch);
        let k = self.out_features();
        let b = self.bias.value.data();
        for row in out.data_mut().chunks_mut(k) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
        if let Some(old) = self.input_cache.take() {
            self.scratch.recycle(old);
        }
        if mode == Mode::Train {
            let mut cache = self.scratch.tensor_uninit(input.shape().dims());
            cache.data_mut().copy_from_slice(input.data());
            self.input_cache = Some(cache);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .as_ref()
            .expect("Train-mode forward before backward");
        let gw = matmul_at_b_with(input, grad_output, &self.scratch);
        self.weight.grad.axpy(1.0, &gw);
        self.scratch.recycle(gw);
        let k = self.out_features();
        let bg = self.bias.grad.data_mut();
        for row in grad_output.data().chunks(k) {
            for (g, &v) in bg.iter_mut().zip(row) {
                *g += v;
            }
        }
        matmul_a_bt_with(grad_output, &self.weight.value, &self.scratch)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::assert_close;

    fn loss_sum(layer: &mut Dense, x: &Tensor) -> f32 {
        layer.forward(x, Mode::Train).sum()
    }

    #[test]
    fn forward_matches_hand_computed() {
        let mut rng = Rng::seed_from(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        d.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let mut d = Dense::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y = d.forward(&x, Mode::Train);
        let gx = d.backward(&Tensor::ones(y.shape().dims()));

        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss_sum(&mut d, &xp) - loss_sum(&mut d, &xm)) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-2, "x[{i}]");
        }
        // Weight gradient: restore cache with original input first.
        let _ = d.forward(&x, Mode::Train);
        for p in d.params_mut() {
            p.zero_grad();
        }
        let _ = d.backward(&Tensor::ones(&[2, 4]));
        for i in [0usize, 5, 11] {
            let orig = d.weight.value.data()[i];
            d.weight.value.data_mut()[i] = orig + eps;
            let fp = loss_sum(&mut d, &x);
            d.weight.value.data_mut()[i] = orig - eps;
            let fm = loss_sum(&mut d, &x);
            d.weight.value.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - d.weight.grad.data()[i]).abs() < 1e-2, "w[{i}]");
        }
    }

    #[test]
    fn bias_grad_counts_rows() {
        let mut rng = Rng::seed_from(2);
        let mut d = Dense::new(2, 3, &mut rng);
        let x = Tensor::randn(&[5, 2], 1.0, &mut rng);
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[5, 3]));
        assert_close(d.bias.grad.data(), &[5.0, 5.0, 5.0], 1e-5);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let mut rng = Rng::seed_from(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        let first = d.bias.grad.clone();
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        assert_close(d.bias.grad.data(), first.map(|v| v * 2.0).data(), 1e-6);
    }

    #[test]
    fn eval_forward_leaves_no_cached_input() {
        // Regression test: forward used to cache the input unconditionally,
        // so inference both retained activation memory and let a later
        // backward silently train against an evaluation batch.
        let mut rng = Rng::seed_from(4);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let _ = d.forward(&x, Mode::Eval);
        assert!(!d.has_cached_input(), "Eval must not cache activations");
        // An Eval pass after training clears the stale Train cache too.
        let _ = d.forward(&x, Mode::Train);
        assert!(d.has_cached_input());
        let _ = d.forward(&x, Mode::Eval);
        assert!(!d.has_cached_input(), "Eval must drop a stale Train cache");
    }

    #[test]
    #[should_panic(expected = "Train-mode forward before backward")]
    fn backward_after_eval_forward_panics() {
        let mut rng = Rng::seed_from(5);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let _ = d.forward(&x, Mode::Eval);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn nan_input_poisons_forward_and_backward() {
        // IEEE faithfulness end to end: a NaN activation must reach every
        // output the layer computes, through forward and both gradient
        // products, even against zero weights.
        let mut rng = Rng::seed_from(6);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.value.fill(0.0);
        let x = Tensor::from_vec(vec![f32::NAN, 1.0], &[1, 2]);
        let y = d.forward(&x, Mode::Train);
        assert!(y.data().iter().all(|v| v.is_nan()), "forward: {:?}", y);
        let gx = d.backward(&Tensor::ones(&[1, 2]));
        // Weight grad = xᵀ·gy has NaN in the row fed by the NaN input.
        assert!(d.weight.grad.data()[0].is_nan());
        assert!(d.weight.grad.data()[1].is_nan());
        // Input grad = gy·Wᵀ is finite (weights are finite zeros).
        assert!(gx.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn infinite_input_propagates_through_forward() {
        let mut rng = Rng::seed_from(7);
        let mut d = Dense::new(2, 1, &mut rng);
        d.weight.value = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]);
        d.bias.value.fill(0.0);
        // 0·∞ = NaN must not be skipped away by a sparsity shortcut.
        let x = Tensor::from_vec(vec![f32::INFINITY, 2.0], &[1, 2]);
        let y = d.forward(&x, Mode::Train);
        assert!(y.data()[0].is_nan(), "0*inf must produce NaN, got {:?}", y);
    }
}
