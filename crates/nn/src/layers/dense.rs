//! Fully-connected layer.

use crate::layer::{Layer, Mode, Param};
use tdfm_tensor::ops::{matmul, matmul_a_bt, matmul_at_b, sum_rows};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// A fully-connected (dense) layer: `y = x · W + b`.
///
/// `x` is `[N, in]`, `W` is `[in, out]`, `b` is `[out]`.
///
/// Weights use He initialisation (`std = sqrt(2 / in)`), the convention for
/// the ReLU networks of the study.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    input_cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dims must be positive"
        );
        let std = (2.0 / in_features as f32).sqrt();
        Self {
            weight: Param::new(Tensor::randn(&[in_features, out_features], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            input_cache: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense input must be [N, in]");
        let mut out = matmul(input, &self.weight.value);
        let k = self.out_features();
        let b = self.bias.value.data();
        for row in out.data_mut().chunks_mut(k) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
        self.input_cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input_cache.as_ref().expect("forward before backward");
        self.weight.grad.axpy(1.0, &matmul_at_b(input, grad_output));
        self.bias.grad.axpy(1.0, &sum_rows(grad_output));
        matmul_a_bt(grad_output, &self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_tensor::assert_close;

    fn loss_sum(layer: &mut Dense, x: &Tensor) -> f32 {
        layer.forward(x, Mode::Train).sum()
    }

    #[test]
    fn forward_matches_hand_computed() {
        let mut rng = Rng::seed_from(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        d.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let mut d = Dense::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y = d.forward(&x, Mode::Train);
        let gx = d.backward(&Tensor::ones(y.shape().dims()));

        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss_sum(&mut d, &xp) - loss_sum(&mut d, &xm)) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-2, "x[{i}]");
        }
        // Weight gradient: restore cache with original input first.
        let _ = d.forward(&x, Mode::Train);
        for p in d.params_mut() {
            p.zero_grad();
        }
        let _ = d.backward(&Tensor::ones(&[2, 4]));
        for i in [0usize, 5, 11] {
            let orig = d.weight.value.data()[i];
            d.weight.value.data_mut()[i] = orig + eps;
            let fp = loss_sum(&mut d, &x);
            d.weight.value.data_mut()[i] = orig - eps;
            let fm = loss_sum(&mut d, &x);
            d.weight.value.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - d.weight.grad.data()[i]).abs() < 1e-2, "w[{i}]");
        }
    }

    #[test]
    fn bias_grad_counts_rows() {
        let mut rng = Rng::seed_from(2);
        let mut d = Dense::new(2, 3, &mut rng);
        let x = Tensor::randn(&[5, 2], 1.0, &mut rng);
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[5, 3]));
        assert_close(d.bias.grad.data(), &[5.0, 5.0, 5.0], 1e-5);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let mut rng = Rng::seed_from(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        let first = d.bias.grad.clone();
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        assert_close(d.bias.grad.data(), first.map(|v| v * 2.0).data(), 1e-6);
    }
}
