//! Ordered composition of layers.

use crate::layer::{Layer, Mode, Param};
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// A straight-line stack of layers applied in order.
///
/// Most of the seven architectures are a single `Sequential`; the ResNet
/// analogues nest [`crate::layers::ResidualBlock`]s inside one.
///
/// Intermediate activations and gradients are recycled into the scratch
/// arena as soon as the next layer has consumed them — layers cache copies,
/// never references, so the buffers are dead the moment the next call
/// returns. This keeps whole-network passes allocation-free once warm.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    scratch: ScratchHandle,
}

impl Default for Sequential {
    fn default() -> Self {
        Self {
            layers: Vec::new(),
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of directly contained layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the stack contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the contained layers, in order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Number of parameter tensors owned by each directly contained layer,
    /// in order. Summing gives `params_mut().len()`; the model-fault
    /// injector uses this to map per-layer selectors onto the flat
    /// parameter list.
    pub fn layer_param_counts(&mut self) -> Vec<usize> {
        self.layers
            .iter_mut()
            .map(|l| l.params_mut().len())
            .collect()
    }

    /// [`Layer::forward`] with a hook invoked after each directly
    /// contained layer produces its output.
    ///
    /// The hook receives the layer's position, its name, and mutable
    /// access to the activation tensor — the seam activation-fault
    /// injection uses. The hook fires at *top-level* resolution: layers
    /// nested inside a residual block are not hooked individually, the
    /// block's output is.
    ///
    /// Mutating an activation changes what every subsequent layer sees
    /// (and, in training mode, what it caches for backward); the layer
    /// that produced the tensor has already cached its own pre-hook
    /// values, so this models a transient upset on the wire between
    /// layers, not a persistent memory corruption.
    pub fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FnMut(usize, &'static str, &mut Tensor),
    ) -> Tensor {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return input.clone();
        };
        let mut x = first.forward(input, mode);
        hook(0, first.name(), &mut x);
        for (i, layer) in rest.iter_mut().enumerate() {
            let mut y = layer.forward(&x, mode);
            hook(i + 1, layer.name(), &mut y);
            self.scratch.recycle(std::mem::replace(&mut x, y));
        }
        x
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({:?})", self.layer_names())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return input.clone();
        };
        let mut x = first.forward(input, mode);
        for layer in rest {
            let y = layer.forward(&x, mode);
            self.scratch.recycle(std::mem::replace(&mut x, y));
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut rev = self.layers.iter_mut().rev();
        let Some(last) = rev.next() else {
            return grad_output.clone();
        };
        let mut g = last.backward(grad_output);
        for layer in rev {
            let g2 = layer.backward(&g);
            self.scratch.recycle(std::mem::replace(&mut g, g2));
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn state_mut(&mut self) -> Vec<&mut [f32]> {
        self.layers.iter_mut().flat_map(|l| l.state_mut()).collect()
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
        for layer in &mut self.layers {
            layer.bind_scratch(scratch);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, ReLU};
    use tdfm_tensor::rng::Rng;

    #[test]
    fn forward_composes_in_order() {
        let mut rng = Rng::seed_from(0);
        // Compose an identity map with a doubling map.
        let mut seq = Sequential::new();
        let mut id = Dense::new(2, 2, &mut rng);
        id.params_mut()[0].value = Tensor::eye(2);
        id.params_mut()[1].value.fill(0.0);
        let mut dbl = Dense::new(2, 2, &mut rng);
        dbl.params_mut()[0].value = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
        dbl.params_mut()[1].value.fill(0.0);
        seq.add(Box::new(id));
        seq.add(Box::new(dbl));
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        let y = seq.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[2.0, -2.0]);
    }

    #[test]
    fn backward_composes_in_reverse() {
        let mut rng = Rng::seed_from(1);
        let seq = Sequential::new()
            .push(Dense::new(3, 4, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(4, 2, &mut rng));
        let mut seq = seq;
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y = seq.forward(&x, Mode::Train);
        let gx = seq.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(gx.shape().dims(), x.shape().dims());
        // Finite-difference check through the whole stack.
        let eps = 1e-2;
        for i in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (seq.forward(&xp, Mode::Train).sum() - seq.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 2e-2, "x[{i}]");
        }
    }

    #[test]
    fn params_collects_all_layers() {
        let mut rng = Rng::seed_from(2);
        let mut seq = Sequential::new()
            .push(Dense::new(2, 3, &mut rng))
            .push(Dense::new(3, 2, &mut rng));
        assert_eq!(seq.params_mut().len(), 4);
        assert_eq!(seq.param_count(), 2 * 3 + 3 + 3 * 2 + 2);
    }

    #[test]
    fn bind_scratch_reaches_nested_layers() {
        use std::sync::Arc;
        let mut rng = Rng::seed_from(3);
        let mut seq = Sequential::new()
            .push(Dense::new(2, 2, &mut rng))
            .push(ReLU::new());
        let arena: ScratchHandle = Arc::new(Scratch::new());
        seq.bind_scratch(&arena);
        let x = Tensor::ones(&[1, 2]);
        let _ = seq.forward(&x, Mode::Train);
        let _ = seq.backward(&Tensor::ones(&[1, 2]));
        // Every activation and gradient buffer came from the bound arena.
        assert!(arena.stats().misses > 0, "arena was never used");
    }
}
