//! Activation functions.

use crate::layer::{Layer, Mode};
use tdfm_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// The only activation the seven architectures of the study use between
/// layers (softmax lives inside the losses).
#[derive(Debug, Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.numel(),
            self.mask.len(),
            "backward called with mismatched shape (or before forward)"
        );
        let mut out = grad_output.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]);
        let _ = r.forward(&x, Mode::Train);
        let gx = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[1, 2]));
        assert_eq!(gx.data(), &[0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched shape")]
    fn backward_before_forward_panics() {
        let mut r = ReLU::new();
        let _ = r.backward(&Tensor::ones(&[1, 2]));
    }
}
