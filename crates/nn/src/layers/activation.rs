//! Activation functions.

use crate::layer::{Layer, Mode};
use tdfm_tensor::{simd, Scratch, ScratchHandle, Tensor};

/// Rectified linear unit: `y = max(0, x)`.
///
/// The only activation the seven architectures of the study use between
/// layers (softmax lives inside the losses). Forward and backward run
/// through the vector kernels in `tdfm_tensor::simd`: NaN activations pass
/// through unlaundered (IEEE faithfulness) and the sign mask is stored as
/// all-ones/all-zeros words so the backward pass is one bitwise AND. The
/// mask and the output buffer are reused across batches, so steady-state
/// forward/backward passes allocate nothing.
#[derive(Debug)]
pub struct ReLU {
    mask: Vec<u32>,
    scratch: ScratchHandle,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self {
            mask: Vec::new(),
            scratch: Scratch::shared().clone(),
        }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.mask.clear();
        self.mask.resize(input.numel(), 0);
        let mut out = self.scratch.tensor_uninit(input.shape().dims());
        // The kernel keeps NaN activations intact (`f32::max` would
        // launder them into 0.0; a poisoned activation must keep poisoning
        // the forward pass) and records the x > 0.0 mask in one sweep.
        simd::relu_forward(input.data(), out.data_mut(), &mut self.mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.numel(),
            self.mask.len(),
            "backward called with mismatched shape (or before forward)"
        );
        let mut out = self.scratch.tensor_uninit(grad_output.shape().dims());
        simd::relu_backward(grad_output.data(), &self.mask, out.data_mut());
        out
    }

    fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.scratch = scratch.clone();
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]);
        let _ = r.forward(&x, Mode::Train);
        let gx = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[1, 2]));
        assert_eq!(gx.data(), &[0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched shape")]
    fn backward_before_forward_panics() {
        let mut r = ReLU::new();
        let _ = r.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn nan_activations_stay_nan() {
        // `f32::max(NaN, 0.0)` returns 0.0 — the layer must not use it to
        // launder a poisoned activation into a clean zero.
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![f32::NAN, -1.0, 2.0], &[1, 3]);
        let y = r.forward(&x, Mode::Train);
        assert!(y.data()[0].is_nan());
        assert_eq!(&y.data()[1..], &[0.0, 2.0]);
    }
}
