//! Optimisers: SGD with momentum and Adam.

use crate::layer::Param;
use tdfm_tensor::Tensor;

/// A gradient-descent update rule.
///
/// Optimisers keep per-parameter state indexed by position, so the same
/// parameter list (in the same order) must be passed to every `step` —
/// which [`crate::trainer::fit`] guarantees.
pub trait Optimizer: Send {
    /// Applies one update using each parameter's accumulated gradient,
    /// then zeroes the gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Adjusts the learning rate (used for per-epoch decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Clears accumulated per-parameter state (momentum buffers, step
    /// counters). [`crate::trainer::fit_with`] calls this on entry so a
    /// reused optimiser starts every training run from a clean slate —
    /// velocity accumulated against one network's parameters is meaningless
    /// for the next.
    fn reset(&mut self);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// `v = momentum * v + g + weight_decay * w; w -= lr * v` — the classic
/// recipe the paper's TensorFlow configurations used.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum < 0` or `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().dims()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter list changed between steps"
        );
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            tdfm_tensor::simd::momentum_update(
                v.data_mut(),
                p.grad.data(),
                p.value.data(),
                self.momentum,
                self.weight_decay,
            );
            p.value.axpy(-self.lr, v);
            p.zero_grad();
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with the standard `beta = (0.9, 0.999)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().dims()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter list changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            for (((wi, &gi), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.data_mut().iter_mut())
                .zip(v.data_mut().iter_mut())
            {
                let g = gi + self.weight_decay * *wi;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, w: &mut Param) {
        // Loss = 0.5 * w^2 -> grad = w.
        w.grad = w.value.clone();
        opt.step(&mut [w]);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut w = Param::new(Tensor::full(&[4], 10.0));
        for _ in 0..200 {
            quadratic_step(&mut opt, &mut w);
        }
        assert!(w.value.max_abs() < 1e-3, "{:?}", w.value);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            let mut w = Param::new(Tensor::full(&[1], 10.0));
            for _ in 0..50 {
                quadratic_step(&mut opt, &mut w);
            }
            w.value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        let mut w = Param::new(Tensor::full(&[1], 1.0));
        // Zero gradient; decay alone should shrink the weight.
        opt.step(&mut [&mut w]);
        assert!(w.value.data()[0] < 1.0);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let mut w = Param::new(Tensor::full(&[4], 10.0));
        for _ in 0..300 {
            quadratic_step(&mut opt, &mut w);
        }
        assert!(w.value.max_abs() < 1e-2, "{:?}", w.value);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut w = Param::new(Tensor::full(&[2], 1.0));
        w.grad.fill(3.0);
        opt.step(&mut [&mut w]);
        assert_eq!(w.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_learning_rate(0.05);
        assert_eq!(opt.learning_rate(), 0.05);
    }

    #[test]
    #[should_panic(expected = "parameter list changed")]
    fn changing_param_list_is_detected() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut a = Param::new(Tensor::zeros(&[1]));
        let mut b = Param::new(Tensor::zeros(&[1]));
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }
}
