//! A trained (or trainable) classifier: layers plus classifier metadata.

use crate::layer::{Layer, Mode, Param};
use crate::layers::Sequential;
use tdfm_tensor::ops::argmax_rows;
use tdfm_tensor::{Scratch, ScratchHandle, Tensor};

/// Hook invoked after each top-level layer produces its forward output.
///
/// Receives the layer's position in the body, its name, and mutable access
/// to the activation tensor. Installed via
/// [`Network::set_activation_hook`]; `tdfm-inject`'s model-fault subsystem
/// uses it to flip activation bits mid-forward (SEU simulation) without
/// the network crate knowing anything about fault plans.
pub type ActivationHook = Box<dyn FnMut(usize, &'static str, &mut Tensor) + Send>;

/// A classification network: a layer stack producing `[N, classes]` logits.
///
/// `Network` adds to [`Sequential`] the conveniences the study needs —
/// batched evaluation-mode inference ([`Network::logits`],
/// [`Network::predict`]) and gradient bookkeeping.
pub struct Network {
    name: String,
    classes: usize,
    body: Sequential,
    activation_hook: Option<ActivationHook>,
}

impl Network {
    /// Wraps a layer stack.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(name: impl Into<String>, classes: usize, body: Sequential) -> Self {
        assert!(classes > 0, "a classifier needs at least one class");
        Self {
            name: name.into(),
            classes,
            body,
            activation_hook: None,
        }
    }

    /// Human-readable architecture name (e.g. `"ResNet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Training-mode forward pass (caches activations for `backward`).
    ///
    /// When an activation hook is installed it fires after every top-level
    /// layer, in training and evaluation mode alike.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self.activation_hook.as_mut() {
            Some(hook) => self.body.forward_hooked(input, mode, hook),
            None => self.body.forward(input, mode),
        }
    }

    /// Installs an activation-fault hook (replacing any previous one).
    ///
    /// The hook stays active for every subsequent [`Network::forward`],
    /// [`Network::logits`], [`Network::predict`] and [`Network::accuracy`]
    /// call until [`Network::clear_activation_hook`].
    pub fn set_activation_hook(&mut self, hook: ActivationHook) {
        self.activation_hook = Some(hook);
    }

    /// Removes the activation hook, restoring fault-free forwards.
    pub fn clear_activation_hook(&mut self) {
        self.activation_hook = None;
    }

    /// `true` while an activation hook is installed.
    pub fn has_activation_hook(&self) -> bool {
        self.activation_hook.is_some()
    }

    /// Names of the body's top-level layers, in order — the resolution at
    /// which the activation hook fires.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.body.layer_names()
    }

    /// Parameter-tensor count per top-level body layer (see
    /// [`Sequential::layer_param_counts`]).
    pub fn layer_param_counts(&mut self) -> Vec<usize> {
        self.body.layer_param_counts()
    }

    /// Backpropagates a logits gradient, accumulating parameter gradients.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        self.body.backward(grad_logits)
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.body.params_mut()
    }

    /// All non-trainable state buffers (batch-norm running statistics),
    /// in deterministic construction order — see
    /// [`crate::serialize::SavedModel`].
    pub fn state_mut(&mut self) -> Vec<&mut [f32]> {
        self.body.state_mut()
    }

    /// Rebinds every layer onto `scratch` for activation/gradient buffers.
    ///
    /// Layers default to the process-wide shared arena; use this to give a
    /// training run (e.g. one ensemble member) a private arena.
    pub fn bind_scratch(&mut self, scratch: &ScratchHandle) {
        self.body.bind_scratch(scratch);
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.body.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.body.param_count()
    }

    /// Evaluation-mode logits over a whole set, processed in mini-batches
    /// of `batch` to bound activation memory.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn logits(&mut self, inputs: &Tensor, batch: usize) -> Tensor {
        assert!(batch > 0, "batch size must be positive");
        let n = inputs.shape().dim(0);
        let scratch = Scratch::shared();
        let mut out = Tensor::zeros(&[n, self.classes]);
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let chunk = inputs.slice_rows(start, end);
            let logits = match self.activation_hook.as_mut() {
                Some(hook) => self.body.forward_hooked(&chunk, Mode::Eval, hook),
                None => self.body.forward(&chunk, Mode::Eval),
            };
            assert_eq!(
                logits.shape().dims(),
                &[end - start, self.classes],
                "network produced wrong logits shape"
            );
            out.data_mut()[start * self.classes..end * self.classes].copy_from_slice(logits.data());
            scratch.recycle(chunk);
            scratch.recycle(logits);
            start = end;
        }
        out
    }

    /// Predicted class per input (argmax of evaluation-mode logits).
    pub fn predict(&mut self, inputs: &Tensor, batch: usize) -> Vec<u32> {
        argmax_rows(&self.logits(inputs, batch))
    }

    /// Fraction of `labels` the network predicts correctly.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the input batch dimension.
    pub fn accuracy(&mut self, inputs: &Tensor, labels: &[u32], batch: usize) -> f32 {
        assert_eq!(inputs.shape().dim(0), labels.len(), "label count mismatch");
        let preds = self.predict(inputs, batch);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f32 / labels.len() as f32
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network {{ name: {}, classes: {}, body: {:?} }}",
            self.name, self.classes, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten};
    use tdfm_tensor::rng::Rng;

    fn tiny_net(rng: &mut Rng) -> Network {
        let body = Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(4, 3, rng));
        Network::new("tiny", 3, body)
    }

    #[test]
    fn logits_batching_matches_single_pass() {
        let mut rng = Rng::seed_from(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[7, 1, 2, 2], 1.0, &mut rng);
        let full = net.logits(&x, 7);
        let chunked = net.logits(&x, 3);
        tdfm_tensor::assert_close(full.data(), chunked.data(), 1e-5);
    }

    #[test]
    fn accuracy_of_perfect_predictor_is_one() {
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[5, 1, 2, 2], 1.0, &mut rng);
        let preds = net.predict(&x, 2);
        assert!((net.accuracy(&x, &preds, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = Network::new("bad", 0, Sequential::new());
    }

    #[test]
    fn activation_hook_fires_per_layer_and_can_mutate() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let mut rng = Rng::seed_from(4);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[3, 1, 2, 2], 1.0, &mut rng);
        let clean = net.logits(&x, 3);
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        net.set_activation_hook(Box::new(move |_idx, _name, t: &mut Tensor| {
            seen.fetch_add(1, Ordering::Relaxed);
            // Zero everything: downstream layers must see the mutation.
            t.fill(0.0);
        }));
        assert!(net.has_activation_hook());
        let hooked = net.logits(&x, 3);
        // Two top-level layers (Flatten, Dense), one batch.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert!(hooked.data().iter().all(|&v| v == 0.0));
        net.clear_activation_hook();
        assert_eq!(net.logits(&x, 3).data(), clean.data());
    }

    #[test]
    fn layer_param_counts_partition_flat_params() {
        let mut rng = Rng::seed_from(5);
        let mut net = tiny_net(&mut rng);
        let counts = net.layer_param_counts();
        assert_eq!(counts, vec![0, 2], "Flatten has none, Dense has W and b");
        assert_eq!(counts.iter().sum::<usize>(), net.params_mut().len());
        assert_eq!(net.layer_names(), vec!["Flatten", "Dense"]);
    }
}
