//! Proof that the dense/conv training hot path allocates nothing per batch.
//!
//! A counting global allocator wraps the system allocator; the test warms the
//! scratch arena with a few forward/backward passes, switches the counter on,
//! and asserts that further passes through a conv → relu → max-pool →
//! flatten → dense stack perform zero heap allocations.
//!
//! The test pins the thread count to 1 so the parallel helpers take their
//! inline (allocation-free) serial path, and it uses a private scratch arena
//! so concurrently-running tests cannot donate or steal buffers.
//!
//! The gate flag and counter live in `tdfm_obs::memory` (shared with run
//! manifests); only the unavoidable unsafe shim around the `System`
//! allocator lives here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;

use tdfm_nn::layer::{Layer, Mode};
use tdfm_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, ReLU, Sequential};
use tdfm_obs::memory;
use tdfm_tensor::ops::Conv2dSpec;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::{parallel, Scratch, Tensor};

/// Counts allocations (and growing reallocations) while the
/// `tdfm_obs::memory` gate is open. Deallocations are deliberately not
/// counted: returning warm buffers is fine, taking new ones is the bug
/// this test exists to catch.
struct CountingAlloc;

// SAFETY: every method forwards verbatim to the `System` allocator and only
// adds side-effect-free atomic bookkeeping, so `GlobalAlloc`'s contract
// (layout fidelity, no unwinding, no allocator reentrancy) is exactly
// `System`'s, which upholds it.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller obligations are passed through unchanged to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        memory::note_alloc();
        // SAFETY: `layout` is the caller's, forwarded untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller obligations are passed through unchanged to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `alloc`/`realloc` above, which
        // always return `System` pointers with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller obligations are passed through unchanged to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        memory::note_alloc();
        // SAFETY: `ptr`/`layout` come from this allocator's own alloc path
        // (which is `System`'s), and `new_size` is the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_conv_dense_passes_do_not_allocate() {
    parallel::set_num_threads(1);

    let mut rng = Rng::seed_from(0x5EED);
    let arena = Arc::new(Scratch::new());
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 2, 3, Conv2dSpec::same(3), &mut rng))
        .push(ReLU::new())
        .push(MaxPool2d::new(2, 2))
        .push(Flatten::new())
        .push(Dense::new(8, 2, &mut rng));
    net.bind_scratch(&arena);

    let x = Tensor::randn(&[4, 1, 4, 4], 1.0, &mut rng);
    let grad = Tensor::ones(&[4, 2]);

    // Warm up: the first passes fill the scratch arena and size the
    // per-layer mask/dims buffers.
    for _ in 0..3 {
        let y = net.forward(&x, Mode::Train);
        let gx = net.backward(&grad);
        arena.recycle(y);
        arena.recycle(gx);
    }

    memory::reset_allocations();
    memory::set_counting(true);
    for _ in 0..2 {
        let y = net.forward(&x, Mode::Train);
        let gx = net.backward(&grad);
        arena.recycle(y);
        arena.recycle(gx);
    }
    memory::set_counting(false);

    let allocs = memory::allocations();
    assert_eq!(
        allocs, 0,
        "steady-state forward/backward passes performed {allocs} heap allocations"
    );
    assert!(arena.stats().hits > 0, "arena was never used");
}
