//! Lossless-parsing guarantee, mirroring `lexer_roundtrip.rs` one layer
//! up: [`tdfm_lint::parser::parse_file`] must produce a tree whose spans
//! are well-nested (ordered, non-overlapping, contained in their parent)
//! and whose gap-walk reconstruction ([`tdfm_lint::parser::reconstruct`])
//! reproduces the input byte for byte.
//!
//! Three layers of evidence:
//!  1. every `.rs` file in this workspace round-trips (the property the
//!     call graph and dataflow rules stand on),
//!  2. hand-written nasty cases (struct literals vs blocks, closures vs
//!     bit-or, match or-patterns, nested items, macro soup),
//!  3. a deterministic xorshift fragment sweep assembling random
//!     "programs" from Rust-shaped fragments — the parser must never
//!     panic and never mis-span, even on garbage.

use std::path::{Path, PathBuf};

use tdfm_lint::lexer::lex;
use tdfm_lint::parser::{check_spans, parse_file, reconstruct};

fn roundtrip(src: &str, origin: &str) {
    let toks = lex(src);
    let file = parse_file(&toks);
    if let Err(e) = check_spans(&toks, &file) {
        panic!("span invariant violated for {origin}: {e}");
    }
    let rebuilt = reconstruct(&toks, &file);
    assert_eq!(
        rebuilt, src,
        "parse -> reconstruct must be byte-identical for {origin}"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The acceptance-criterion sweep: byte-identical reconstruction for every
/// `.rs` file in the workspace, fixtures included.
#[test]
fn every_workspace_rs_file_roundtrips() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    assert!(
        files.len() > 50,
        "workspace sweep found only {} files — wrong root?",
        files.len()
    );
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        roundtrip(&src, &path.display().to_string());
    }
}

#[test]
fn nasty_handwritten_cases_roundtrip() {
    let cases: &[&str] = &[
        "",
        "fn f() {}",
        // Struct literal vs block ambiguity in both positions.
        "fn f() -> S { S { a: 1, b: g() } }",
        "fn f() { if x { y() } }",
        "fn f() { match m { S { a } => a, _ => 0 } }",
        // Closures vs bit-or, with and without `move`.
        "fn f() { let c = |x| x | MASK; go(move |a, b| a | b); }",
        "fn f() { let or = x | y | z; }",
        // Nested items at every level.
        "mod a { mod b { impl T { fn deep() { fn deeper() {} } } } }",
        "fn outer() { use std::mem; struct Local; fn inner() {} const K: u8 = 0; }",
        // Macro soup: statement, expression, item position.
        "json_struct!(Foo { a, b });\nfn f() { assert_eq!(vec![1, 2], x); matches!(k, A | B); }",
        "macro_rules! m { ($($t:tt)*) => { $($t)* }; }",
        // Generics with shifts, const generics, lifetimes, where clauses.
        "fn shr<const N: usize>(x: [u8; N]) -> u32 { (1 << 3) >> 2 }",
        "fn wc<T>(t: T) -> T where T: Clone + Send + 'static { t }",
        "impl<'a, T: Iterator<Item = &'a u8>> Ext for T {}",
        // Trait with bodiless + default methods.
        "trait T { fn a(&self); fn b(&self) -> u8 { 0 } }",
        // Expression grab-bag: ranges, casts, try, await-shaped fields,
        // references, chained calls with turbofish.
        "fn f() { a..b; c..=d; x as f32 as u8; r?; s.0.1; &mut *p; }",
        "fn f() { it.collect::<Vec<_>>().len(); Vec::<f32>::new(); }",
        "fn f() { if let Some(v) = o { v } else { d } }",
        "fn f() { while let Some(x) = it.next() { use_(x); } }",
        "fn f() { 'outer: loop { break 'outer; } }",
        // Attribute and visibility soup.
        "#[derive(Debug, Clone)]\n#[cfg(test)]\npub(crate) struct S;",
        "#![allow(dead_code)]\n#[inline]\nfn hot() {}",
        // Unsafe expressions and fns.
        "unsafe fn danger() {}\nfn f() { unsafe { ptr.read() } }",
        // extern blocks and out-of-line mods.
        "extern \"C\" { fn c_fn(); }\nmod outline;",
        // Unbalanced / truncated input must degrade, not panic.
        "fn f() {",
        "fn f(",
        "}",
        "fn f() { let x = ; }",
        "impl {",
        "match {",
    ];
    for src in cases {
        roundtrip(src, "handwritten case");
    }
}

/// Deterministic xorshift64* — same seed every run, so a failure here is
/// reproducible by construction (no external proptest dependency).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_fragment_programs_roundtrip() {
    // Rust-shaped fragments chosen to abut into the parser's ambiguous
    // territory: `|` after idents and after `(`, `{` after paths, `move`
    // far from any closure, stray closers, match arms with guards.
    let fragments: &[&str] = &[
        " ",
        "\n",
        "fn f() {}",
        "fn ",
        "ident",
        "x.y",
        ".call()",
        "(1, 2)",
        "[0; 4]",
        "{ s(); }",
        "S { a: 1 }",
        "|x| x",
        "||",
        "|",
        "move ",
        "if c { a() }",
        "else { b() }",
        "match m { A | B => 0, _ => 1 }",
        "for i in 0..n { g(i); }",
        "while p() { h(); }",
        "loop { break; }",
        "let v = ",
        "let mut w: Vec<u8> = ",
        ";",
        ",",
        "=>",
        "::<f32>",
        "vec![1]",
        "assert!(k)",
        "use a::b;",
        "struct Q;",
        "impl Q { fn m(&self) {} }",
        "trait R { fn n(&self); }",
        "mod z {}",
        "#[inline]",
        "#![allow(x)]",
        "unsafe { u() }",
        "as f32",
        "?",
        "&mut ",
        "'a",
        "\"str\"",
        "0x1F",
        "1.5e-3",
        "{",
        "}",
        "(",
        ")",
    ];
    let mut rng = XorShift(0x5EED_5EED_0000_0002);
    for _ in 0..1500 {
        let len = 1 + rng.below(24);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(fragments[rng.below(fragments.len())]);
        }
        roundtrip(&src, "fragment sweep");
    }
}
