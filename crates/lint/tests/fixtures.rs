//! Self-test on the `lint-fixtures/` corpus: every rule is pinned to the
//! exact (rule, line, column) diagnostics it produces on a deliberately
//! bad snippet. A rule that drifts (new false positive, lost detection,
//! moved anchor token) fails here before it ever reaches a `tdfm lint`
//! run on the real tree.
//!
//! The fixtures are excluded from real runs by the repo `lint.toml`; this
//! test re-includes them with an explicit in-memory config.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tdfm_lint::rules::all_rules;
use tdfm_lint::{lint_files, lint_source, Config, Scope};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../lint-fixtures")
}

/// A config that points every rule at the fixture corpus (overriding the
/// repo-tree default scopes, which deliberately do not cover it).
fn fixture_config() -> Config {
    let everywhere = Scope {
        include: vec!["lint-fixtures/".to_string()],
        exclude: vec![],
    };
    let rules: BTreeMap<String, Scope> = all_rules()
        .iter()
        .map(|r| (r.id().to_string(), everywhere.clone()))
        .collect();
    Config {
        files_exclude: vec![],
        rules,
    }
}

fn check(name: &str, expected: &[(&str, u32, u32)]) {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let rel = format!("lint-fixtures/{name}");
    let mut got: Vec<(String, u32, u32)> = lint_source(&rel, &src, &fixture_config())
        .into_iter()
        .map(|d| {
            assert_eq!(d.file, rel);
            assert!(!d.message.is_empty(), "{}: empty message", d.rule);
            assert!(!d.suggestion.is_empty(), "{}: empty suggestion", d.rule);
            (d.rule.to_string(), d.line, d.col)
        })
        .collect();
    got.sort();
    let mut want: Vec<(String, u32, u32)> = expected
        .iter()
        .map(|&(r, l, c)| (r.to_string(), l, c))
        .collect();
    want.sort();
    assert_eq!(got, want, "diagnostics for {name}");
}

#[test]
fn sparsity_skip_fixture_flags_the_historical_gemm_skip() {
    // The verbatim `if a_ip == 0.0 {{ continue; }}` from the seed GEMM.
    check("sparsity_skip.rs", &[("sparsity-skip", 7, 17)]);
}

#[test]
fn nan_laundering_fixture_flags_both_max_forms() {
    check(
        "nan_laundering.rs",
        &[("nan-laundering", 5, 6), ("nan-laundering", 9, 49)],
    );
}

#[test]
fn nan_laundering_null_fixture_flags_the_write_float_shape() {
    // The verbatim non-finite-to-null encode branch from the JSON writer.
    check("nan_laundering_null.rs", &[("nan-laundering", 6, 10)]);
}

#[test]
fn hot_path_alloc_fixture_flags_the_vec_constructor() {
    check("hot_path_alloc.rs", &[("hot-path-alloc", 5, 19)]);
}

#[test]
fn lib_unwrap_fixture_flags_unwrap_and_lazy_expect() {
    check(
        "lib_unwrap.rs",
        &[("lib-unwrap", 5, 46), ("lib-unwrap", 6, 37)],
    );
}

#[test]
fn nondeterministic_time_fixture_flags_instant_now() {
    check(
        "nondeterministic_time.rs",
        &[("nondeterministic-time", 6, 24)],
    );
}

#[test]
fn env_read_fixture_flags_scattered_var_read() {
    check("env_read.rs", &[("env-read", 5, 10)]);
}

#[test]
fn raw_eprintln_fixture_flags_the_stderr_write() {
    check("raw_eprintln.rs", &[("raw-eprintln", 5, 5)]);
}

#[test]
fn partial_cmp_sort_fixture_flags_the_float_comparator() {
    // The suspect-ranking comparator shape detect.rs shipped before the
    // `total_cmp` fix (with the silently-misordering `unwrap_or` dodge).
    check("partial_cmp_sort.rs", &[("partial-cmp-sort", 6, 12)]);
}

#[test]
fn unsafe_fixture_flags_missing_safety_comment() {
    check("unsafe_safety.rs", &[("unsafe-needs-safety-comment", 5, 5)]);
}

#[test]
fn target_feature_fixture_accepts_contract_above_attributes() {
    // Only the kernel with no SAFETY comment anywhere is flagged; the one
    // documented above its `#[target_feature]` attribute passes.
    check(
        "unsafe_safety_target_feature.rs",
        &[("unsafe-needs-safety-comment", 15, 5)],
    );
}

#[test]
fn hashmap_iter_order_fixture_flags_the_report_loop() {
    check("hashmap_iter_order.rs", &[("hashmap-iter-order", 6, 19)]);
}

#[test]
fn unjoined_spawn_fixture_flags_the_dropped_handle() {
    check("unjoined_spawn.rs", &[("unjoined-spawn", 6, 22)]);
}

#[test]
fn lock_held_across_call_fixture_flags_only_the_pre_drop_call() {
    // `build_span` runs under the guard and is flagged; `emit` runs after
    // the explicit `drop(guard)` and is not.
    check(
        "lock_held_across_call.rs",
        &[("lock-held-across-call", 6, 16)],
    );
}

#[test]
fn unordered_float_reduce_fixture_flags_the_hash_order_sum() {
    check(
        "unordered_float_reduce.rs",
        &[("unordered-float-reduce", 5, 20)],
    );
}

/// The interprocedural case needs two files and an asymmetric scope: the
/// rule covers only the caller ("kernel") file, and the allocation in the
/// helper is found through the call graph, with the chain in the message.
#[test]
fn hot_path_alloc_crosses_files_through_the_call_graph() {
    let read = |name: &str| {
        let path = fixtures_dir().join(name);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        (format!("lint-fixtures/{name}"), src)
    };
    let files = vec![
        read("hot_path_alloc_caller.rs"),
        read("hot_path_alloc_helper.rs"),
    ];
    let mut config = fixture_config();
    config.rules.insert(
        "hot-path-alloc".to_string(),
        Scope {
            include: vec!["lint-fixtures/hot_path_alloc_caller.rs".to_string()],
            exclude: vec![],
        },
    );
    let diags: Vec<_> = lint_files(&files, &config)
        .into_iter()
        .filter(|d| d.rule == "hot-path-alloc")
        .collect();
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.file, "lint-fixtures/hot_path_alloc_helper.rs");
    assert_eq!((d.line, d.col), (10, 5));
    assert!(
        d.message.contains("kernel -> pack_input -> buffer"),
        "chain missing from message: {}",
        d.message
    );
}

#[test]
fn reasonless_suppression_is_rejected_and_does_not_suppress() {
    check(
        "bad_suppression.rs",
        &[("bad-suppression", 5, 5), ("nan-laundering", 6, 6)],
    );
}

#[test]
fn repo_lint_toml_excludes_the_fixture_corpus() {
    let root = fixtures_dir().join("..").canonicalize().expect("repo root");
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("committed lint.toml");
    let config = Config::parse(&toml).expect("lint.toml parses");
    assert!(
        config.files_exclude.iter().any(|p| p == "lint-fixtures/"),
        "lint.toml must exclude lint-fixtures/ so `tdfm lint` stays green"
    );
}
