//! Lossless-lexing guarantee: concatenating the texts of every token
//! produced by [`tdfm_lint::lexer::lex`] reproduces the input byte for
//! byte. Every rule in the analyzer depends on this — a lexer that drops
//! or merges bytes could hide a diagnostic inside a comment or string.
//!
//! The sweep below is proptest-style but fully deterministic: a seeded
//! xorshift generator assembles random programs from a fragment alphabet
//! biased towards the constructs that break hand-written lexers (raw
//! strings with quotes, nested block comments, lifetimes next to char
//! literals, byte strings, `r#ident`).

use tdfm_lint::lexer::{lex, TokKind};

fn roundtrip(src: &str) {
    let toks = lex(src);
    let rebuilt: String = toks.iter().map(|t| t.text).collect();
    assert_eq!(
        rebuilt, src,
        "lex -> concat must reproduce the input byte-identically"
    );
    // Offsets must tile the input with no gaps or overlaps.
    let mut offset = 0;
    for t in &toks {
        assert_eq!(t.start, offset, "token {:?} starts at a gap", t.text);
        offset = t.end();
    }
    assert_eq!(offset, src.len());
}

#[test]
fn nasty_handwritten_cases_roundtrip() {
    let cases: &[&str] = &[
        "",
        "let x = 1;",
        // Nested block comments (Rust nests; C does not).
        "/* a /* b /* c */ d */ e */ let y = 2;",
        "/* unterminated /* nested",
        // Raw strings containing quotes and line-comment markers.
        r####"let s = r#"quote " and // not a comment"#;"####,
        r####"let s = r##"one "# inside"##;"####,
        "let url = r\"http://example.com\";",
        // Char literals that look like string openers or escapes.
        r#"let c = ('"', '\'', '\\', '\n');"#,
        // Lifetimes adjacent to char literals.
        "fn f<'a>(x: &'a str) -> char { 'x' }",
        "struct S<'long_lifetime_name>(&'long_lifetime_name u8);",
        // Byte and byte-string literals.
        r##"let b = (b'x', b'\'', b"bytes \" with quote", br#"raw " bytes"#);"##,
        // Raw identifiers.
        "let r#fn = r#match; r#true();",
        // Numbers vs ranges vs floats.
        "for i in 0..10 { let x = 1.5e-3_f32 + 0xFFu8 as f32 + 2.; }",
        // Strings containing comment markers and escapes at EOF.
        "let s = \"/* not a comment */ // nor this\";",
        "let s = \"unterminated \\",
        // Shebang-ish and attribute soup.
        "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod t {}",
        // CRLF and lone CR survive.
        "let a = 1;\r\nlet b = 2;\rlet c = 3;\n",
        // Non-ASCII in idents, strings and comments.
        "let größe = \"höhe\"; // überlang\n/* 日本語 */",
        // Operators that must munch maximally.
        "a <<= b >>= c; x ..= y; p ->q; m =>n; t :: u; v != w;",
        // Unknown bytes fall through as single tokens.
        "let x = 1 $ @ ` 2;",
    ];
    for src in cases {
        roundtrip(src);
    }
}

#[test]
fn every_token_kind_is_reachable() {
    let src = r####"
// line comment
/* block /* nested */ */
fn f<'a>(x: &'a str) -> f32 {
    let _c = 'q';
    let _b = b'q';
    let _s = "str";
    let _r = r#"raw"#;
    let _bs = b"bytes";
    1.0 + 2
}
"####;
    let toks = lex(src);
    let has = |k: TokKind| toks.iter().any(|t| t.kind == k);
    for kind in [
        TokKind::Whitespace,
        TokKind::LineComment,
        TokKind::BlockComment,
        TokKind::Str,
        TokKind::RawStr,
        TokKind::Char,
        TokKind::Byte,
        TokKind::Lifetime,
        TokKind::Ident,
        TokKind::Number,
        TokKind::Punct,
    ] {
        assert!(has(kind), "no {kind:?} token produced");
    }
    roundtrip(src);
}

/// Deterministic xorshift64* — no external proptest dependency, same seed
/// every run, so a failure here is reproducible by construction.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_fragment_programs_roundtrip() {
    // Fragments chosen to collide in interesting ways when abutted: a `/`
    // before a `*`, an `r` before a `"`, a `'` before an ident, etc.
    let fragments: &[&str] = &[
        " ",
        "\n",
        "\t",
        "x",
        "r",
        "b",
        "ident",
        "'a",
        "'x'",
        "'\\''",
        "\"s\"",
        "\"\\\"\"",
        r##"r#"raw"#"##,
        "b\"b\"",
        "b'c'",
        "// c\n",
        "/* b */",
        "/* /* n */ */",
        "0",
        "1.5",
        "0x1F",
        "1e9",
        "..",
        "..=",
        "::",
        "->",
        "=>",
        "==",
        "/",
        "*",
        "=",
        "<",
        ">",
        "&",
        "#",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        ".",
        "max",
        "f32",
        "unwrap",
        "unsafe",
        "$",
        "\\",
        "é",
    ];
    let mut rng = XorShift(0x7DF4_5EED_0000_0001);
    for _ in 0..2000 {
        let len = 1 + rng.below(40);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(fragments[rng.below(fragments.len())]);
        }
        roundtrip(&src);
    }
}

#[test]
fn random_byte_soup_roundtrips() {
    // Arbitrary (valid-UTF-8) character soup, including quote and comment
    // openers with no matching closers.
    let alphabet: Vec<char> = "ab1 \n\t\"'/*#rb_.:<>=!&|-+()[]{};,\\é".chars().collect();
    let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..2000 {
        let len = rng.below(64);
        let src: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
        roundtrip(&src);
    }
}
