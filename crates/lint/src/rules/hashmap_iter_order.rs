//! `hashmap-iter-order` — ordered output driven by `HashMap`/`HashSet`
//! iteration. Hash iteration order changes between processes (SipHash
//! keying), so a `for (k, v) in counts` loop that pushes lines into a
//! results file produces byte-different goldens run to run — the exact
//! class of nondeterminism the byte-for-byte grid diffs exist to catch.
//! This repo's convention is `BTreeMap` everywhere an ordering can leak
//! into output; this rule fences the convention.
//!
//! A `for` loop is flagged when both hold:
//! * its iterated expression mentions a hash-typed name — a binding whose
//!   parameter type or `let` statement names `HashMap`/`HashSet`
//!   ([`crate::dataflow::hash_typed_names`]) — or names the type
//!   directly, and
//! * its body writes ordered output: `push` / `push_str` / `extend` /
//!   `append` method calls, or a formatting/write macro
//!   (`write!`, `writeln!`, `print!`, `println!`, `format!`).
//!
//! Membership tests, counting, and other order-free consumption stay
//! quiet; float reductions over hash iteration have their own rule
//! (`unordered-float-reduce`).

use super::{scope, Rule};
use crate::config::Scope;
use crate::dataflow::hash_typed_names;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::parser::{Expr, ExprKind, Span};

pub struct HashMapIterOrder;

const MESSAGE: &str = "ordered output driven by HashMap/HashSet iteration — hash order differs across runs, so emitted bytes are nondeterministic";
const SUGGESTION: &str = "use a BTreeMap, or collect and sort the keys before emitting; if the consumer is provably order-insensitive, add `// tdfm-lint: allow(hashmap-iter-order, <reason>)`";

/// Method names that append to an ordered collector.
const ORDERED_SINKS: &[&str] = &["append", "extend", "push", "push_str"];
/// Macros that format into ordered text.
const WRITE_MACROS: &[&str] = &[
    "eprint", "eprintln", "format", "print", "println", "write", "writeln",
];

/// Does the token span mention one of `names`, or the hash types
/// themselves (`HashMap::new()` iterated inline)?
fn mentions_hash(
    ctx: &FileCtx<'_>,
    span: Span,
    names: &std::collections::BTreeSet<String>,
) -> bool {
    (span.lo..span.hi.min(ctx.tokens.len())).any(|i| {
        let t = &ctx.tokens[i];
        t.kind == TokKind::Ident
            && (names.contains(t.text) || t.text == "HashMap" || t.text == "HashSet")
    })
}

/// Does the loop body append to an ordered sink?
fn writes_ordered_output(body: &Expr) -> bool {
    let mut hit = false;
    body.walk(&mut |e| {
        if hit {
            return;
        }
        match &e.kind {
            ExprKind::MethodCall { method, .. } if ORDERED_SINKS.contains(&method.as_str()) => {
                hit = true;
            }
            ExprKind::Macro { name } if WRITE_MACROS.contains(&name.as_str()) => hit = true,
            _ => {}
        }
    });
    hit
}

impl Rule for HashMapIterOrder {
    fn id(&self) -> &'static str {
        "hashmap-iter-order"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration drives ordered output, making emitted bytes nondeterministic"
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for func in ctx.ast.fns() {
            let Some(body) = &func.body else { continue };
            let hashed = hash_typed_names(ctx.tokens, func);
            body.walk(&mut |e| {
                let ExprKind::For { iter, .. } = &e.kind else {
                    return;
                };
                if !mentions_hash(ctx, *iter, &hashed) {
                    return;
                }
                let Some(loop_body) = e.body_block() else {
                    return;
                };
                if writes_ordered_output(loop_body) {
                    // Anchor on the iterated hash name itself.
                    let anchor = (iter.lo..iter.hi.min(ctx.tokens.len()))
                        .find(|&i| {
                            let t = &ctx.tokens[i];
                            t.kind == TokKind::Ident
                                && (hashed.contains(t.text)
                                    || t.text == "HashMap"
                                    || t.text == "HashSet")
                        })
                        .unwrap_or(iter.lo);
                    out.push(ctx.diag(anchor, self.id(), MESSAGE, SUGGESTION));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/core/src/report.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "hashmap-iter-order")
            .collect()
    }

    #[test]
    fn flags_hash_param_iteration_feeding_push() {
        let src = r#"
fn render(counts: &HashMap<String, u32>, out: &mut String) {
    for (k, v) in counts.iter() {
        out.push_str(k);
    }
}
"#;
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].line, d[0].col), (3, 19));
    }

    #[test]
    fn flags_let_bound_hashset_feeding_writeln() {
        let src = r#"
fn dump(xs: &[u32]) -> String {
    let seen: HashSet<u32> = xs.iter().copied().collect();
    let mut s = String::new();
    for x in &seen {
        writeln!(s, "{x}").unwrap();
    }
    s
}
"#;
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn order_free_consumption_is_quiet() {
        let src = r#"
fn total(counts: &HashMap<String, u32>) -> u32 {
    let mut n = 0;
    for (_, v) in counts.iter() {
        n += v;
    }
    n
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_quiet() {
        let src = r#"
fn render(counts: &BTreeMap<String, u32>, out: &mut String) {
    for (k, v) in counts.iter() {
        out.push_str(k);
    }
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn vec_iteration_feeding_push_is_quiet() {
        let src = r#"
fn render(rows: &[String], out: &mut String) {
    for r in rows {
        out.push_str(r);
    }
}
"#;
        assert!(diags(src).is_empty());
    }
}
