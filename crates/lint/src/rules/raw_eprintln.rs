//! `raw-eprintln` — `eprintln!`/`eprint!` in library code. The project
//! routes diagnostics through the structured sink (`event!` with a
//! `Level`), which honours `TDFM_LOG` filtering and lands in `TDFM_TRACE`
//! JSONL; a raw stderr write bypasses both, so it can neither be silenced
//! in quiet runs nor recovered from a trace afterwards.
//!
//! CLI front ends (`src/bin/`, `crates/bench/src/bin/`, the bench
//! runners) are out of scope — stderr *is* their user interface. The one
//! library exception is the sink itself (`crates/obs/src/sink.rs`), which
//! must write stderr by definition and carries inline
//! `tdfm-lint: allow(...)` markers with the reasons.

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct RawEprintln;

const SUGGESTION: &str = "emit a structured event instead (`event!(Level::Warn, ...)` / `Level::Error`) so TDFM_LOG can filter it and TDFM_TRACE records it; if this site genuinely must write raw stderr (it is the sink, or user-facing CLI output), add `// tdfm-lint: allow(raw-eprintln, <reason>)` or scope it out in lint.toml";

impl Rule for RawEprintln {
    fn id(&self) -> &'static str {
        "raw-eprintln"
    }

    fn summary(&self) -> &'static str {
        "raw stderr write from library code bypasses the structured sink and trace capture"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[],
            &["src/bin/", "crates/bench/src/bin/", "crates/bench/benches/"],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            for mac in ["eprintln", "eprint"] {
                if matches_texts(ctx, &sig, at, &[mac, "!"]) {
                    out.push(ctx.diag(
                        sig[at],
                        self.id(),
                        format!("`{mac}!` writes raw stderr from library code, bypassing the structured sink (TDFM_LOG filtering, TDFM_TRACE capture)"),
                        SUGGESTION,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "raw-eprintln")
            .collect()
    }

    #[test]
    fn flags_eprintln_and_eprint_in_library_code() {
        let src = "fn f() { eprintln!(\"oops\"); eprint!(\"partial\"); }";
        assert_eq!(diags("crates/core/src/experiment.rs", src).len(), 2);
    }

    #[test]
    fn cli_binaries_are_out_of_scope() {
        let src = "fn main() { eprintln!(\"error: {e}\"); }";
        assert!(diags("src/bin/tdfm.rs", src).is_empty());
        assert!(diags("crates/bench/src/bin/motivating.rs", src).is_empty());
        assert!(diags("crates/bench/benches/training_step.rs", src).is_empty());
    }

    #[test]
    fn structured_events_and_println_are_fine() {
        let src = "fn f() { event!(Level::Error, \"boom\"); println!(\"report\"); }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn tests_may_write_stderr() {
        let src = "#[cfg(test)]\nmod t { fn f() { eprintln!(\"debugging\"); } }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_with_reason_suppresses() {
        let src = "fn f() {\n    // tdfm-lint: allow(raw-eprintln, the sink itself must write stderr)\n    eprintln!(\"x\");\n}";
        assert!(diags("crates/obs/src/sink.rs", src).is_empty());
    }
}
