//! `lib-unwrap` — panics without invariants in library code. A bare
//! `unwrap()` in `tdfm-json` or `tdfm-core` turns a malformed results file
//! into an unexplained abort mid-grid; the repo convention (PR 1's
//! non-finite-loss work) is that every intentional panic names the
//! violated invariant.
//!
//! * `.unwrap()` is always flagged.
//! * `.expect("...")` is flagged when the message does not read like an
//!   invariant: shorter than 12 characters or a single word.
//! * `expect(` with a non-string argument is ignored — that is a custom
//!   method (e.g. the JSON parser's `Parser::expect(b'{')`), not
//!   `Option::expect`.

use super::{matches_texts, scope, tok, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

pub struct LibUnwrap;

const MIN_EXPECT_MESSAGE: usize = 12;

impl Rule for LibUnwrap {
    fn id(&self) -> &'static str {
        "lib-unwrap"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/json/src/",
                "crates/core/src/",
                "crates/nn/src/",
                "crates/obs/src/",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            if matches_texts(ctx, &sig, at, &[".", "unwrap", "(", ")"]) {
                out.push(ctx.diag(
                    sig[at + 1],
                    self.id(),
                    "`unwrap()` in library code panics without naming the violated invariant",
                    "propagate a Result, or use `expect(\"<the invariant that makes this infallible>\")`",
                ));
                continue;
            }
            if matches_texts(ctx, &sig, at, &[".", "expect", "("]) {
                let Some((msg, TokKind::Str)) = tok(ctx, &sig, at + 3) else {
                    continue; // non-literal or non-string arg: custom method
                };
                let body = msg.trim_matches('"');
                if body.len() < MIN_EXPECT_MESSAGE || !body.contains(' ') {
                    out.push(ctx.diag(
                        sig[at + 1],
                        self.id(),
                        format!("expect message {msg} does not name the invariant that makes this infallible"),
                        "spell out why the value is always present, e.g. `expect(\"cache lock poisoned\")`",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/json/src/parse.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "lib-unwrap")
            .collect()
    }

    #[test]
    fn flags_unwrap_and_terse_expect() {
        assert_eq!(diags("fn f() { v.unwrap(); }").len(), 1);
        assert_eq!(diags("fn f() { v.expect(\"oops\"); }").len(), 1);
        assert_eq!(diags("fn f() { v.expect(\"nonempty\"); }").len(), 1);
    }

    #[test]
    fn invariant_naming_expect_passes() {
        assert!(diags("fn f() { v.expect(\"cache lock poisoned\"); }").is_empty());
        assert!(diags("fn f() { v.expect(\"input text is valid UTF-8\"); }").is_empty());
    }

    #[test]
    fn custom_expect_methods_are_ignored() {
        assert!(diags("fn f(p: &mut P) { p.expect(b'{')?; }").is_empty());
        assert!(diags("fn f(p: &mut P) { self.expect(delim)?; }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        assert!(diags("fn f() { v.unwrap_or_else(|| 0); v.unwrap_or(1); }").is_empty());
    }

    #[test]
    fn tests_and_out_of_scope_crates_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() { v.unwrap(); } }";
        assert!(diags(src).is_empty());
        let tensor = lint_source(
            "crates/tensor/src/tensor.rs",
            "fn f() { v.unwrap(); }",
            &Config::default(),
        );
        assert!(tensor.iter().all(|d| d.rule != "lib-unwrap"));
    }
}
