//! `lib-unwrap` — panics without invariants in library code. A bare
//! `unwrap()` in `tdfm-json` or `tdfm-core` turns a malformed results file
//! into an unexplained abort mid-grid; the repo convention (PR 1's
//! non-finite-loss work) is that every intentional panic names the
//! violated invariant.
//!
//! * `.unwrap()` is always flagged (AST method call with no arguments, so
//!   chains split across lines resolve too).
//! * `.expect("...")` is flagged when the message does not read like an
//!   invariant: shorter than 12 characters or a single word.
//! * `expect(` with a non-string argument is ignored — that is a custom
//!   method (e.g. the JSON parser's `Parser::expect(b'{')`), not
//!   `Option::expect`.
//! * Calls inside macro arguments (`assert!(v.unwrap() == 3)`) are
//!   re-scanned with the token-window matcher ([`super::opaque_sig`]).

use super::{matches_texts, method_args, opaque_sig, scope, tok, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::parser::ExprKind;

pub struct LibUnwrap;

const MIN_EXPECT_MESSAGE: usize = 12;

const UNWRAP_MESSAGE: &str =
    "`unwrap()` in library code panics without naming the violated invariant";
const UNWRAP_SUGGESTION: &str =
    "propagate a Result, or use `expect(\"<the invariant that makes this infallible>\")`";
const EXPECT_SUGGESTION: &str =
    "spell out why the value is always present, e.g. `expect(\"cache lock poisoned\")`";

fn expect_message_too_terse(msg: &str) -> bool {
    let body = msg.trim_matches('"');
    body.len() < MIN_EXPECT_MESSAGE || !body.contains(' ')
}

impl Rule for LibUnwrap {
    fn id(&self) -> &'static str {
        "lib-unwrap"
    }

    fn summary(&self) -> &'static str {
        "library-code unwrap()/terse expect() panics without naming the violated invariant"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/json/src/",
                "crates/core/src/",
                "crates/nn/src/",
                "crates/obs/src/",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        ctx.ast.walk_exprs(&mut |e| {
            let ExprKind::MethodCall {
                method, method_tok, ..
            } = &e.kind
            else {
                return;
            };
            match method.as_str() {
                "unwrap" => {
                    if let Some((_, None)) = method_args(ctx, *method_tok) {
                        out.push(ctx.diag(
                            *method_tok,
                            self.id(),
                            UNWRAP_MESSAGE,
                            UNWRAP_SUGGESTION,
                        ));
                    }
                }
                "expect" => {
                    let Some((_, Some(arg))) = method_args(ctx, *method_tok) else {
                        return;
                    };
                    if ctx.tokens[arg].kind != TokKind::Str {
                        return; // non-string arg: a custom `expect` method
                    }
                    let msg = ctx.tokens[arg].text;
                    if expect_message_too_terse(msg) {
                        out.push(ctx.diag(
                            *method_tok,
                            self.id(),
                            format!("expect message {msg} does not name the invariant that makes this infallible"),
                            EXPECT_SUGGESTION,
                        ));
                    }
                }
                _ => {}
            }
        });
        // Opaque regions: the original token-window patterns.
        let osig = opaque_sig(ctx, true);
        for at in 0..osig.len() {
            if matches_texts(ctx, &osig, at, &[".", "unwrap", "(", ")"]) {
                out.push(ctx.diag(osig[at + 1], self.id(), UNWRAP_MESSAGE, UNWRAP_SUGGESTION));
                continue;
            }
            if matches_texts(ctx, &osig, at, &[".", "expect", "("]) {
                let Some((msg, TokKind::Str)) = tok(ctx, &osig, at + 3) else {
                    continue;
                };
                if expect_message_too_terse(msg) {
                    out.push(ctx.diag(
                        osig[at + 1],
                        self.id(),
                        format!("expect message {msg} does not name the invariant that makes this infallible"),
                        EXPECT_SUGGESTION,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/json/src/parse.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "lib-unwrap")
            .collect()
    }

    #[test]
    fn flags_unwrap_and_terse_expect() {
        assert_eq!(diags("fn f() { v.unwrap(); }").len(), 1);
        assert_eq!(diags("fn f() { v.expect(\"oops\"); }").len(), 1);
        assert_eq!(diags("fn f() { v.expect(\"nonempty\"); }").len(), 1);
    }

    #[test]
    fn invariant_naming_expect_passes() {
        assert!(diags("fn f() { v.expect(\"cache lock poisoned\"); }").is_empty());
        assert!(diags("fn f() { v.expect(\"input text is valid UTF-8\"); }").is_empty());
    }

    #[test]
    fn custom_expect_methods_are_ignored() {
        assert!(diags("fn f(p: &mut P) { p.expect(b'{')?; }").is_empty());
        assert!(diags("fn f(p: &mut P) { self.expect(delim)?; }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        assert!(diags("fn f() { v.unwrap_or_else(|| 0); v.unwrap_or(1); }").is_empty());
    }

    #[test]
    fn unwrap_split_across_lines_is_still_unwrap() {
        assert_eq!(diags("fn f() {\n    v\n        .unwrap();\n}").len(), 1);
    }

    #[test]
    fn unwrap_inside_a_macro_is_still_seen() {
        assert_eq!(diags("fn f() { assert!(v.unwrap() == 3); }").len(), 1);
    }

    #[test]
    fn tests_and_out_of_scope_crates_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() { v.unwrap(); } }";
        assert!(diags(src).is_empty());
        let tensor = lint_source(
            "crates/tensor/src/tensor.rs",
            "fn f() { v.unwrap(); }",
            &Config::default(),
        );
        assert!(tensor.iter().all(|d| d.rule != "lib-unwrap"));
    }
}
