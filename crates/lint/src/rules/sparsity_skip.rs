//! `sparsity-skip` — `== 0.0` / `!= 0.0` guards in numeric kernels. The
//! seed GEMM skipped multiplications when `a == 0.0`, which turned
//! `0 * NaN` (IEEE: NaN) into an untouched `0` and silently erased
//! injected faults; PR 3 removed the skip and pinned tests on it. This
//! rule keeps the whole class out of `ops/`.

use super::{scope, tok, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

pub struct SparsitySkip;

const MESSAGE: &str = "floating-point zero guard in a kernel — skipping work when a value == 0.0 erases NaN/Inf propagation (0 * NaN must stay NaN)";
const SUGGESTION: &str = "compute unconditionally (the zero-skip 'optimisation' is what masked injected faults before PR 3); if the comparison is not a skip guard, add `// tdfm-lint: allow(sparsity-skip, <reason>)`";

impl Rule for SparsitySkip {
    fn id(&self) -> &'static str {
        "sparsity-skip"
    }

    fn summary(&self) -> &'static str {
        "floating-point zero guard in a kernel erases NaN/Inf propagation (0 * NaN must stay NaN)"
    }

    fn default_scope(&self) -> Scope {
        scope(&["crates/tensor/src/ops/"], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            let Some((op, TokKind::Punct)) = tok(ctx, &sig, at) else {
                continue;
            };
            if op != "==" && op != "!=" {
                continue;
            }
            // `x == 0.0`, `x == -0.0`, and the reversed `0.0 == x`.
            let rhs_zero = match tok(ctx, &sig, at + 1) {
                Some(("-", _)) => sig
                    .get(at + 2)
                    .is_some_and(|&i| ctx.tokens[i].is_float_zero()),
                _ => sig
                    .get(at + 1)
                    .is_some_and(|&i| ctx.tokens[i].is_float_zero()),
            };
            let lhs_zero = at > 0 && ctx.tokens[sig[at - 1]].is_float_zero();
            if rhs_zero || lhs_zero {
                out.push(ctx.diag(sig[at], self.id(), MESSAGE, SUGGESTION));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/ops/fake.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "sparsity-skip")
            .collect()
    }

    #[test]
    fn flags_the_historical_gemm_skip() {
        // Verbatim shape of the seed bug PR 3 removed.
        let src = "fn f(a_ip: f32) { if a_ip == 0.0 { continue; } }";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn flags_reversed_negated_and_suffixed_zeros() {
        assert_eq!(diags("fn f(x: f32) -> bool { 0.0 != x }").len(), 1);
        assert_eq!(diags("fn f(x: f32) -> bool { x == -0.0 }").len(), 1);
        assert_eq!(diags("fn f(x: f32) -> bool { x == 0f32 }").len(), 1);
    }

    #[test]
    fn integer_zero_and_nonzero_floats_are_quiet() {
        assert!(diags("fn f(n: usize) -> bool { n == 0 }").is_empty());
        assert!(diags("fn f(x: f32) -> bool { x == 0.5 }").is_empty());
    }

    #[test]
    fn test_modules_may_compare_to_zero() {
        let src = "#[cfg(test)]\nmod tests { fn t(x: f32) { assert!(x == 0.0); } }";
        assert!(diags(src).is_empty());
    }
}
