//! `env-read` — `std::env::var` outside the documented read-once config
//! sites. PR 3 had to reconcile two modules reading `TDFM_THREADS` at
//! different times (the cached value and a later read disagreed); the fix
//! was one `OnceLock`-cached read per variable, and this rule keeps new
//! scattered reads from reintroducing the drift.
//!
//! The allowlist (in `lint.toml`) is exactly the documented sites:
//! `TDFM_THREADS` (tensor/parallel.rs), `TDFM_LOG`/`TDFM_TRACE`
//! (obs/sink.rs), `TDFM_SCALE` (data/scale.rs), `TDFM_RESULTS`
//! (bench/lib.rs).

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct EnvRead;

const SUGGESTION: &str = "read the variable once in its documented config site (OnceLock-cached) and pass the value through APIs; if this *is* a new documented site, add it to `[rules.env-read] exclude` in lint.toml and document it in README's environment table";

impl Rule for EnvRead {
    fn id(&self) -> &'static str {
        "env-read"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[],
            &[
                "crates/tensor/src/parallel.rs",
                "crates/obs/src/sink.rs",
                "crates/data/src/scale.rs",
                "crates/bench/src/lib.rs",
            ],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            for reader in ["var", "var_os"] {
                if matches_texts(ctx, &sig, at, &["env", "::", reader]) {
                    out.push(ctx.diag(
                        sig[at],
                        self.id(),
                        format!("`env::{reader}` outside the documented read-once config sites — scattered reads of the same variable drift apart"),
                        SUGGESTION,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "env-read")
            .collect()
    }

    #[test]
    fn flags_env_var_in_undocumented_sites() {
        let src = "fn f() { let v = std::env::var(\"TDFM_THREADS\"); }";
        assert_eq!(diags("crates/core/src/experiment.rs", src).len(), 1);
    }

    #[test]
    fn documented_sites_are_quiet() {
        let src = "fn f() { let v = std::env::var(\"TDFM_THREADS\"); }";
        assert!(diags("crates/tensor/src/parallel.rs", src).is_empty());
        assert!(diags("crates/obs/src/sink.rs", src).is_empty());
    }

    #[test]
    fn env_args_and_temp_dir_are_fine() {
        let src = "fn f() { let a = std::env::args(); let d = std::env::temp_dir(); }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn tests_may_read_env() {
        let src = "#[cfg(test)]\nmod t { fn f() { let v = std::env::var(\"X\"); } }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }
}
