//! `env-read` — `std::env::var` outside the documented read-once config
//! sites. PR 3 had to reconcile two modules reading `TDFM_THREADS` at
//! different times (the cached value and a later read disagreed); the fix
//! was one `OnceLock`-cached read per variable, and this rule keeps new
//! scattered reads from reintroducing the drift.
//!
//! Detection is AST-based: a call whose callee path ends in `env::var` /
//! `env::var_os`. That keeps `use std::env::var;` imports quiet (the old
//! token matcher could not tell an import from a read) while still
//! catching reads inside closures and macro arguments (the latter via the
//! lexical rescan of opaque regions).
//!
//! The allowlist (in `lint.toml`) is exactly the documented sites:
//! `TDFM_THREADS` (tensor/parallel.rs), `TDFM_LOG`/`TDFM_TRACE`
//! (obs/sink.rs), `TDFM_SCALE` (data/scale.rs), `TDFM_RESULTS`
//! (bench/lib.rs).

use super::{matches_texts, opaque_sig, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parser::{ExprKind, Span};

pub struct EnvRead;

const SUGGESTION: &str = "read the variable once in its documented config site (OnceLock-cached) and pass the value through APIs; if this *is* a new documented site, add it to `[rules.env-read] exclude` in lint.toml and document it in README's environment table";

/// If `callee` ends in `env::var` or `env::var_os`, the reader name and
/// the anchor token (the `env` segment, matching the old diagnostics).
fn env_reader(ctx: &FileCtx<'_>, callee: Span) -> Option<(&'static str, usize)> {
    let sig: Vec<usize> = (callee.lo..callee.hi.min(ctx.tokens.len()))
        .filter(|&i| !ctx.tokens[i].is_trivia())
        .collect();
    for reader in ["var", "var_os"] {
        if sig.len() >= 3 {
            let tail = &sig[sig.len() - 3..];
            let texts: Vec<&str> = tail.iter().map(|&i| ctx.tokens[i].text).collect();
            if texts == ["env", "::", reader] {
                return Some((if reader == "var" { "var" } else { "var_os" }, tail[0]));
            }
        }
    }
    None
}

fn message(reader: &str) -> String {
    format!("`env::{reader}` outside the documented read-once config sites — scattered reads of the same variable drift apart")
}

impl Rule for EnvRead {
    fn id(&self) -> &'static str {
        "env-read"
    }

    fn summary(&self) -> &'static str {
        "environment variable read outside the documented read-once config sites"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[],
            &[
                "crates/tensor/src/parallel.rs",
                "crates/obs/src/sink.rs",
                "crates/data/src/scale.rs",
                "crates/bench/src/lib.rs",
            ],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        ctx.ast.walk_exprs(&mut |e| {
            if let ExprKind::Call { callee } = &e.kind {
                if let Some((reader, anchor)) = env_reader(ctx, *callee) {
                    out.push(ctx.diag(anchor, self.id(), message(reader), SUGGESTION));
                }
            }
        });
        // Reads buried in macro arguments: token-window rescan. Verbatim
        // items are deliberately excluded — `use std::env::var;` is an
        // import, not a read.
        let osig = opaque_sig(ctx, false);
        for at in 0..osig.len() {
            for reader in ["var", "var_os"] {
                if matches_texts(ctx, &osig, at, &["env", "::", reader]) {
                    out.push(ctx.diag(osig[at], self.id(), message(reader), SUGGESTION));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "env-read")
            .collect()
    }

    #[test]
    fn flags_env_var_in_undocumented_sites() {
        let src = "fn f() { let v = std::env::var(\"TDFM_THREADS\"); }";
        assert_eq!(diags("crates/core/src/experiment.rs", src).len(), 1);
    }

    #[test]
    fn imports_are_not_reads() {
        let src = "use std::env::var;\nfn f() {}";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn reads_inside_closures_and_macros_are_flagged() {
        let src = "fn f() { let v = opt.unwrap_or_else(|| std::env::var(\"X\").unwrap()); }";
        assert_eq!(diags("crates/core/src/experiment.rs", src).len(), 1);
        let src = "fn f() { let m = format!(\"{:?}\", std::env::var(\"X\")); }";
        assert_eq!(diags("crates/core/src/experiment.rs", src).len(), 1);
    }

    #[test]
    fn documented_sites_are_quiet() {
        let src = "fn f() { let v = std::env::var(\"TDFM_THREADS\"); }";
        assert!(diags("crates/tensor/src/parallel.rs", src).is_empty());
        assert!(diags("crates/obs/src/sink.rs", src).is_empty());
    }

    #[test]
    fn env_args_and_temp_dir_are_fine() {
        let src = "fn f() { let a = std::env::args(); let d = std::env::temp_dir(); }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn tests_may_read_env() {
        let src = "#[cfg(test)]\nmod t { fn f() { let v = std::env::var(\"X\"); } }";
        assert!(diags("crates/core/src/experiment.rs", src).is_empty());
    }
}
