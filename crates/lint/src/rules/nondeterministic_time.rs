//! `nondeterministic-time` — wall-clock reads outside the allowlisted
//! timing modules. Golden outputs are diffed byte-for-byte after
//! `normalize_timings`; a stray `Instant::now()` in model or experiment
//! logic leaks nondeterminism into results that the normaliser does not
//! know to strip (PR 1 learned this the hard way when parallel grids had
//! to reproduce serial output exactly).
//!
//! Detection is AST-based: a call whose callee path ends in
//! `Instant::now` / `SystemTime::now` (so `use std::time::Instant;`
//! imports never double-report a site), plus a lexical rescan of macro
//! arguments.
//!
//! The allowlist lives in `lint.toml` (`[rules.nondeterministic-time]
//! exclude`): the bench harness, the observability crate, the trainer's
//! epoch walls, and the experiment runner's manifest timings — every one
//! of them feeds fields that `normalize_timings` strips.

use super::{matches_texts, opaque_sig, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parser::{ExprKind, Span};

pub struct NondeterministicTime;

const SUGGESTION: &str = "route timing through tdfm-obs (`OpTimer`/span) or tdfm-bench's harness so it lands in fields `normalize_timings` strips; if this module is a legitimate timing site, add it to `[rules.nondeterministic-time] exclude` in lint.toml";

/// If `callee` ends in `Instant::now` / `SystemTime::now`, the clock name
/// and the anchor token (the type segment, matching the old diagnostics).
fn clock_read(ctx: &FileCtx<'_>, callee: Span) -> Option<(&'static str, usize)> {
    let sig: Vec<usize> = (callee.lo..callee.hi.min(ctx.tokens.len()))
        .filter(|&i| !ctx.tokens[i].is_trivia())
        .collect();
    if sig.len() < 3 {
        return None;
    }
    let tail = &sig[sig.len() - 3..];
    let texts: Vec<&str> = tail.iter().map(|&i| ctx.tokens[i].text).collect();
    for source in ["Instant", "SystemTime"] {
        if texts == [source, "::", "now"] {
            return Some((source, tail[0]));
        }
    }
    None
}

fn message(source: &str) -> String {
    format!("`{source}::now()` outside an allowlisted timing module leaks wall-clock nondeterminism into outputs")
}

impl Rule for NondeterministicTime {
    fn id(&self) -> &'static str {
        "nondeterministic-time"
    }

    fn summary(&self) -> &'static str {
        "wall-clock read outside the allowlisted timing modules leaks nondeterminism"
    }

    fn default_scope(&self) -> Scope {
        // The committed lint.toml is the canonical allowlist; these
        // defaults keep a config-less run sane.
        scope(
            &[],
            &["crates/bench/", "crates/obs/", "crates/nn/src/trainer.rs"],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        ctx.ast.walk_exprs(&mut |e| {
            if let ExprKind::Call { callee } = &e.kind {
                if let Some((source, anchor)) = clock_read(ctx, *callee) {
                    out.push(ctx.diag(anchor, self.id(), message(source), SUGGESTION));
                }
            }
        });
        // Clock reads buried in macro arguments.
        let osig = opaque_sig(ctx, false);
        for at in 0..osig.len() {
            for source in ["Instant", "SystemTime"] {
                if matches_texts(ctx, &osig, at, &[source, "::", "now"]) {
                    out.push(ctx.diag(osig[at], self.id(), message(source), SUGGESTION));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "nondeterministic-time")
            .collect()
    }

    #[test]
    fn flags_instant_and_systemtime_now() {
        let src = "fn f() { let t = Instant::now(); let s = std::time::SystemTime::now(); }";
        assert_eq!(diags("crates/core/src/stats.rs", src).len(), 2);
    }

    #[test]
    fn allowlisted_modules_are_quiet() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        assert!(diags("crates/obs/src/span.rs", src).is_empty());
        assert!(diags("crates/nn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn imports_alone_are_not_flagged() {
        // Flagging `use std::time::Instant;` would double-report each site.
        assert!(diags("crates/core/src/stats.rs", "use std::time::Instant;").is_empty());
    }

    #[test]
    fn clock_reads_inside_macros_are_flagged() {
        let src = "fn f() { log!(\"{:?}\", Instant::now()); }";
        assert_eq!(diags("crates/core/src/stats.rs", src).len(), 1);
    }
}
