//! `nondeterministic-time` — wall-clock reads outside the allowlisted
//! timing modules. Golden outputs are diffed byte-for-byte after
//! `normalize_timings`; a stray `Instant::now()` in model or experiment
//! logic leaks nondeterminism into results that the normaliser does not
//! know to strip (PR 1 learned this the hard way when parallel grids had
//! to reproduce serial output exactly).
//!
//! The allowlist lives in `lint.toml` (`[rules.nondeterministic-time]
//! exclude`): the bench harness, the observability crate, the trainer's
//! epoch walls, and the experiment runner's manifest timings — every one
//! of them feeds fields that `normalize_timings` strips.

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct NondeterministicTime;

const SUGGESTION: &str = "route timing through tdfm-obs (`OpTimer`/span) or tdfm-bench's harness so it lands in fields `normalize_timings` strips; if this module is a legitimate timing site, add it to `[rules.nondeterministic-time] exclude` in lint.toml";

impl Rule for NondeterministicTime {
    fn id(&self) -> &'static str {
        "nondeterministic-time"
    }

    fn default_scope(&self) -> Scope {
        // The committed lint.toml is the canonical allowlist; these
        // defaults keep a config-less run sane.
        scope(
            &[],
            &["crates/bench/", "crates/obs/", "crates/nn/src/trainer.rs"],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            for source in ["Instant", "SystemTime"] {
                if matches_texts(ctx, &sig, at, &[source, "::", "now"]) {
                    out.push(ctx.diag(
                        sig[at],
                        self.id(),
                        format!("`{source}::now()` outside an allowlisted timing module leaks wall-clock nondeterminism into outputs"),
                        SUGGESTION,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "nondeterministic-time")
            .collect()
    }

    #[test]
    fn flags_instant_and_systemtime_now() {
        let src = "fn f() { let t = Instant::now(); let s = std::time::SystemTime::now(); }";
        assert_eq!(diags("crates/core/src/stats.rs", src).len(), 2);
    }

    #[test]
    fn allowlisted_modules_are_quiet() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        assert!(diags("crates/obs/src/span.rs", src).is_empty());
        assert!(diags("crates/nn/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn imports_alone_are_not_flagged() {
        // Flagging `use std::time::Instant;` would double-report each site.
        assert!(diags("crates/core/src/stats.rs", "use std::time::Instant;").is_empty());
    }
}
