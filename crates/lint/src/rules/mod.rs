//! The rule registry. Each rule is the mechanised form of a bug class a
//! previous PR fixed by hand — see `DESIGN.md` §"Static analysis" for the
//! rule ↔ historical-bug table.
//!
//! Rules see two levels of structure:
//!
//! * **Per-file** ([`Rule::check`]): a [`FileCtx`] carrying the lossless
//!   token stream *and* the parsed AST ([`crate::parser`]). Call-shaped
//!   rules query AST nodes (method calls resolve through turbofish and
//!   multi-line chains); genuinely lexical rules (comment adjacency,
//!   comparison patterns) still walk tokens. Because macros and
//!   `static`/`const` items are opaque to the parser, migrated rules
//!   rescan those regions lexically ([`opaque_sig`]) so nothing that the
//!   token-window engine caught is lost.
//! * **Workspace** ([`Rule::check_workspace`]): a [`WorkspaceCtx`] with
//!   every file's unit plus the call graph — `hot-path-alloc` follows
//!   calls out of the kernels, `lock-held-across-call` asks which callees
//!   are workspace-defined.

use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, WorkspaceCtx};
use crate::lexer::TokKind;
use crate::parser::{ExprKind, Item, ItemKind, Span};

mod env_read;
mod hashmap_iter_order;
mod hot_path_alloc;
mod lib_unwrap;
mod lock_held_across_call;
mod nan_laundering;
mod nondeterministic_time;
mod partial_cmp_sort;
mod raw_eprintln;
mod sparsity_skip;
mod unjoined_spawn;
mod unordered_float_reduce;
mod unsafe_safety;

/// One lint rule: an id, a default path scope, and checks at file and
/// workspace granularity.
pub trait Rule {
    /// Stable kebab-case id used in diagnostics, suppressions and
    /// `lint.toml` sections.
    fn id(&self) -> &'static str;
    /// One-line description of the bug class, used as SARIF rule metadata.
    fn summary(&self) -> &'static str;
    /// Whether findings inside test code (test files, `#[cfg(test)]`
    /// items) count. Default: library code only.
    fn applies_in_tests(&self) -> bool {
        false
    }
    /// Built-in path scope, overridable per rule in `lint.toml`.
    fn default_scope(&self) -> Scope;
    /// Emits raw findings for one scope-selected file; the engine applies
    /// test-code and suppression filtering afterwards.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
    /// Runs once per lint over the whole workspace (call graph included).
    /// `scope` is the rule's effective scope; rules that fan out across
    /// files apply it themselves. Default: nothing.
    fn check_workspace(&self, ws: &WorkspaceCtx<'_>, scope: &Scope, out: &mut Vec<Diagnostic>) {
        let _ = (ws, scope, out);
    }
}

/// Every shipped rule, in diagnostic-stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nan_laundering::NanLaundering),
        Box::new(sparsity_skip::SparsitySkip),
        Box::new(hot_path_alloc::HotPathAlloc),
        Box::new(lib_unwrap::LibUnwrap),
        Box::new(nondeterministic_time::NondeterministicTime),
        Box::new(env_read::EnvRead),
        Box::new(unsafe_safety::UnsafeNeedsSafetyComment),
        Box::new(raw_eprintln::RawEprintln),
        Box::new(partial_cmp_sort::PartialCmpSort),
        Box::new(hashmap_iter_order::HashMapIterOrder),
        Box::new(unjoined_spawn::UnjoinedSpawn),
        Box::new(lock_held_across_call::LockHeldAcrossCall),
        Box::new(unordered_float_reduce::UnorderedFloatReduce),
    ]
}

/// Is `id` a rule id suppressions may name? (`bad-suppression` itself is
/// not suppressible.)
pub fn is_known_rule(id: &str) -> bool {
    all_rules().iter().any(|r| r.id() == id)
}

/// Convenience for scope construction.
fn scope(include: &[&str], exclude: &[&str]) -> Scope {
    Scope {
        include: include.iter().map(|s| s.to_string()).collect(),
        exclude: exclude.iter().map(|s| s.to_string()).collect(),
    }
}

/// Does the significant-token window starting at `sig[at]` spell out
/// `pattern` exactly?
fn matches_texts(ctx: &FileCtx<'_>, sig: &[usize], at: usize, pattern: &[&str]) -> bool {
    sig[at..].len() >= pattern.len()
        && sig[at..at + pattern.len()]
            .iter()
            .zip(pattern)
            .all(|(&i, want)| ctx.tokens[i].text == *want)
}

/// The significant token at `sig[at]`, if any.
fn tok<'a>(ctx: &'a FileCtx<'_>, sig: &[usize], at: usize) -> Option<(&'a str, TokKind)> {
    sig.get(at)
        .map(|&i| (ctx.tokens[i].text, ctx.tokens[i].kind))
}

/// Significant-token indices inside the regions the AST cannot see into:
/// opaque macro bodies and — when `include_verbatim` — `Verbatim` items
/// (statics, consts, `macro_rules!` definitions). AST-migrated rules
/// rescan exactly these indices with their old token-window matchers, so
/// `x.max(0.0)` inside an `assert!` or a `static` initialiser is still
/// caught. Rules whose pattern would misfire on imports (`env-read`,
/// `nondeterministic-time` — a `use std::env::var;` is not a read) pass
/// `include_verbatim = false`.
fn opaque_sig(ctx: &FileCtx<'_>, include_verbatim: bool) -> Vec<usize> {
    let mut spans: Vec<Span> = Vec::new();
    ctx.ast.walk_exprs(&mut |e| {
        if matches!(e.kind, ExprKind::Macro { .. }) {
            spans.push(e.span);
        }
    });
    fn verbatim_spans(item: &Item, out: &mut Vec<Span>) {
        match &item.kind {
            ItemKind::Verbatim => out.push(item.span),
            ItemKind::Mod { items, .. } | ItemKind::Impl { items } | ItemKind::Trait { items } => {
                for it in items {
                    verbatim_spans(it, out);
                }
            }
            ItemKind::Fn(_) => {}
        }
    }
    if include_verbatim {
        for item in &ctx.ast.items {
            verbatim_spans(item, &mut spans);
        }
    }
    let mut out: Vec<usize> = (0..ctx.tokens.len())
        .filter(|&i| !ctx.tokens[i].is_trivia() && spans.iter().any(|s| s.contains(i)))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// For a `MethodCall` node: `(open paren index, first-arg token)` when the
/// token right after the method name (no turbofish) is `(`. Mirrors the
/// old token-window arg inspection, which AST children cannot provide
/// (literal-only arguments collapse into the node's gap).
fn method_args(ctx: &FileCtx<'_>, method_tok: usize) -> Option<(usize, Option<usize>)> {
    let next = (method_tok + 1..ctx.tokens.len()).find(|&i| !ctx.tokens[i].is_trivia())?;
    if ctx.tokens[next].text != "(" {
        return None;
    }
    let first = (next + 1..ctx.tokens.len()).find(|&i| !ctx.tokens[i].is_trivia());
    let first_arg = match first {
        Some(i) if ctx.tokens[i].text != ")" => Some(i),
        _ => None,
    };
    Some((next, first_arg))
}
