//! The rule registry. Each rule is the mechanised form of a bug class a
//! previous PR fixed by hand — see `DESIGN.md` §"Static analysis" for the
//! rule ↔ historical-bug table.

use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

mod env_read;
mod hot_path_alloc;
mod lib_unwrap;
mod nan_laundering;
mod nondeterministic_time;
mod partial_cmp_sort;
mod raw_eprintln;
mod sparsity_skip;
mod unsafe_safety;

/// One lint rule: an id, a default path scope, and a token-pattern check.
pub trait Rule {
    /// Stable kebab-case id used in diagnostics, suppressions and
    /// `lint.toml` sections.
    fn id(&self) -> &'static str;
    /// Whether findings inside test code (test files, `#[cfg(test)]`
    /// items) count. Default: library code only.
    fn applies_in_tests(&self) -> bool {
        false
    }
    /// Built-in path scope, overridable per rule in `lint.toml`.
    fn default_scope(&self) -> Scope;
    /// Emits raw findings; the engine applies test-code and suppression
    /// filtering afterwards.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// Every shipped rule, in diagnostic-stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nan_laundering::NanLaundering),
        Box::new(sparsity_skip::SparsitySkip),
        Box::new(hot_path_alloc::HotPathAlloc),
        Box::new(lib_unwrap::LibUnwrap),
        Box::new(nondeterministic_time::NondeterministicTime),
        Box::new(env_read::EnvRead),
        Box::new(unsafe_safety::UnsafeNeedsSafetyComment),
        Box::new(raw_eprintln::RawEprintln),
        Box::new(partial_cmp_sort::PartialCmpSort),
    ]
}

/// Is `id` a rule id suppressions may name? (`bad-suppression` itself is
/// not suppressible.)
pub fn is_known_rule(id: &str) -> bool {
    all_rules().iter().any(|r| r.id() == id)
}

/// Convenience for scope construction.
fn scope(include: &[&str], exclude: &[&str]) -> Scope {
    Scope {
        include: include.iter().map(|s| s.to_string()).collect(),
        exclude: exclude.iter().map(|s| s.to_string()).collect(),
    }
}

/// Does the significant-token window starting at `sig[at]` spell out
/// `pattern` exactly?
fn matches_texts(ctx: &FileCtx<'_>, sig: &[usize], at: usize, pattern: &[&str]) -> bool {
    sig[at..].len() >= pattern.len()
        && sig[at..at + pattern.len()]
            .iter()
            .zip(pattern)
            .all(|(&i, want)| ctx.tokens[i].text == *want)
}

/// The significant token at `sig[at]`, if any.
fn tok<'a>(ctx: &'a FileCtx<'_>, sig: &[usize], at: usize) -> Option<(&'a str, TokKind)> {
    sig.get(at)
        .map(|&i| (ctx.tokens[i].text, ctx.tokens[i].kind))
}
