//! `partial-cmp-sort` — `partial_cmp` inside a `sort_by` /
//! `sort_unstable_by` comparator. `partial_cmp` on floats returns `None`
//! for NaN, so the usual `.unwrap()` panics the first time a NaN reaches
//! the sort — and the `unwrap_or` dodges produce an incoherent comparator
//! that misorders silently. The trimmed-mean/median aggregators and the
//! shard localizer all rank by float score; PR 6 fixed exactly this bug
//! in `detect.rs` suspect ranking. `total_cmp` is a total order (NaN
//! sorts to one end, deterministically) and is what every ranking in this
//! codebase must use.

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct PartialCmpSort;

const MESSAGE: &str = "`partial_cmp` in a sort comparator is not a total order: NaN yields None, so the comparator panics on unwrap or misorders silently";
const SUGGESTION: &str = "compare floats with `total_cmp` (total order, deterministic NaN placement), or add `// tdfm-lint: allow(partial-cmp-sort, <reason>)`";

/// How many significant tokens of the sort call we scan for the
/// comparator body before giving up. Generous for a one-line closure,
/// small enough not to bridge into unrelated statements if the paren
/// stream is malformed.
const CALL_WINDOW: usize = 120;

impl Rule for PartialCmpSort {
    fn id(&self) -> &'static str {
        "partial-cmp-sort"
    }

    fn summary(&self) -> &'static str {
        "`partial_cmp` in a sort comparator panics or misorders when NaN reaches the sort"
    }

    fn applies_in_tests(&self) -> bool {
        // A NaN-panicking comparator in a test helper flakes the suite
        // just as surely as it breaks library ranking code.
        true
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            let is_sort = matches_texts(ctx, &sig, at, &[".", "sort_by", "("])
                || matches_texts(ctx, &sig, at, &[".", "sort_unstable_by", "("]);
            if !is_sort {
                continue;
            }
            // Scan only the sort call's own argument list: walk the paren
            // depth from the call's `(` so a `partial_cmp` in a later
            // statement cannot false-positive this sort.
            let mut depth = 0usize;
            for &j in sig[at + 2..].iter().take(CALL_WINDOW) {
                match ctx.tokens[j].text {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "partial_cmp" => {
                        out.push(ctx.diag(sig[at + 1], self.id(), MESSAGE, SUGGESTION));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/core/src/fake.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "partial-cmp-sort")
            .collect()
    }

    #[test]
    fn flags_partial_cmp_in_sort_by_and_sort_unstable_by() {
        let src = "fn f(v: &mut Vec<f32>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(diags(src).len(), 1);
        let src = "fn f(v: &mut [f32]) { v.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap()); }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn flags_the_keyed_tuple_shape() {
        // The historical detect.rs suspect-ranking shape.
        let src = "fn f(s: &[f32], idx: &mut Vec<usize>) { idx.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).unwrap()); }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn total_cmp_comparators_are_quiet() {
        let src = "fn f(v: &mut Vec<f32>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn partial_cmp_outside_the_sort_call_is_quiet() {
        let src = "fn f(v: &mut Vec<u32>, x: f32, y: f32) { v.sort_by(|a, b| a.cmp(b)); let o = x.partial_cmp(&y); drop(o); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn applies_inside_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let mut v = vec![1.0f32]; v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn comments_and_strings_never_trigger() {
        assert!(diags("// v.sort_by(|a, b| a.partial_cmp(b).unwrap())\nfn f() {}").is_empty());
        assert!(diags("fn f() -> &'static str { \".sort_by( partial_cmp\" }").is_empty());
    }

    #[test]
    fn suppression_comment_is_honoured() {
        let src = "fn f(v: &mut Vec<f32>) {\n    // tdfm-lint: allow(partial-cmp-sort, NaN screened upstream)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        assert!(diags(src).is_empty());
    }
}
