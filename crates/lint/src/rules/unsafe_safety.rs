//! `unsafe-needs-safety-comment` — every `unsafe` block, fn, or impl must
//! be preceded by a `// SAFETY:` comment stating why the contract holds.
//! The workspace has exactly two unsafe sites (the counting allocator in
//! `zero_alloc.rs` and the env mutation in `parallel.rs`'s tests); this
//! rule makes sure any future one arrives with its justification attached.
//! Unlike the other rules it applies inside test code too — the existing
//! unsafe lives there.

use super::{scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

pub struct UnsafeNeedsSafetyComment;

impl Rule for UnsafeNeedsSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn summary(&self) -> &'static str {
        "`unsafe` without a preceding `// SAFETY:` comment stating why the contract holds"
    }

    fn applies_in_tests(&self) -> bool {
        true
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, t) in ctx.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            if !has_safety_comment_before(ctx, i) {
                out.push(ctx.diag(
                    i,
                    self.id(),
                    "`unsafe` without a preceding `// SAFETY:` comment",
                    "state, directly above the unsafe site, why the safety contract holds",
                ));
            }
        }
    }
}

/// Walks backwards from the `unsafe` token over trivia; the immediately
/// preceding comment run (comments separated only by whitespace) must
/// contain `SAFETY:`.
fn has_safety_comment_before(ctx: &FileCtx<'_>, idx: usize) -> bool {
    for t in ctx.tokens[..idx].iter().rev() {
        match t.kind {
            TokKind::Whitespace => continue,
            TokKind::LineComment | TokKind::BlockComment => {
                if t.text.contains("SAFETY:") {
                    return true;
                }
                // Keep scanning: a multi-line comment run counts as one.
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/parallel.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "unsafe-needs-safety-comment")
            .collect()
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        assert_eq!(diags("fn f() { unsafe { work() } }").len(), 1);
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let src =
            "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    unsafe { work() }\n}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn multi_line_safety_comment_passes() {
        let src = "// SAFETY: serialised by GLOBAL_CONFIG; no other thread\n// mutates the environment concurrently.\nunsafe fn f() {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn each_unsafe_needs_its_own_comment() {
        let src =
            "fn f() {\n    // SAFETY: ok for the first.\n    unsafe { a() }\n    unsafe { b() }\n}";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn applies_inside_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod t { fn f() { unsafe { a() } } }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn the_word_in_comments_or_strings_is_not_unsafe_code() {
        assert!(diags("// unsafe is discussed here\nfn f() {}").is_empty());
        assert!(diags("fn f() -> &'static str { \"unsafe\" }").is_empty());
    }
}
