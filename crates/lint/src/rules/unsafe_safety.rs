//! `unsafe-needs-safety-comment` — every `unsafe` block, fn, or impl must
//! be preceded by a `// SAFETY:` comment stating why the contract holds.
//! This rule makes sure every unsafe site (the SIMD kernels in
//! `tensor/src/simd.rs` and `ops/gemm.rs`, the aligned allocator in
//! `align.rs`, the counting allocator in `zero_alloc.rs`, the env
//! mutation in `parallel.rs`'s tests) arrives with its justification
//! attached. Unlike the other rules it applies inside test code too —
//! some of the existing unsafe lives there.
//!
//! The comment must live in the same statement as the `unsafe` keyword:
//! anything up to the nearest `;`, `{` or `}` counts, so the idiomatic
//! placements all work — above a `#[target_feature(enable = "avx2")]`
//! attribute stack, above the `let` binding whose initialiser is the
//! unsafe block, or above a match arm's pattern. A comment in a
//! *previous* statement (or an enclosing block) never leaks through.

use super::{scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

pub struct UnsafeNeedsSafetyComment;

impl Rule for UnsafeNeedsSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn summary(&self) -> &'static str {
        "`unsafe` without a preceding `// SAFETY:` comment stating why the contract holds"
    }

    fn applies_in_tests(&self) -> bool {
        true
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, t) in ctx.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            if !has_safety_comment_before(ctx, i) {
                out.push(ctx.diag(
                    i,
                    self.id(),
                    "`unsafe` without a preceding `// SAFETY:` comment",
                    "state, directly above the unsafe site, why the safety contract holds",
                ));
            }
        }
    }
}

/// Walks backwards from the `unsafe` token looking for a comment that
/// contains `SAFETY:` within the same statement — the walk skips
/// attributes, visibility modifiers, `let` bindings, match-arm patterns
/// and any other same-statement tokens, and stops at the nearest `;`,
/// `{` or `}` so a contract documented on a *previous* statement (or in
/// an enclosing block) never satisfies a later `unsafe`.
fn has_safety_comment_before(ctx: &FileCtx<'_>, idx: usize) -> bool {
    for t in ctx.tokens[..idx].iter().rev() {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                if t.text.contains("SAFETY:") {
                    return true;
                }
            }
            TokKind::Punct if matches!(t.text, ";" | "{" | "}") => return false,
            _ => continue,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/parallel.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "unsafe-needs-safety-comment")
            .collect()
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        assert_eq!(diags("fn f() { unsafe { work() } }").len(), 1);
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let src =
            "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    unsafe { work() }\n}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn multi_line_safety_comment_passes() {
        let src = "// SAFETY: serialised by GLOBAL_CONFIG; no other thread\n// mutates the environment concurrently.\nunsafe fn f() {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn each_unsafe_needs_its_own_comment() {
        let src =
            "fn f() {\n    // SAFETY: ok for the first.\n    unsafe { a() }\n    unsafe { b() }\n}";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn applies_inside_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod t { fn f() { unsafe { a() } } }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn the_word_in_comments_or_strings_is_not_unsafe_code() {
        assert!(diags("// unsafe is discussed here\nfn f() {}").is_empty());
        assert!(diags("fn f() -> &'static str { \"unsafe\" }").is_empty());
    }

    #[test]
    fn safety_comment_above_target_feature_attribute_passes() {
        // The idiomatic SIMD kernel shape: the contract is documented
        // above the attribute, not squeezed between attribute and `unsafe`.
        let src = "/// SAFETY: callers must check AVX2 via is_x86_feature_detected.\n#[target_feature(enable = \"avx2\")]\nunsafe fn kernel(x: &mut [f32]) {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn safety_comment_above_stacked_attributes_passes() {
        let src = "// SAFETY: lanes stay in bounds; caller checked the CPU.\n#[inline]\n#[target_feature(enable = \"sse2\")]\nunsafe fn kernel() {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn safety_comment_above_pub_crate_fn_passes() {
        let src = "// SAFETY: callers uphold the alignment contract.\n#[target_feature(enable = \"avx2\")]\npub(crate) unsafe fn kernel() {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn undocumented_target_feature_fn_is_still_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn kernel() {}";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn non_attribute_brackets_do_not_leak_a_comment_through() {
        // The `]` here closes an index expression, not an attribute; the
        // comment above it must not satisfy the rule.
        let src = "fn f(xs: &[u8]) -> u8 {\n    // SAFETY: unrelated.\n    let _ = xs[0];\n    unsafe { *xs.get_unchecked(0) }\n}";
        assert_eq!(diags(src).len(), 1);
    }
}
