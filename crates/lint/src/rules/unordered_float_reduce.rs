//! `unordered-float-reduce` — `.sum()` / `.product()` / `.fold()` over
//! `HashMap`/`HashSet` iteration with float elements. Float addition is
//! not associative: summing the same values in a different order moves
//! the last few ulps, and hash iteration order changes every run — so a
//! per-class loss aggregated from a `HashMap<Label, f32>` drifts between
//! byte-identical experiment invocations. The distributed trainer's
//! gradient reductions are ordered by construction (shard index); this
//! rule fences everything that is not.
//!
//! A reduction is flagged when its receiver chain mentions a hash-typed
//! name ([`crate::dataflow::hash_typed_names`]) or the hash types
//! themselves, and the reduction is float-flavoured: the call's tokens
//! (receiver, turbofish, arguments) or its source line carry a float
//! literal or `f32`/`f64`.

use super::{scope, Rule};
use crate::config::Scope;
use crate::dataflow::hash_typed_names;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::parser::{ExprKind, Span};

pub struct UnorderedFloatReduce;

const MESSAGE: &str = "float reduction over HashMap/HashSet iteration — float addition is non-associative and hash order changes per run, so the result drifts";
const SUGGESTION: &str = "reduce in a deterministic order: BTreeMap, or sort keys first (the distributed trainer reduces by shard index for exactly this reason); if ulp drift is provably acceptable here, add `// tdfm-lint: allow(unordered-float-reduce, <reason>)`";

fn span_mentions(
    ctx: &FileCtx<'_>,
    span: Span,
    names: &std::collections::BTreeSet<String>,
) -> bool {
    (span.lo..span.hi.min(ctx.tokens.len())).any(|i| {
        let t = &ctx.tokens[i];
        t.kind == TokKind::Ident
            && (names.contains(t.text) || t.text == "HashMap" || t.text == "HashSet")
    })
}

fn span_has_float(ctx: &FileCtx<'_>, span: Span) -> bool {
    (span.lo..span.hi.min(ctx.tokens.len())).any(|i| {
        let t = &ctx.tokens[i];
        t.is_float_literal() || (t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
    })
}

impl Rule for UnorderedFloatReduce {
    fn id(&self) -> &'static str {
        "unordered-float-reduce"
    }

    fn summary(&self) -> &'static str {
        "non-associative float reduction over unordered hash iteration drifts between runs"
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for func in ctx.ast.fns() {
            let Some(body) = &func.body else { continue };
            let hashed = hash_typed_names(ctx.tokens, func);
            body.walk(&mut |e| {
                let ExprKind::MethodCall {
                    method, dot_tok, ..
                } = &e.kind
                else {
                    return;
                };
                if !matches!(method.as_str(), "sum" | "product" | "fold") {
                    return;
                }
                let Some(recv) = e.children.first() else {
                    return;
                };
                if !span_mentions(ctx, recv.span, &hashed) {
                    return;
                }
                // Float-flavoured: the call's own tokens (receiver chain,
                // turbofish, fold init) or the dot's source line.
                if span_has_float(ctx, e.span) || ctx.line_has_float_marker(*dot_tok) {
                    out.push(ctx.diag(*dot_tok, self.id(), MESSAGE, SUGGESTION));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/core/src/stats.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "unordered-float-reduce")
            .collect()
    }

    #[test]
    fn flags_float_sum_over_hashmap_values() {
        let src = r#"
fn total(losses: &HashMap<u32, f32>) -> f32 {
    losses.values().sum::<f32>()
}
"#;
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].line, d[0].col), (3, 20));
    }

    #[test]
    fn flags_fold_with_float_init_over_hashset() {
        let src = r#"
fn norm(xs: &[f32]) -> f32 {
    let uniq: HashSet<u32> = xs.iter().map(|x| x.to_bits()).collect();
    uniq.iter().fold(0.0f32, |a, b| a + f32::from_bits(*b))
}
"#;
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn integer_count_over_hashmap_is_quiet() {
        let src = r#"
fn count(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn float_sum_over_a_slice_is_quiet() {
        let src = r#"
fn total(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn btreemap_reduction_is_quiet() {
        let src = r#"
fn total(losses: &BTreeMap<u32, f32>) -> f32 {
    losses.values().sum::<f32>()
}
"#;
        assert!(diags(src).is_empty());
    }
}
