//! `lock-held-across-call` — a `Mutex` guard held while calling back into
//! workspace code. The trace sink and the robust-aggregation shard state
//! are both behind mutexes; a callee that logs (taking the sink lock) or
//! re-enters the shard state deadlocks, and even a non-reentrant slow
//! callee serialises every worker on the lock. The historical shape: a
//! `let guard = state.lock().unwrap();` followed by a span-building call
//! three lines later, holding the lock across the whole build.
//!
//! For each `let g = <expr>.lock()...;` binding, the statements after it
//! in the same block — up to an explicit `drop(g)` or the block's end —
//! are scanned. A call is flagged when the call graph can point it at
//! workspace code:
//! * a free/path call that resolves to at least one workspace fn, or
//! * a method call whose name is non-ubiquitous
//!   ([`crate::callgraph::is_ubiquitous`]) and names a workspace fn.
//!
//! Methods *on the guard itself* (`g.push(..)`) are the point of holding
//! the lock and stay quiet, as do std-only calls (`v.len()`, `drop`).
//! This is a workspace rule: it needs the graph, so it runs in
//! [`Rule::check_workspace`].

use super::Rule;
use crate::callgraph::{is_ubiquitous, last_segment};
use crate::config::Scope;
use crate::dataflow::first_ident;
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, WorkspaceCtx};
use crate::parser::{Expr, ExprKind};

pub struct LockHeldAcrossCall;

const SUGGESTION: &str = "shrink the critical section: copy what you need out of the guard and `drop(guard)` before the call (or scope the guard in its own block); if the callee provably takes no lock and is fast, add `// tdfm-lint: allow(lock-held-across-call, <reason>)`";

/// Is this `let` statement's initialiser a guard acquisition — an init
/// chain whose outermost method is `lock`/`unwrap`/`expect` containing a
/// `.lock()` call? (`let v = m.lock().unwrap().clone();` ends in `clone`:
/// the guard is a dropped temporary, not held.)
fn takes_lock(let_node: &Expr) -> bool {
    let Some(init) = let_node.children.last() else {
        return false;
    };
    let ExprKind::MethodCall { method, .. } = &init.kind else {
        return false;
    };
    if !matches!(method.as_str(), "lock" | "unwrap" | "expect") {
        return false;
    }
    let mut has_lock = false;
    init.walk(&mut |e| {
        if let ExprKind::MethodCall { method, .. } = &e.kind {
            if method == "lock" {
                has_lock = true;
            }
        }
    });
    has_lock
}

/// Is this statement exactly `drop(g)`? (The bare-ident argument is not
/// an AST child — trivial leaves collapse into the call's gap — so the
/// argument is read from the tokens between the callee and the close.)
fn is_drop_of(ctx: &FileCtx<'_>, stmt: &Expr, guard: &str) -> bool {
    let ExprKind::Call { callee } = &stmt.kind else {
        return false;
    };
    if last_segment(ctx.tokens, *callee).is_none_or(|(n, _)| n != "drop") {
        return false;
    }
    (callee.hi..stmt.span.hi.min(ctx.tokens.len()))
        .find(|&i| ctx.tokens[i].kind == crate::lexer::TokKind::Ident)
        .map(|i| ctx.tokens[i].text)
        == Some(guard)
}

impl Rule for LockHeldAcrossCall {
    fn id(&self) -> &'static str {
        "lock-held-across-call"
    }

    fn summary(&self) -> &'static str {
        "workspace call made while a lock guard is held risks deadlock and serialises workers"
    }

    fn default_scope(&self) -> Scope {
        Scope {
            include: Vec::new(),
            exclude: Vec::new(),
        }
    }

    fn check(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Diagnostic>) {
        // Needs the call graph: all work happens in check_workspace.
    }

    fn check_workspace(&self, ws: &WorkspaceCtx<'_>, scope: &Scope, out: &mut Vec<Diagnostic>) {
        for (i, unit) in ws.units.iter().enumerate() {
            if !scope.selects(unit.path) {
                continue;
            }
            let ctx = ws.ctx(i);
            for func in ctx.ast.fns() {
                let Some(body) = &func.body else { continue };
                body.walk(&mut |block| {
                    if !matches!(block.kind, ExprKind::Block) {
                        return;
                    }
                    self.check_block(ws, &ctx, block, out);
                });
            }
        }
    }
}

impl LockHeldAcrossCall {
    fn check_block(
        &self,
        ws: &WorkspaceCtx<'_>,
        ctx: &FileCtx<'_>,
        block: &Expr,
        out: &mut Vec<Diagnostic>,
    ) {
        for (si, stmt) in block.children.iter().enumerate() {
            let ExprKind::Let {
                name: Some(guard), ..
            } = &stmt.kind
            else {
                continue;
            };
            if !takes_lock(stmt) {
                continue;
            }
            for later in &block.children[si + 1..] {
                if is_drop_of(ctx, later, guard) {
                    break;
                }
                later.walk(&mut |e| {
                    if let Some(anchor) = self.workspace_call(ws, ctx, e, guard) {
                        out.push(ctx.diag(
                            anchor,
                            self.id(),
                            format!("call into workspace code while the `{guard}` lock guard is held — the callee may block or take the same lock"),
                            SUGGESTION,
                        ));
                    }
                });
            }
        }
    }

    /// The anchor token if `e` is a call the graph links to workspace code
    /// (and not a use of the guard itself).
    fn workspace_call(
        &self,
        ws: &WorkspaceCtx<'_>,
        ctx: &FileCtx<'_>,
        e: &Expr,
        guard: &str,
    ) -> Option<usize> {
        match &e.kind {
            ExprKind::Call { callee } => {
                let (name, tok) = last_segment(ctx.tokens, *callee)?;
                // `is_ubiquitous` also covers `drop`; without it,
                // `std::mem::take(..)` under a guard would resolve to any
                // workspace method that happens to be named `take`.
                if is_ubiquitous(name) || ws.graph.defs_named(name).is_empty() {
                    return None;
                }
                Some(tok)
            }
            ExprKind::MethodCall {
                method, method_tok, ..
            } => {
                if is_ubiquitous(method) || ws.graph.defs_named(method).is_empty() {
                    return None;
                }
                // Methods on the guard are the point of holding the lock.
                let recv = e.children.first()?;
                if first_ident(ctx.tokens, recv.span) == Some(guard) {
                    return None;
                }
                Some(*method_tok)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_files;

    /// Two files: the callee definitions give the graph something to link.
    fn diags(caller_src: &str) -> Vec<Diagnostic> {
        let files = vec![
            ("crates/obs/src/sink.rs".to_string(), caller_src.to_string()),
            (
                "crates/obs/src/span.rs".to_string(),
                "pub fn build_span(d: u64) -> Span { Span::of(d) }\npub fn fanout(n: usize) {}"
                    .to_string(),
            ),
        ];
        lint_files(&files, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "lock-held-across-call")
            .collect()
    }

    #[test]
    fn workspace_call_under_guard_is_flagged() {
        let src = r#"
fn flush(state: &Mutex<Vec<u64>>) {
    let g = state.lock().unwrap();
    let s = build_span(g[0]);
}
"#;
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].line, d[0].col), (4, 13));
    }

    #[test]
    fn dropping_the_guard_first_is_quiet() {
        let src = r#"
fn flush(state: &Mutex<Vec<u64>>) {
    let g = state.lock().unwrap();
    let d = g[0];
    drop(g);
    let s = build_span(d);
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn guard_methods_and_std_calls_are_quiet() {
        let src = r#"
fn flush(state: &Mutex<Vec<u64>>) {
    let g = state.lock().unwrap();
    let n = g.len();
    let m = n.max(1);
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn lock_temporary_is_not_a_held_guard() {
        let src = r#"
fn snapshot(state: &Mutex<Vec<u64>>) {
    let v = state.lock().unwrap().clone();
    let s = build_span(v[0]);
}
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn qualified_std_calls_are_quiet_despite_name_collisions() {
        // `std::mem::take` must not count as a workspace call just
        // because some workspace type has a `take` method.
        let files = vec![
            (
                "crates/obs/src/sink.rs".to_string(),
                r#"
fn flush(state: &Mutex<Vec<u64>>, buf: &mut Vec<u64>) {
    let g = state.lock().unwrap();
    let v = std::mem::take(buf);
}
"#
                .to_string(),
            ),
            (
                "crates/obs/src/span.rs".to_string(),
                "pub struct Pool; impl Pool { pub fn take(&self, n: usize) -> usize { n } }"
                    .to_string(),
            ),
        ];
        let d: Vec<Diagnostic> = lint_files(&files, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "lock-held-across-call")
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scoping_the_guard_in_a_block_is_quiet() {
        let src = r#"
fn flush(state: &Mutex<Vec<u64>>) {
    let d = { let g = state.lock().unwrap(); g[0] };
    let s = build_span(d);
}
"#;
        assert!(diags(src).is_empty());
    }
}
