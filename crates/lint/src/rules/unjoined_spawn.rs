//! `unjoined-spawn` — `thread::spawn` whose `JoinHandle` is provably
//! dropped without a `join()`. A detached worker races process exit: the
//! shard trainers in `distributed.rs` would silently lose their final
//! gradient flush if a refactor dropped the join loop, and a faulty-shard
//! localization run would read half-written span files. Scoped threads
//! (`std::thread::scope(|s| s.spawn(..))`) join on scope exit and are
//! exempt — `.spawn(` method calls never match.
//!
//! Dataflow ([`crate::dataflow`]) decides, conservatively:
//! * spawn in statement position, or bound to `_` / `let _h` then
//!   `drop`ped or never used → flagged;
//! * handle reaches `.join()` as a receiver (any chain: `h.join()`,
//!   `handles[i].join()`) → quiet;
//! * handle escapes — pushed into a Vec, returned, passed to a fn, stored
//!   in a struct — → quiet (the join may live elsewhere; the call graph
//!   cannot prove it does not).

use super::{scope, Rule};
use crate::config::Scope;
use crate::dataflow::{escapes, node_stack_at, reaches_method};
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parser::{Expr, ExprKind, Span};

pub struct UnjoinedSpawn;

const MESSAGE: &str = "`thread::spawn` handle is dropped without `join()` — the detached thread races process exit and its work (or panic) is silently lost";
const SUGGESTION: &str = "keep the JoinHandle and `join()` it (collect into a Vec and join at the end, as distributed.rs does), or use `std::thread::scope` so joining is structural; if detaching is intended, add `// tdfm-lint: allow(unjoined-spawn, <reason>)`";

/// If `callee` ends in `thread::spawn`, the anchor token (`spawn`).
fn spawn_call(ctx: &FileCtx<'_>, callee: Span) -> Option<usize> {
    let sig: Vec<usize> = (callee.lo..callee.hi.min(ctx.tokens.len()))
        .filter(|&i| !ctx.tokens[i].is_trivia())
        .collect();
    if sig.len() < 3 {
        return None;
    }
    let tail = &sig[sig.len() - 3..];
    let texts: Vec<&str> = tail.iter().map(|&i| ctx.tokens[i].text).collect();
    (texts == ["thread", "::", "spawn"]).then(|| tail[2])
}

/// Is the next significant token after `span` a `;`? Distinguishes a
/// statement-position spawn (handle discarded) from a tail-position one
/// (handle returned to the caller).
fn followed_by_semicolon(ctx: &FileCtx<'_>, span: Span) -> bool {
    (span.hi..ctx.tokens.len())
        .find(|&i| !ctx.tokens[i].is_trivia())
        .is_some_and(|i| ctx.tokens[i].text == ";")
}

impl Rule for UnjoinedSpawn {
    fn id(&self) -> &'static str {
        "unjoined-spawn"
    }

    fn summary(&self) -> &'static str {
        "thread::spawn handle dropped without join() — the detached thread races process exit"
    }

    fn default_scope(&self) -> Scope {
        scope(&[], &[])
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for func in ctx.ast.fns() {
            let Some(body) = &func.body else { continue };
            body.walk(&mut |e| {
                let ExprKind::Call { callee } = &e.kind else {
                    return;
                };
                let Some(anchor) = spawn_call(ctx, *callee) else {
                    return;
                };
                if self.handle_is_lost(ctx, body, e, anchor) {
                    out.push(ctx.diag(anchor, self.id(), MESSAGE, SUGGESTION));
                }
            });
        }
    }
}

impl UnjoinedSpawn {
    /// Walks outward from the spawn call to the decisive enclosing node.
    fn handle_is_lost(&self, ctx: &FileCtx<'_>, body: &Expr, call: &Expr, anchor: usize) -> bool {
        let stack = node_stack_at(body, anchor);
        // Position of the spawn call itself in the stack (spans can tie —
        // match on identity).
        let Some(pos) = stack.iter().position(|n| std::ptr::eq(*n, call)) else {
            return false;
        };
        for node in stack[..pos].iter().rev() {
            match &node.kind {
                ExprKind::Let { name, .. } => {
                    return match name.as_deref() {
                        // Destructured or `_`-bound: no usable handle.
                        None | Some("_") => true,
                        Some(h) => {
                            !reaches_method(body, ctx.tokens, h, &["join"])
                                && !escapes(body, ctx.tokens, h, node)
                        }
                    };
                }
                // The handle flows into a macro, a call argument, a method
                // argument, or a composite (struct literal, array, index):
                // it escapes — the join may happen elsewhere.
                ExprKind::Macro { .. } | ExprKind::Call { .. } | ExprKind::MethodCall { .. } => {
                    return false;
                }
                ExprKind::Leaf if !node.children.is_empty() => return false,
                ExprKind::Block => {
                    // Statement position discards the handle; tail
                    // position returns it.
                    return followed_by_semicolon(ctx, call.span);
                }
                _ => continue,
            }
        }
        // The spawn is the whole body expression: returned.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/nn/src/distributed.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "unjoined-spawn")
            .collect()
    }

    #[test]
    fn statement_position_spawn_is_flagged() {
        let d = diags("fn f() { std::thread::spawn(work); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn underscore_binding_is_flagged() {
        assert_eq!(
            diags("fn f() { let _ = std::thread::spawn(work); }").len(),
            1
        );
    }

    #[test]
    fn named_binding_never_used_is_flagged() {
        assert_eq!(
            diags("fn f() { let h = std::thread::spawn(work); other(); }").len(),
            1
        );
    }

    #[test]
    fn dropped_binding_is_flagged() {
        assert_eq!(
            diags("fn f() { let h = std::thread::spawn(work); drop(h); }").len(),
            1
        );
    }

    #[test]
    fn joined_binding_is_quiet() {
        assert!(
            diags("fn f() { let h = std::thread::spawn(work); h.join().unwrap(); }").is_empty()
        );
    }

    #[test]
    fn handle_pushed_into_a_vec_is_quiet() {
        let src = "fn f(hs: &mut Vec<JoinHandle<()>>) { hs.push(std::thread::spawn(work)); }";
        assert!(diags(src).is_empty());
        let src =
            "fn f(hs: &mut Vec<JoinHandle<()>>) { let h = std::thread::spawn(work); hs.push(h); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn returned_handle_is_quiet() {
        assert!(diags("fn f() -> JoinHandle<()> { std::thread::spawn(work) }").is_empty());
        assert!(
            diags("fn f() -> JoinHandle<()> { let h = std::thread::spawn(work); h }").is_empty()
        );
    }

    #[test]
    fn scoped_spawn_is_exempt() {
        // `s.spawn(..)` is a method call on the scope — joins structurally.
        let src = "fn f() { std::thread::scope(|s| { s.spawn(work); }); }";
        assert!(diags(src).is_empty());
    }
}
