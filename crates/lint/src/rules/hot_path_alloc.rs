//! `hot-path-alloc` — heap allocation in the packed GEMM/conv/pool
//! kernels. PR 3 threaded a `Scratch` arena through every kernel so a
//! steady-state training step allocates nothing (pinned dynamically by the
//! counting allocator in `crates/nn/tests/zero_alloc.rs`); this rule is
//! the static complement that catches the allocation at review time
//! instead of at test time.
//!
//! Two passes:
//!
//! * **Per-file** over the kernel files themselves: `Vec::` constructors,
//!   `vec![...]` and `Box::new` are matched lexically (paths and macros),
//!   `.to_vec()` / `.collect()` / `.clone()` as AST method calls — which
//!   also resolves turbofish forms (`.collect::<Vec<f32>>()`) the old
//!   token-window matcher missed.
//! * **Workspace** over the call graph: every fn reachable from a kernel
//!   fn is scanned for the same allocation forms, so moving the
//!   allocation into a helper one file away no longer hides it. The
//!   diagnostic lands on the helper and names the kernel-to-helper call
//!   chain.

use super::{matches_texts, method_args, opaque_sig, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, WorkspaceCtx};
use crate::parser::{ExprKind, Span};

pub struct HotPathAlloc;

const SUGGESTION: &str = "take a `Scratch` arena buffer (`scratch.take_f32(len)`) or a caller-provided slice instead; see crates/tensor/src/scratch.rs. If the allocation is provably cold, add `// tdfm-lint: allow(hot-path-alloc, <reason>)`";

/// Allocation form starting at `sig[at]`, by the lexical patterns the
/// token-window engine used. `(what, anchor offset into the pattern)`.
fn lexical_alloc(ctx: &FileCtx<'_>, sig: &[usize], at: usize) -> Option<&'static str> {
    if matches_texts(ctx, sig, at, &["Vec", "::"]) {
        Some("`Vec::` constructor")
    } else if matches_texts(ctx, sig, at, &["vec", "!"]) {
        Some("`vec![...]`")
    } else if matches_texts(ctx, sig, at, &["Box", "::", "new"]) {
        Some("`Box::new`")
    } else if matches_texts(ctx, sig, at, &[".", "to_vec", "("]) {
        Some("`.to_vec()`")
    } else if matches_texts(ctx, sig, at, &[".", "collect", "("]) {
        Some("`.collect()`")
    } else if matches_texts(ctx, sig, at, &[".", "clone", "(", ")"]) {
        Some("`.clone()`")
    } else {
        None
    }
}

/// Every allocation site inside the token span `within`, as
/// `(anchor token, what)` — the full lexical sweep, used for fn bodies
/// reached through the call graph.
fn alloc_sites(ctx: &FileCtx<'_>, within: Span) -> Vec<(usize, &'static str)> {
    let sig: Vec<usize> = ctx
        .significant()
        .into_iter()
        .filter(|&i| within.contains(i))
        .collect();
    (0..sig.len())
        .filter_map(|at| lexical_alloc(ctx, &sig, at).map(|what| (sig[at], what)))
        .collect()
}

impl Rule for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn summary(&self) -> &'static str {
        "heap allocation inside (or reachable from) a zero-allocation kernel hot path"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/tensor/src/ops/gemm.rs",
                "crates/tensor/src/ops/conv.rs",
                "crates/tensor/src/ops/pool.rs",
                "crates/tensor/src/ops/matmul.rs",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut flag = |idx: usize, what: &str| {
            out.push(ctx.diag(
                idx,
                self.id(),
                format!("{what} allocates inside a zero-allocation kernel hot path"),
                SUGGESTION,
            ));
        };
        // Path and macro forms are lexical by nature.
        let sig = ctx.significant();
        for at in 0..sig.len() {
            if matches_texts(ctx, &sig, at, &["Vec", "::"]) {
                flag(sig[at], "`Vec::` constructor");
            } else if matches_texts(ctx, &sig, at, &["vec", "!"]) {
                flag(sig[at], "`vec![...]`");
            } else if matches_texts(ctx, &sig, at, &["Box", "::", "new"]) {
                flag(sig[at], "`Box::new`");
            }
        }
        // Method forms resolve through the AST (turbofish included).
        ctx.ast.walk_exprs(&mut |e| {
            if let ExprKind::MethodCall {
                method,
                method_tok,
                dot_tok,
            } = &e.kind
            {
                match method.as_str() {
                    "to_vec" => flag(*dot_tok, "`.to_vec()`"),
                    "collect" => flag(*dot_tok, "`.collect()`"),
                    "clone" => {
                        // Only the argument-less tensor-clone pattern;
                        // `clone_from(&x)` and custom `clone(arg)` differ.
                        if let Some((_, None)) = method_args(ctx, *method_tok) {
                            flag(*dot_tok, "`.clone()`");
                        }
                    }
                    _ => {}
                }
            }
        });
        // Method forms inside opaque regions (macro args) keep the old
        // lexical matching.
        let osig = opaque_sig(ctx, true);
        for at in 0..osig.len() {
            if let Some(what) = lexical_alloc(ctx, &osig, at) {
                if what.starts_with("`.") {
                    flag(osig[at], what);
                }
            }
        }
    }

    /// The interprocedural pass: BFS from every kernel fn, scan reached
    /// out-of-scope fns for allocations, report with the call chain.
    fn check_workspace(&self, ws: &WorkspaceCtx<'_>, scope: &Scope, out: &mut Vec<Diagnostic>) {
        let graph = &ws.graph;
        let roots: Vec<usize> = (0..graph.fns.len())
            .filter(|&f| scope.selects(ws.units[graph.fns[f].file].path) && !ws.fn_in_test_code(f))
            .collect();
        if roots.is_empty() {
            return;
        }
        let reach = graph.reachable(&roots);
        for &f in reach.keys() {
            let node = &graph.fns[f];
            if scope.selects(ws.units[node.file].path) {
                continue; // the per-file pass owns in-scope files
            }
            if ws.fn_in_test_code(f) {
                continue;
            }
            let Some(body) = node.body else { continue };
            let ctx = ws.ctx(node.file);
            let sites = alloc_sites(&ctx, body);
            if sites.is_empty() {
                continue;
            }
            let chain = graph.chain(&reach, f);
            for (idx, what) in sites {
                out.push(ctx.diag(
                    idx,
                    self.id(),
                    format!(
                        "{what} allocates in `{}`, which a zero-allocation kernel reaches via {chain}",
                        node.name
                    ),
                    SUGGESTION,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::{lint_files, lint_source};

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/ops/gemm.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "hot-path-alloc")
            .collect()
    }

    #[test]
    fn flags_every_allocation_form() {
        let src = r#"
fn kernel() {
    let a = Vec::with_capacity(8);
    let b = vec![0.0; 64];
    let c = xs.to_vec();
    let d: Vec<f32> = it.collect();
    let e = Box::new(0.0);
    let f = tensor.clone();
}
"#;
        let d = diags(src);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7, 8], "{d:?}");
    }

    #[test]
    fn turbofish_collect_is_still_a_collect() {
        let d = diags("fn k(it: I) { let v = it.collect::<Vec<f32>>(); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn clone_with_arguments_is_not_the_tensor_clone_pattern() {
        // `.clone_from(&x)` or a custom `clone(arg)` is not `.clone()`.
        assert!(diags("fn k() { a.clone_from(&b); }").is_empty());
    }

    #[test]
    fn method_allocation_inside_a_macro_is_still_seen() {
        let d = diags("fn k() { debug_assert!(xs.to_vec().len() > 0); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn tests_in_kernel_files_may_allocate() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let v = vec![0.0; 4]; } }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn other_ops_files_are_out_of_scope_by_default() {
        let all = lint_source(
            "crates/tensor/src/ops/reduce.rs",
            "fn k() { let v = vec![0.0; 4]; }",
            &Config::default(),
        );
        assert!(all.iter().all(|d| d.rule != "hot-path-alloc"));
    }

    #[test]
    fn reached_helper_diagnostic_names_the_chain() {
        let files = vec![
            (
                "crates/tensor/src/ops/conv.rs".to_string(),
                "pub fn conv2d() { im2col_pack(); }".to_string(),
            ),
            (
                "crates/tensor/src/pack.rs".to_string(),
                "pub fn im2col_pack() { let cols = vec![0.0f32; 1024]; }".to_string(),
            ),
        ];
        let d: Vec<Diagnostic> = lint_files(&files, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "hot-path-alloc")
            .collect();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/tensor/src/pack.rs");
        assert!(
            d[0].message.contains("conv2d -> im2col_pack"),
            "{:?}",
            d[0].message
        );
    }

    #[test]
    fn helpers_reached_only_from_tests_stay_quiet() {
        let files = vec![
            (
                "crates/tensor/src/ops/gemm.rs".to_string(),
                "#[cfg(test)]\nmod t { fn case() { alloc_helper(); } }".to_string(),
            ),
            (
                "crates/tensor/src/util.rs".to_string(),
                "pub fn alloc_helper() -> Vec<f32> { Vec::new() }".to_string(),
            ),
        ];
        let d = lint_files(&files, &Config::default());
        assert!(d.iter().all(|x| x.rule != "hot-path-alloc"), "{d:?}");
    }
}
