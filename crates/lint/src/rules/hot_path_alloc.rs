//! `hot-path-alloc` — heap allocation in the packed GEMM/conv/pool
//! kernels. PR 3 threaded a `Scratch` arena through every kernel so a
//! steady-state training step allocates nothing (pinned dynamically by the
//! counting allocator in `crates/nn/tests/zero_alloc.rs`); this rule is
//! the static complement that catches the allocation at review time
//! instead of at test time.

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct HotPathAlloc;

const SUGGESTION: &str = "take a `Scratch` arena buffer (`scratch.take_f32(len)`) or a caller-provided slice instead; see crates/tensor/src/scratch.rs. If the allocation is provably cold, add `// tdfm-lint: allow(hot-path-alloc, <reason>)`";

impl Rule for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/tensor/src/ops/gemm.rs",
                "crates/tensor/src/ops/conv.rs",
                "crates/tensor/src/ops/pool.rs",
                "crates/tensor/src/ops/matmul.rs",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            let what = if matches_texts(ctx, &sig, at, &["Vec", "::"]) {
                Some("`Vec::` constructor")
            } else if matches_texts(ctx, &sig, at, &["vec", "!"]) {
                Some("`vec![...]`")
            } else if matches_texts(ctx, &sig, at, &["Box", "::", "new"]) {
                Some("`Box::new`")
            } else if matches_texts(ctx, &sig, at, &[".", "to_vec", "("]) {
                Some("`.to_vec()`")
            } else if matches_texts(ctx, &sig, at, &[".", "collect", "("]) {
                Some("`.collect()`")
            } else if matches_texts(ctx, &sig, at, &[".", "clone", "(", ")"]) {
                Some("`.clone()`")
            } else {
                None
            };
            if let Some(what) = what {
                out.push(ctx.diag(
                    sig[at],
                    self.id(),
                    format!("{what} allocates inside a zero-allocation kernel hot path"),
                    SUGGESTION,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/ops/gemm.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "hot-path-alloc")
            .collect()
    }

    #[test]
    fn flags_every_allocation_form() {
        let src = r#"
fn kernel() {
    let a = Vec::with_capacity(8);
    let b = vec![0.0; 64];
    let c = xs.to_vec();
    let d: Vec<f32> = it.collect();
    let e = Box::new(0.0);
    let f = tensor.clone();
}
"#;
        let d = diags(src);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7, 8], "{d:?}");
    }

    #[test]
    fn clone_with_arguments_is_not_the_tensor_clone_pattern() {
        // `.clone_from(&x)` or a custom `clone(arg)` is not `.clone()`.
        assert!(diags("fn k() { a.clone_from(&b); }").is_empty());
    }

    #[test]
    fn tests_in_kernel_files_may_allocate() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let v = vec![0.0; 4]; } }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn other_ops_files_are_out_of_scope_by_default() {
        let all = lint_source(
            "crates/tensor/src/ops/reduce.rs",
            "fn k() { let v = vec![0.0; 4]; }",
            &Config::default(),
        );
        assert!(all.iter().all(|d| d.rule != "hot-path-alloc"));
    }
}
