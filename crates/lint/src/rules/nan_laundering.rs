//! `nan-laundering` — float `.max(` / `.min(` calls silently replace NaN
//! with the other operand (`f32::max(NaN, 0.0) == 0.0`), so a poisoned
//! activation exits a kernel looking healthy. PR 3 had to hunt this by
//! hand in ReLU and max-pool; the study's methodology (faults must reach
//! the reliability metrics) breaks every time one of these slips in.
//!
//! Heuristics, in order:
//! * `f32::max` / `f64::min` path mentions are always float — flagged
//!   (lexically: a fn-pointer mention launders just as well as a call).
//! * `.max(` / `.min(` method calls come from the AST (so a call split
//!   across lines or buried in a fold closure still resolves) and are
//!   flagged only when the call's source line mentions a float literal or
//!   a float type (`0.0`, `1e-3`, `f32`), so integer tile arithmetic
//!   (`NR.min(n - j0)`) stays quiet. Calls inside macro arguments are
//!   re-scanned lexically ([`super::opaque_sig`]).
//! * A line that also calls `is_nan` is exempt: the author has visibly
//!   routed NaN around the call (the shipped ReLU pattern).
//! * **Null encoding**: an `is_finite` branch whose non-finite arm emits
//!   the string literal `"null"` (within the next ~40 significant tokens)
//!   serialises NaN/±Inf as JSON null — the checkpoint-side twin of the
//!   kernel bug. A model-fault run whose loss went NaN must not produce a
//!   results file that merely looks sparse; each such site needs an
//!   explicit allow with its compatibility rationale.

use super::{matches_texts, opaque_sig, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::parser::ExprKind;

pub struct NanLaundering;

const MESSAGE: &str =
    "float min/max launders NaN (f32::max(NaN, 0.0) == 0.0), masking fault propagation";
const SUGGESTION: &str = "guard with is_nan() so NaN propagates (see ReLU in layers/activation.rs), or add `// tdfm-lint: allow(nan-laundering, <reason>)`";

const NULL_MESSAGE: &str =
    "non-finite float encoded as JSON null: a NaN metric leaves the writer looking healthy";
const NULL_SUGGESTION: &str = "propagate the non-finite value to the caller, or document the encoding with `// tdfm-lint: allow(nan-laundering, <reason>)`";

/// How far past `is_finite` the `"null"` literal may sit and still count
/// as the same encode branch. Wide enough to span the finite arm of the
/// historical `write_float` shape; narrow enough not to bridge functions.
const NULL_WINDOW: usize = 40;

impl Rule for NanLaundering {
    fn id(&self) -> &'static str {
        "nan-laundering"
    }

    fn summary(&self) -> &'static str {
        "float min/max or JSON-null encoding silently absorbs NaN, hiding fault propagation"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/tensor/src/ops/",
                "crates/nn/src/layers/",
                "crates/nn/src/loss/",
                "crates/json/src/",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        // Path forms and the null-encoding window are lexical by nature.
        let sig = ctx.significant();
        for at in 0..sig.len() {
            let path_form = ["f32", "f64"].iter().any(|ty| {
                matches_texts(ctx, &sig, at, &[ty, "::", "max"])
                    || matches_texts(ctx, &sig, at, &[ty, "::", "min"])
            });
            if path_form && !ctx.line_has_nan_guard(sig[at]) {
                out.push(ctx.diag(sig[at], self.id(), MESSAGE, SUGGESTION));
            }
            if matches_texts(ctx, &sig, at, &["is_finite"])
                && sig[at + 1..].iter().take(NULL_WINDOW).any(|&i| {
                    ctx.tokens[i].kind == TokKind::Str && ctx.tokens[i].text == "\"null\""
                })
            {
                out.push(ctx.diag(sig[at], self.id(), NULL_MESSAGE, NULL_SUGGESTION));
            }
        }
        // Method calls resolve through the AST.
        ctx.ast.walk_exprs(&mut |e| {
            if let ExprKind::MethodCall {
                method, dot_tok, ..
            } = &e.kind
            {
                if matches!(method.as_str(), "max" | "min")
                    && ctx.line_has_float_marker(*dot_tok)
                    && !ctx.line_has_nan_guard(*dot_tok)
                {
                    out.push(ctx.diag(*dot_tok, self.id(), MESSAGE, SUGGESTION));
                }
            }
        });
        // Method forms inside opaque regions keep the token-window match.
        let osig = opaque_sig(ctx, true);
        for at in 0..osig.len() {
            if (matches_texts(ctx, &osig, at, &[".", "max", "("])
                || matches_texts(ctx, &osig, at, &[".", "min", "("]))
                && ctx.line_has_float_marker(osig[at])
                && !ctx.line_has_nan_guard(osig[at])
            {
                out.push(ctx.diag(osig[at], self.id(), MESSAGE, SUGGESTION));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/ops/fake.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "nan-laundering")
            .collect()
    }

    #[test]
    fn flags_float_max_by_literal_and_by_type() {
        assert_eq!(diags("fn f(x: f32) -> f32 { x.max(0.0) }").len(), 1);
        assert_eq!(
            diags("fn f() { let m = row.fold(f32::NEG_INFINITY, |m, x| m.max(x)); }").len(),
            1
        );
        assert_eq!(diags("fn f(x: f32) -> f32 { f32::max(x, 0.0) }").len(), 1);
    }

    #[test]
    fn multi_line_method_chains_are_resolved() {
        // The old token matcher needed `.max(` on one line; the AST sees
        // the chain however it wraps. The float marker is on the dot line.
        let src = "fn f(x: f32) -> f32 {\n    x\n        .max(0.0f32)\n}";
        assert_eq!(diags(src).len(), 1, "{:?}", diags(src));
    }

    #[test]
    fn max_inside_a_macro_argument_is_still_seen() {
        let d = diags("fn f(x: f32) { assert!(x.max(0.0) >= 0.0); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn integer_min_max_is_quiet() {
        assert!(diags("fn f(n: usize) { let jw = NR.min(n - j0); }").is_empty());
        assert!(diags("fn f(n: usize) { let d = batches.max(1); }").is_empty());
    }

    #[test]
    fn is_nan_guard_on_the_line_exempts() {
        assert!(
            diags("fn f(x: f32) -> f32 { if x.is_nan() { x } else { x.max(0.0) } }").is_empty()
        );
    }

    #[test]
    fn null_encoding_after_is_finite_is_flagged() {
        let src = r#"
fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}
"#;
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("JSON null"), "{:?}", d[0].message);
    }

    #[test]
    fn is_finite_without_nearby_null_is_quiet() {
        assert!(diags("fn f(x: f32) -> bool { x.is_finite() }").is_empty());
    }

    #[test]
    fn null_beyond_the_window_is_quiet() {
        let filler = "let q = q + 1;\n".repeat(15);
        let src = format!(
            "fn f(v: f64, out: &mut String) {{\n    let ok = v.is_finite();\n    {filler}\n    out.push_str(\"null\");\n}}"
        );
        assert!(diags(&src).is_empty());
    }

    #[test]
    fn comments_and_strings_never_trigger() {
        assert!(diags("// f32::max(NaN, 0.0) returns 0.0\nfn f() {}").is_empty());
        assert!(diags("fn f() -> &'static str { \"x.max(0.0) f32\" }").is_empty());
    }

    #[test]
    fn out_of_scope_paths_are_quiet() {
        let all = lint_source(
            "crates/core/src/stats.rs",
            "fn f(x: f32) -> f32 { x.max(0.0) }",
            &Config::default(),
        );
        assert!(all.iter().all(|d| d.rule != "nan-laundering"));
    }
}
