//! `nan-laundering` — float `.max(` / `.min(` calls silently replace NaN
//! with the other operand (`f32::max(NaN, 0.0) == 0.0`), so a poisoned
//! activation exits a kernel looking healthy. PR 3 had to hunt this by
//! hand in ReLU and max-pool; the study's methodology (faults must reach
//! the reliability metrics) breaks every time one of these slips in.
//!
//! Heuristics, in order:
//! * `f32::max` / `f64::min` path calls are always float — flagged.
//! * `.max(` / `.min(` is flagged only when its source line mentions a
//!   float literal or a float type (`0.0`, `1e-3`, `f32`), so integer tile
//!   arithmetic (`NR.min(n - j0)`) stays quiet.
//! * A line that also calls `is_nan` is exempt: the author has visibly
//!   routed NaN around the call (the shipped ReLU pattern).

use super::{matches_texts, scope, Rule};
use crate::config::Scope;
use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub struct NanLaundering;

const MESSAGE: &str =
    "float min/max launders NaN (f32::max(NaN, 0.0) == 0.0), masking fault propagation";
const SUGGESTION: &str = "guard with is_nan() so NaN propagates (see ReLU in layers/activation.rs), or add `// tdfm-lint: allow(nan-laundering, <reason>)`";

impl Rule for NanLaundering {
    fn id(&self) -> &'static str {
        "nan-laundering"
    }

    fn default_scope(&self) -> Scope {
        scope(
            &[
                "crates/tensor/src/ops/",
                "crates/nn/src/layers/",
                "crates/nn/src/loss/",
            ],
            &[],
        )
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sig = ctx.significant();
        for at in 0..sig.len() {
            let flagged = if matches_texts(ctx, &sig, at, &["f32", "::", "max"])
                || matches_texts(ctx, &sig, at, &["f32", "::", "min"])
                || matches_texts(ctx, &sig, at, &["f64", "::", "max"])
                || matches_texts(ctx, &sig, at, &["f64", "::", "min"])
            {
                true
            } else if matches_texts(ctx, &sig, at, &[".", "max", "("])
                || matches_texts(ctx, &sig, at, &[".", "min", "("])
            {
                ctx.line_has_float_marker(sig[at])
            } else {
                false
            };
            if flagged && !ctx.line_has_nan_guard(sig[at]) {
                out.push(ctx.diag(sig[at], self.id(), MESSAGE, SUGGESTION));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::lint_source;

    fn diags(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/tensor/src/ops/fake.rs", src, &Config::default())
            .into_iter()
            .filter(|d| d.rule == "nan-laundering")
            .collect()
    }

    #[test]
    fn flags_float_max_by_literal_and_by_type() {
        assert_eq!(diags("fn f(x: f32) -> f32 { x.max(0.0) }").len(), 1);
        assert_eq!(
            diags("fn f() { let m = row.fold(f32::NEG_INFINITY, |m, x| m.max(x)); }").len(),
            1
        );
        assert_eq!(diags("fn f(x: f32) -> f32 { f32::max(x, 0.0) }").len(), 1);
    }

    #[test]
    fn integer_min_max_is_quiet() {
        assert!(diags("fn f(n: usize) { let jw = NR.min(n - j0); }").is_empty());
        assert!(diags("fn f(n: usize) { let d = batches.max(1); }").is_empty());
    }

    #[test]
    fn is_nan_guard_on_the_line_exempts() {
        assert!(
            diags("fn f(x: f32) -> f32 { if x.is_nan() { x } else { x.max(0.0) } }").is_empty()
        );
    }

    #[test]
    fn comments_and_strings_never_trigger() {
        assert!(diags("// f32::max(NaN, 0.0) returns 0.0\nfn f() {}").is_empty());
        assert!(diags("fn f() -> &'static str { \"x.max(0.0) f32\" }").is_empty());
    }

    #[test]
    fn out_of_scope_paths_are_quiet() {
        let all = lint_source(
            "crates/core/src/stats.rs",
            "fn f(x: f32) -> f32 { x.max(0.0) }",
            &Config::default(),
        );
        assert!(all.iter().all(|d| d.rule != "nan-laundering"));
    }
}
