#![forbid(unsafe_code)]
//! # tdfm-lint
//!
//! A zero-dependency static analyzer that mechanically enforces the
//! kernel/determinism invariants earlier PRs fixed by hand:
//!
//! | rule id | bug class it pins down |
//! |---|---|
//! | `nan-laundering` | `f32::max(NaN, 0.0) == 0.0` hiding poisoned activations (PR 3's ReLU/max-pool fix) |
//! | `sparsity-skip` | the `a == 0.0` GEMM skip that turned `0 * NaN` into `0` (PR 3) |
//! | `hot-path-alloc` | heap allocation in — or now *reachable from* — the packed kernels (PR 3's `Scratch` arena) |
//! | `lib-unwrap` | panics that don't name their invariant (PR 1's non-finite-loss policy) |
//! | `nondeterministic-time` | wall-clock reads leaking into golden outputs (PR 1's `normalize_timings`) |
//! | `env-read` | scattered env reads drifting from the cached read-once sites (PR 3's `TDFM_THREADS` fix) |
//! | `unsafe-needs-safety-comment` | `unsafe` without a `// SAFETY:` justification |
//! | `raw-eprintln` | raw stderr writes bypassing the structured sink (PR 4's trace capture) |
//! | `partial-cmp-sort` | NaN-incoherent sort comparators (PR 6's suspect-ranking fix) |
//! | `hashmap-iter-order` | hash iteration order leaking into emitted bytes |
//! | `unjoined-spawn` | detached threads racing process exit (PR 6's shard join loop) |
//! | `lock-held-across-call` | workspace calls made under a held mutex guard |
//! | `unordered-float-reduce` | non-associative float sums in hash order |
//! | `bad-suppression` | malformed/reasonless `// tdfm-lint: allow(...)` comments (not suppressible) |
//!
//! ## Architecture
//!
//! Three layers, all zero-dependency:
//!
//! 1. **Lexer** ([`lexer`]) — lossless tokens with byte offsets and
//!    1-based (line, character-column) positions; comments and string
//!    literals can never trigger (or hide) a diagnostic.
//! 2. **Parser** ([`parser`]) — a recursive-descent pass over the token
//!    stream producing a lightweight lossless AST (fn items with bodies,
//!    statements, calls/method calls, loops, closures; macros stay
//!    opaque). Every node's span re-concatenates byte-identically to the
//!    input — property-tested over the whole workspace in
//!    `tests/parser_roundtrip.rs`.
//! 3. **Semantics** — a workspace [`callgraph`] (name-based with impl
//!    qualifiers and a std-prelude denylist) and intra-procedural
//!    [`dataflow`] helpers ("does this binding reach `.join()`? does it
//!    escape?"). Rules run per file (AST visitors) and once per
//!    workspace ([`rules::Rule::check_workspace`]) for interprocedural
//!    findings like an allocation two calls below a kernel.
//!
//! Path scoping comes from the committed `lint.toml` ([`config`]);
//! one-off sites use inline suppressions with a mandatory reason:
//!
//! ```text
//! let m = row.fold(f32::NEG_INFINITY, |m, &x| m.max(x)); // tdfm-lint: allow(nan-laundering, max-shift only; NaN still propagates through exp below)
//! ```
//!
//! Run it as `tdfm lint [--json] [--sarif <path>]`; it exits non-zero on
//! any finding.

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;

pub use config::{Config, Scope};
pub use diag::{report_json, report_text, Diagnostic};
pub use engine::{lint_files, lint_source, lint_workspace, LintReport};
pub use sarif::report_sarif;

use std::path::Path;

/// Lints the workspace at `root`, loading `lint.toml` from the root if
/// present (a missing file means built-in default scopes). This is the
/// entry point `tdfm lint` calls.
pub fn run(root: &Path, config_path: Option<&Path>) -> Result<LintReport, String> {
    let default_path = root.join("lint.toml");
    let config = match config_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Config::parse(&text)?
        }
        None if default_path.is_file() => {
            let text = std::fs::read_to_string(&default_path)
                .map_err(|e| format!("cannot read {}: {e}", default_path.display()))?;
            Config::parse(&text)?
        }
        None => Config::default(),
    };
    for rule_id in config.rules.keys() {
        if !rules::is_known_rule(rule_id) {
            return Err(format!(
                "lint.toml configures unknown rule `{rule_id}` (known: {})",
                rules::all_rules()
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    lint_workspace(root, &config)
}
