#![forbid(unsafe_code)]
//! # tdfm-lint
//!
//! A zero-dependency static analyzer that mechanically enforces the
//! kernel/determinism invariants PRs 1–3 fixed by hand:
//!
//! | rule id | bug class it pins down |
//! |---|---|
//! | `nan-laundering` | `f32::max(NaN, 0.0) == 0.0` hiding poisoned activations (PR 3's ReLU/max-pool fix) |
//! | `sparsity-skip` | the `a == 0.0` GEMM skip that turned `0 * NaN` into `0` (PR 3) |
//! | `hot-path-alloc` | heap allocation creeping back into the packed kernels (PR 3's `Scratch` arena) |
//! | `lib-unwrap` | panics that don't name their invariant (PR 1's non-finite-loss policy) |
//! | `nondeterministic-time` | wall-clock reads leaking into golden outputs (PR 1's `normalize_timings`) |
//! | `env-read` | scattered env reads drifting from the cached read-once sites (PR 3's `TDFM_THREADS` fix) |
//! | `unsafe-needs-safety-comment` | `unsafe` without a `// SAFETY:` justification |
//! | `bad-suppression` | malformed/reasonless `// tdfm-lint: allow(...)` comments (not suppressible) |
//!
//! Rules match a real token stream from a small lossless Rust lexer
//! ([`lexer`]), so comments and string literals can never trigger (or
//! hide) a diagnostic. Path scoping comes from the committed `lint.toml`
//! ([`config`]); one-off sites use inline suppressions with a mandatory
//! reason:
//!
//! ```text
//! let m = row.fold(f32::NEG_INFINITY, |m, &x| m.max(x)); // tdfm-lint: allow(nan-laundering, max-shift only; NaN still propagates through exp below)
//! ```
//!
//! Run it as `tdfm lint [--json]`; it exits non-zero on any finding.

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::{Config, Scope};
pub use diag::{report_json, report_text, Diagnostic};
pub use engine::{lint_source, lint_workspace, LintReport};

use std::path::Path;

/// Lints the workspace at `root`, loading `lint.toml` from the root if
/// present (a missing file means built-in default scopes). This is the
/// entry point `tdfm lint` calls.
pub fn run(root: &Path, config_path: Option<&Path>) -> Result<LintReport, String> {
    let default_path = root.join("lint.toml");
    let config = match config_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Config::parse(&text)?
        }
        None if default_path.is_file() => {
            let text = std::fs::read_to_string(&default_path)
                .map_err(|e| format!("cannot read {}: {e}", default_path.display()))?;
            Config::parse(&text)?
        }
        None => Config::default(),
    };
    for rule_id in config.rules.keys() {
        if !rules::is_known_rule(rule_id) {
            return Err(format!(
                "lint.toml configures unknown rule `{rule_id}` (known: {})",
                rules::all_rules()
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    lint_workspace(root, &config)
}
