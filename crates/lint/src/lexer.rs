//! A small, lossless Rust lexer.
//!
//! The rules in this crate match *token* patterns, never raw text, so a
//! `// f32::max(NaN, 0.0) returns 0.0` comment or a `".max("` string
//! literal can never trigger a diagnostic. The lexer therefore has to get
//! exactly one thing right: classifying comments and every string-ish
//! literal form (plain/raw/byte/C strings, char and byte literals,
//! lifetimes) without ever losing a byte. It is *lossless*: concatenating
//! `token.text` over the whole stream reproduces the input byte for byte,
//! which the round-trip tests pin down.
//!
//! It is intentionally not a validator — malformed input never panics, it
//! just degrades to [`TokKind::Unknown`] single-byte tokens.

/// What a token is, at the granularity the lint rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting handled; unterminated comments run to EOF.
    BlockComment,
    /// `"..."`, `b"..."`, `c"..."` — escaped, quoted forms.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#`, `cr"..."` — raw forms.
    RawStr,
    /// `'a'`, `'\''`, `'\u{1F600}'`.
    Char,
    /// `b'a'`, `b'\xFF'`.
    Byte,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Identifiers and keywords, including raw identifiers (`r#type`).
    Ident,
    /// Integer or float literals, suffix included (`1_000u64`, `0.5f32`).
    Number,
    /// Operators and delimiters; multi-char operators are single tokens.
    Punct,
    /// Any byte the lexer does not recognise (kept for losslessness).
    Unknown,
}

/// One lexed token: classification plus its exact source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokKind,
    /// The exact source text (losslessness invariant: all `text`s concatenate
    /// back to the input).
    pub text: &'a str,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based **character** column of the first byte within its line
    /// (multi-byte UTF-8 sequences count once, so a `§` in a doc comment
    /// does not shift every downstream column).
    pub col: u32,
}

impl Token<'_> {
    /// Byte offset one past the last byte.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// True for whitespace and comments — tokens the rule matchers skip.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }

    /// True if this token is a float literal (`0.5`, `1e-3`, `2f32`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Number {
            return false;
        }
        let t = self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.ends_with("f32")
            || t.ends_with("f64")
            || t.bytes().any(|b| b == b'e' || b == b'E')
    }

    /// True if this token is a float literal with numeric value zero
    /// (`0.0`, `0.00`, `0f32`, `0.0f32`). Used by the sparsity-skip rule.
    pub fn is_float_zero(&self) -> bool {
        if self.kind != TokKind::Number {
            return false;
        }
        let t = self
            .text
            .trim_end_matches("f32")
            .trim_end_matches("f64")
            .trim_end_matches('_');
        let is_floatish =
            self.text.contains('.') || self.text.ends_with("f32") || self.text.ends_with("f64");
        is_floatish && t.bytes().all(|b| matches!(b, b'0' | b'.' | b'_')) && !t.is_empty()
    }
}

/// Multi-character operators, longest first so maximal munch works by table
/// order. Everything else falls through to a single-byte `Punct`.
const OPERATORS: &[&str] = &[
    "...", "..=", "<<=", ">>=", "..", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                start,
                line,
                col,
            });
            // Columns/lines advance over the bytes just consumed. UTF-8
            // continuation bytes (0b10xxxxxx) do not advance the column:
            // diagnostic columns count characters, not bytes.
            for &b in &self.bytes[start..self.pos] {
                if b == b'\n' {
                    self.line += 1;
                    self.col = 1;
                } else if b & 0xC0 != 0x80 {
                    self.col += 1;
                }
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self) -> TokKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.pos += 1;
                }
                TokKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                TokKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.quoted_string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' | b'c' => {
                if let Some(kind) = self.try_literal_prefix() {
                    kind
                } else {
                    self.ident()
                }
            }
            b'0'..=b'9' => self.number(),
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
            _ if b < 0x80 => self.punct(),
            _ => {
                // Skip one full UTF-8 scalar so `text` stays valid UTF-8.
                let ch_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, |c| c.len_utf8());
                self.pos += ch_len;
                TokKind::Unknown
            }
        }
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break, // unterminated: comment runs to EOF
            }
        }
        TokKind::BlockComment
    }

    /// Consumes a `"..."` body (opening quote at `self.pos`), honouring
    /// backslash escapes. Unterminated strings run to EOF.
    fn quoted_string(&mut self) -> TokKind {
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => self.pos += 2.min(self.bytes.len() - self.pos),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
                None => break,
            }
        }
        TokKind::Str
    }

    /// Handles the `r` / `b` / `c` / `br` / `cr` literal prefixes; returns
    /// `None` if what follows is an ordinary identifier.
    fn try_literal_prefix(&mut self) -> Option<TokKind> {
        let b0 = self.bytes[self.pos];
        // Two-byte prefixes first: br" / cr" / br#" / cr#".
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == Some(b'r') {
            if let Some(len) = self.raw_string_len(2) {
                self.pos += len;
                return Some(TokKind::RawStr);
            }
        }
        if b0 == b'r' {
            if let Some(len) = self.raw_string_len(1) {
                self.pos += len;
                return Some(TokKind::RawStr);
            }
            // `r#ident` raw identifier.
            if self.peek(1) == Some(b'#')
                && self
                    .peek(2)
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
            {
                self.pos += 2;
                return Some(self.ident());
            }
        }
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == Some(b'"') {
            self.pos += 1;
            return Some(self.quoted_string());
        }
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.pos += 1;
            self.char_body();
            return Some(TokKind::Byte);
        }
        None
    }

    /// If a raw string starts `after` bytes ahead (at the `#`* or `"`),
    /// returns the total length of the literal from `self.pos`.
    fn raw_string_len(&self, after: usize) -> Option<usize> {
        let mut i = self.pos + after;
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'"') {
            return None;
        }
        i += 1;
        // Scan for `"` followed by `hashes` hash marks.
        while i < self.bytes.len() {
            if self.bytes[i] == b'"' {
                let close = &self.bytes[i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                    return Some(i + 1 + hashes - self.pos);
                }
            }
            i += 1;
        }
        Some(self.bytes.len() - self.pos) // unterminated: runs to EOF
    }

    /// Consumes a char-literal body starting at the opening `'`.
    fn char_body(&mut self) {
        self.pos += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            self.pos += 2.min(self.bytes.len() - self.pos);
        } else if self.peek(0).is_some() {
            let ch_len = self.src[self.pos..]
                .chars()
                .next()
                .map_or(1, |c| c.len_utf8());
            self.pos += ch_len;
        }
        // `\u{...}` escapes and stray content: scan to the closing quote on
        // this line.
        while let Some(c) = self.peek(0) {
            if c == b'\'' {
                self.pos += 1;
                return;
            }
            if c == b'\n' {
                return; // malformed; don't swallow the rest of the file
            }
            self.pos += 1;
        }
    }

    fn char_or_lifetime(&mut self) -> TokKind {
        // `'a'` is a char; `'a` (ident not followed by `'`) is a lifetime.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                // Scan the identifier run; a closing quote right after makes
                // it a char literal ('a'), otherwise a lifetime ('static).
                let mut i = self.pos + 2;
                while self
                    .bytes
                    .get(i)
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    i += 1;
                }
                self.bytes.get(i) != Some(&b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            TokKind::Lifetime
        } else {
            self.char_body();
            TokKind::Char
        }
    }

    fn ident(&mut self) -> TokKind {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        let radix_prefix = matches!(
            (self.peek(0), self.peek(1)),
            (Some(b'0'), Some(b'x' | b'o' | b'b'))
        );
        if radix_prefix {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            return TokKind::Number;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.pos += 1;
        }
        // Fraction only when a digit follows the dot — `0..n` stays a range.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.pos += 1;
            }
        }
        // Exponent: `1e3`, `2.5E-2`.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            if sign.is_some_and(|c| c.is_ascii_digit())
                || (matches!(sign, Some(b'+' | b'-')) && digit.is_some_and(|c| c.is_ascii_digit()))
            {
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`u8`, `f32`, `usize`).
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        TokKind::Number
    }

    fn punct(&mut self) -> TokKind {
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.pos += op.len();
                return TokKind::Punct;
            }
        }
        self.pos += 1;
        TokKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "lex must be lossless");
    }

    #[test]
    fn classifies_basic_tokens() {
        let toks = kinds("let x = a.max(0.0); // hi");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "a"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "max"),
                (TokKind::Punct, "("),
                (TokKind::Number, "0.0"),
                (TokKind::Punct, ")"),
                (TokKind::Punct, ";"),
                (TokKind::LineComment, "// hi"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still one */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* one /* two */ still one */"),
                (TokKind::Ident, "b"),
            ]
        );
        roundtrip("/* /* */ unterminated");
    }

    #[test]
    fn raw_strings_hide_comment_and_quote_syntax() {
        let src = r####"let s = r#"contains " and // and /* inside"#; x"####;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokKind::RawStr);
        assert_eq!(toks[3].1, r##"r#"contains " and // and /* inside"#"##);
        assert_eq!(toks.last(), Some(&(TokKind::Ident, "x")));
        roundtrip(src);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let toks = kinds(r#"('\'', '"', 'x', &'static str, 'label)"#);
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(chars.len(), 3, "{toks:?}");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        assert_eq!(
            lifetimes,
            vec![
                &(TokKind::Lifetime, "'static"),
                &(TokKind::Lifetime, "'label")
            ]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"(b"bytes", br#"raw "bytes""#, b'x', rb)"###);
        assert_eq!(toks[1], (TokKind::Str, "b\"bytes\""));
        assert_eq!(toks[3], (TokKind::RawStr, r##"br#"raw "bytes""#"##));
        assert_eq!(toks[5], (TokKind::Byte, "b'x'"));
        // `rb` is not a literal prefix in Rust — plain identifier.
        assert_eq!(toks[7], (TokKind::Ident, "rb"));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = kinds("0..10, 1.5, 1e-3, 0x1e, 2f32, 1_000");
        let floats: Vec<_> = lex("0..10, 1.5, 1e-3, 0x1e, 2f32, 1_000")
            .into_iter()
            .filter(Token::is_float_literal)
            .map(|t| t.text.to_string())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e-3", "2f32"]);
        // `0..10` lexes as number, range-op, number.
        assert_eq!(toks[0], (TokKind::Number, "0"));
        assert_eq!(toks[1], (TokKind::Punct, ".."));
        assert_eq!(toks[2], (TokKind::Number, "10"));
    }

    #[test]
    fn float_zero_detection() {
        for (text, want) in [
            ("0.0", true),
            ("0.00", true),
            ("0f32", true),
            ("0.0f32", true),
            ("0", false),
            ("0.1", false),
            ("10.0", false),
            ("0x0", false),
        ] {
            let toks = lex(text);
            assert_eq!(toks.len(), 1, "{text}");
            assert_eq!(toks[0].is_float_zero(), want, "{text}");
        }
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#type r#match normal");
        assert_eq!(toks[0], (TokKind::Ident, "r#type"));
        assert_eq!(toks[1], (TokKind::Ident, "r#match"));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd");
        let cd = toks.last().expect("stream is non-empty");
        assert_eq!((cd.line, cd.col), (2, 3));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // `§` is 2 bytes, `日本語` is 9 bytes / 3 chars: tokens after them
        // must sit at character columns, not byte columns.
        let toks = lex("// §2.8\nlet x = \"日本語\"; y");
        let x = toks.iter().find(|t| t.text == "x").expect("x");
        assert_eq!((x.line, x.col), (2, 5));
        let y = toks.iter().find(|t| t.text == "y").expect("y");
        assert_eq!((y.line, y.col), (2, 16), "cols after the 3-char string");
    }
}
