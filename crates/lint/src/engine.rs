//! Walks the workspace, prepares per-file analysis units (token stream,
//! AST, test regions, suppressions), builds the workspace call graph,
//! runs every applicable rule — per-file passes on scope-selected files
//! plus one workspace pass per rule — and applies the inline-suppression
//! and test-code filters to every diagnostic, wherever it was emitted.

use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{lex, TokKind, Token};
use crate::parser::{parse_file, File};
use crate::rules::all_rules;

/// Everything a rule gets to look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub tokens: &'a [Token<'a>],
    /// The parsed (lossless) syntax tree over `tokens`.
    pub ast: &'a File,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_regions: &'a [(usize, usize)],
    /// The whole file is test/bench/example code.
    is_test_file: bool,
}

impl FileCtx<'_> {
    /// Is the byte at `offset` inside test code (a test file, or a
    /// `#[cfg(test)]` item of a library file)?
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Indices (into `self.tokens`) of non-trivia tokens — the stream the
    /// pattern matchers walk.
    pub fn significant(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_trivia())
            .collect()
    }

    /// True if the line holding `tokens[idx]` mentions a float type or a
    /// float literal — the "is this a float expression?" heuristic used by
    /// nan-laundering.
    pub fn line_has_float_marker(&self, idx: usize) -> bool {
        let line = self.tokens[idx].line;
        self.tokens
            .iter()
            .filter(|t| t.line == line && !t.is_trivia())
            .any(|t| {
                t.is_float_literal()
                    || (t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
            })
    }

    /// True if the line holding `tokens[idx]` calls `is_nan` — an explicit
    /// NaN guard on the same line exempts a `.max(`/`.min(` from
    /// nan-laundering (the author has visibly handled propagation).
    pub fn line_has_nan_guard(&self, idx: usize) -> bool {
        let line = self.tokens[idx].line;
        self.tokens
            .iter()
            .filter(|t| t.line == line)
            .any(|t| t.kind == TokKind::Ident && t.text == "is_nan")
    }

    /// Builds a diagnostic anchored at `tokens[idx]`.
    pub fn diag(
        &self,
        idx: usize,
        rule: &'static str,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diagnostic {
        let t = &self.tokens[idx];
        Diagnostic {
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }
}

/// One fully-analysed file: source, tokens, AST, and the engine-level
/// metadata (test regions, suppressions) the filters need.
pub struct FileUnit<'a> {
    pub path: &'a str,
    pub tokens: Vec<Token<'a>>,
    pub ast: File,
    test_regions: Vec<(usize, usize)>,
    is_test_file: bool,
    suppressions: Vec<Suppression>,
    bad: Vec<Diagnostic>,
}

impl<'a> FileUnit<'a> {
    fn build(path: &'a str, src: &'a str) -> FileUnit<'a> {
        let tokens = lex(src);
        let ast = parse_file(&tokens);
        let regions = test_regions(&tokens);
        let mut bad = Vec::new();
        let suppressions = parse_suppressions(&tokens, path, &mut bad);
        FileUnit {
            path,
            tokens,
            ast,
            test_regions: regions,
            is_test_file: is_test_path(path),
            suppressions,
            bad,
        }
    }

    /// The borrowed view rules receive.
    pub fn ctx(&'a self) -> FileCtx<'a> {
        FileCtx {
            path: self.path,
            tokens: &self.tokens,
            ast: &self.ast,
            test_regions: &self.test_regions,
            is_test_file: self.is_test_file,
        }
    }

    /// Is the byte at `offset` inside test code?
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }
}

/// The whole-workspace view for interprocedural rules: every unit plus
/// the call graph over them. Unit indices and [`CallGraph`] file indices
/// coincide.
pub struct WorkspaceCtx<'a> {
    pub units: &'a [FileUnit<'a>],
    pub graph: CallGraph,
}

impl<'a> WorkspaceCtx<'a> {
    /// The [`FileCtx`] view of unit `i`.
    pub fn ctx(&'a self, i: usize) -> FileCtx<'a> {
        self.units[i].ctx()
    }

    /// Is the fn node `f` (by callgraph index) defined in test code?
    pub fn fn_in_test_code(&self, f: usize) -> bool {
        let node = &self.graph.fns[f];
        let unit = &self.units[node.file];
        unit.in_test_code(unit.tokens[node.name_tok].start)
    }
}

/// One parsed `// tdfm-lint: allow(rule, reason)` comment.
#[derive(Debug)]
struct Suppression {
    rule: String,
    reason: String,
    /// The source line the suppression applies to: its own line for a
    /// trailing comment, the next line for a standalone comment line.
    target_line: u32,
}

const SUPPRESSION_PREFIX: &str = "tdfm-lint:";

/// Extracts suppressions from the token stream. A comment whose only line
/// content is the suppression applies to the next line; a trailing comment
/// applies to its own line.
fn parse_suppressions(
    tokens: &[Token<'_>],
    path: &str,
    bad: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix(SUPPRESSION_PREFIX) else {
            continue;
        };
        let standalone = tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .all(|p| p.kind == TokKind::Whitespace);
        let target_line = if standalone { t.line + 1 } else { t.line };
        let mut push_bad = |message: String| {
            bad.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "bad-suppression",
                message,
                suggestion:
                    "write `// tdfm-lint: allow(<rule-id>, <reason>)` — the reason is mandatory"
                        .to_string(),
            });
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|a| a.strip_suffix(')'))
        else {
            push_bad(format!("malformed suppression `{body}`"));
            continue;
        };
        let (rule, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        if !crate::rules::is_known_rule(rule) {
            push_bad(format!("suppression names unknown rule `{rule}`"));
            continue;
        }
        if reason.is_empty() {
            push_bad(format!("suppression of `{rule}` is missing its reason"));
            continue;
        }
        out.push(Suppression {
            rule: rule.to_string(),
            reason: reason.to_string(),
            target_line,
        });
    }
    out
}

/// Finds byte ranges of `#[cfg(test)]` items: the attribute plus the
/// braced item that follows it (further attributes in between are fine).
fn test_regions(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let mut out = Vec::new();
    let mut s = 0;
    while s < sig.len() {
        if !is_cfg_test_attr(tokens, &sig, s) {
            s += 1;
            continue;
        }
        let attr_start = tokens[sig[s]].start;
        // Skip to the end of this attribute (`]`), then past any further
        // attributes, then brace-match the item body.
        let mut j = match skip_attr(tokens, &sig, s) {
            Some(j) => j,
            None => break,
        };
        while j < sig.len() && tokens[sig[j]].text == "#" {
            j = match skip_attr(tokens, &sig, j) {
                Some(n) => n,
                None => break,
            };
        }
        // Find the item's opening brace, stopping at `;` (e.g. `mod x;`).
        let mut open = None;
        while j < sig.len() {
            match tokens[sig[j]].text {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            s += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        let mut end = tokens[sig[open]].end();
        while k < sig.len() {
            match tokens[sig[k]].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = tokens[sig[k]].end();
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if depth > 0 {
            end = tokens.last().map_or(end, |t| t.end()); // unbalanced: to EOF
        }
        out.push((attr_start, end));
        s = k.max(s + 1);
    }
    out
}

/// Is `sig[s]` the start of exactly `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Token<'_>], sig: &[usize], s: usize) -> bool {
    let texts: Vec<&str> = sig[s..].iter().take(6).map(|&i| tokens[i].text).collect();
    texts == ["#", "[", "cfg", "(", "test", ")"]
}

/// Given `sig[s]` == `#`, returns the significant index one past the
/// closing `]` of the attribute.
fn skip_attr(tokens: &[Token<'_>], sig: &[usize], s: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, &i) in sig[s..].iter().enumerate() {
        match tokens[i].text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(s + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whole-file test/bench/example classification by path.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
        || path.ends_with("_test.rs")
}

/// The result of a lint run.
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_checked: usize,
}

/// Lints a set of files as one workspace: per-file rule passes run on
/// scope-selected files, each rule's workspace pass runs once over the
/// call graph, and the suppression/test-code filters apply to every
/// diagnostic based on the file it landed in. `files` are
/// `(workspace-relative path, source)` pairs.
pub fn lint_files(files: &[(String, String)], config: &Config) -> Vec<Diagnostic> {
    let units: Vec<FileUnit<'_>> = files
        .iter()
        .map(|(path, src)| FileUnit::build(path, src))
        .collect();
    let pairs: Vec<(&[Token<'_>], &File)> = units
        .iter()
        .map(|u| (u.tokens.as_slice(), &u.ast))
        .collect();
    let ws = WorkspaceCtx {
        units: &units,
        graph: CallGraph::build(&pairs),
    };

    let mut raw: Vec<(bool, Diagnostic)> = Vec::new(); // (applies_in_tests, diag)
    for rule in all_rules() {
        let scope = config
            .rules
            .get(rule.id())
            .cloned()
            .unwrap_or_else(|| rule.default_scope());
        let mut found = Vec::new();
        for unit in &units {
            if scope.selects(unit.path) {
                rule.check(&unit.ctx(), &mut found);
            }
        }
        rule.check_workspace(&ws, &scope, &mut found);
        raw.extend(found.into_iter().map(|d| (rule.applies_in_tests(), d)));
    }

    let unit_of = |file: &str| units.iter().find(|u| u.path == file);
    let mut diags: Vec<Diagnostic> = raw
        .into_iter()
        .filter_map(|(in_tests, d)| {
            let Some(unit) = unit_of(&d.file) else {
                return Some(d); // foreign path: keep verbatim
            };
            if !in_tests && unit.in_test_code(byte_of(&unit.tokens, d.line, d.col)) {
                return None;
            }
            let suppressed = unit
                .suppressions
                .iter()
                .any(|s| s.rule == d.rule && s.target_line == d.line && !s.reason.is_empty());
            if suppressed {
                None
            } else {
                Some(d)
            }
        })
        .collect();
    for unit in &units {
        diags.extend(unit.bad.iter().cloned());
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    diags.dedup_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule) == (b.file.as_str(), b.line, b.col, b.rule)
    });
    diags
}

/// Lints one file's source text. `path` must be workspace-relative with
/// `/` separators. (Single-element [`lint_files`] — no cross-file edges.)
pub fn lint_source(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    lint_files(&[(path.to_string(), src.to_string())], config)
}

/// Maps a (line, col) back to a byte offset via the token stream.
fn byte_of(tokens: &[Token<'_>], line: u32, col: u32) -> usize {
    tokens
        .iter()
        .find(|t| t.line == line && t.col == col)
        .map_or(0, |t| t.start)
}

/// Recursively collects workspace `.rs` files (sorted, relative paths).
fn collect_files(root: &Path, config: &Config) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if config
                    .files_exclude
                    .iter()
                    .any(|p| rel_path(root, &path).starts_with(p.trim_end_matches('/')))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if !config
                    .files_exclude
                    .iter()
                    .any(|p| rel.starts_with(p.as_str()))
                {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every workspace `.rs` file under `root` as one unit (the call
/// graph spans all of them).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<LintReport, String> {
    let paths = collect_files(root, config)?;
    let mut files = Vec::with_capacity(paths.len());
    for file in &paths {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        files.push((rel_path(root, file), src));
    }
    Ok(LintReport {
        diagnostics: lint_files(&files, config),
        files_checked: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = r#"
fn lib() { let x: f32 = y.max(0.0); }

#[cfg(test)]
mod tests {
    fn t() { let x: f32 = y.max(0.0); }
}
"#;
        let diags = lint_str("crates/tensor/src/ops/fake.rs", src);
        let nan: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "nan-laundering")
            .collect();
        assert_eq!(nan.len(), 1, "{diags:?}");
        assert_eq!(nan[0].line, 2);
    }

    #[test]
    fn test_files_are_exempt_by_path() {
        let src = "fn t() { v.unwrap(); }";
        assert!(lint_str("crates/nn/tests/whatever.rs", src).is_empty());
        assert!(!lint_str("crates/nn/src/whatever.rs", src).is_empty());
    }

    #[test]
    fn trailing_suppression_with_reason_silences_its_line() {
        let src =
            "fn f() { v.unwrap(); // tdfm-lint: allow(lib-unwrap, invariant held by caller)\n}";
        assert!(lint_str("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn standalone_suppression_applies_to_next_line() {
        let src =
            "fn f() {\n    // tdfm-lint: allow(lib-unwrap, checked above)\n    v.unwrap();\n}";
        assert!(lint_str("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let src = "fn f() { v.unwrap(); // tdfm-lint: allow(lib-unwrap)\n}";
        let diags = lint_str("crates/nn/src/x.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == "bad-suppression"),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.rule == "lib-unwrap"),
            "reasonless suppression must not suppress"
        );
    }

    #[test]
    fn suppression_of_unknown_rule_is_flagged() {
        let src = "// tdfm-lint: allow(no-such-rule, because)\nfn f() {}";
        let diags = lint_str("crates/nn/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "bad-suppression");
    }

    #[test]
    fn multi_file_lint_spans_the_call_graph() {
        // An allocation one call deep: the kernel file is in
        // hot-path-alloc's scope, the helper file is not — only the
        // interprocedural pass can flag the helper's allocation.
        let files = vec![
            (
                "crates/tensor/src/ops/gemm.rs".to_string(),
                "pub fn kernel(n: usize) { helper_scratch(n); }".to_string(),
            ),
            (
                "crates/tensor/src/helper.rs".to_string(),
                "pub fn helper_scratch(n: usize) -> Vec<f32> { Vec::with_capacity(n) }".to_string(),
            ),
        ];
        let diags = lint_files(&files, &Config::default());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "hot-path-alloc" && d.file == "crates/tensor/src/helper.rs"),
            "{diags:?}"
        );
    }
}
