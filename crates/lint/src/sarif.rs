//! SARIF 2.1.0 rendering of a lint run, for CI code-scanning upload.
//!
//! One `run` with the `tdfm-lint` driver; every registered rule is listed
//! under the driver (id + short description from [`Rule::summary`]), and
//! each diagnostic becomes a `result` with a physical location. Columns
//! are character-based, which is exactly SARIF's default
//! (`columnKind: "unicodeCodePoints"`).
//!
//! [`Rule::summary`]: crate::rules::Rule::summary

use tdfm_json::{Number, Value};

use crate::diag::Diagnostic;
use crate::rules::all_rules;

const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
const SARIF_VERSION: &str = "2.1.0";

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn num(n: u64) -> Value {
    Value::Num(Number::UInt(n))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn text_message(text: impl Into<String>) -> Value {
    obj(vec![("text", s(text))])
}

fn rule_descriptor(id: &str, summary: &str) -> Value {
    obj(vec![
        ("id", s(id)),
        ("shortDescription", text_message(summary)),
    ])
}

fn result(d: &Diagnostic) -> Value {
    let location = obj(vec![(
        "physicalLocation",
        obj(vec![
            ("artifactLocation", obj(vec![("uri", s(&*d.file))])),
            (
                "region",
                obj(vec![
                    ("startLine", num(u64::from(d.line))),
                    ("startColumn", num(u64::from(d.col))),
                ]),
            ),
        ]),
    )]);
    obj(vec![
        ("ruleId", s(d.rule)),
        ("level", s("warning")),
        (
            "message",
            text_message(format!("{} (help: {})", d.message, d.suggestion)),
        ),
        ("locations", Value::Array(vec![location])),
    ])
}

/// Renders the run as a SARIF 2.1.0 document. `bad-suppression` is an
/// engine-level finding, not a registered rule, so it gets a descriptor
/// of its own.
pub fn report_sarif(diags: &[Diagnostic]) -> String {
    let mut rules: Vec<Value> = all_rules()
        .iter()
        .map(|r| rule_descriptor(r.id(), r.summary()))
        .collect();
    rules.push(rule_descriptor(
        "bad-suppression",
        "malformed or reasonless `tdfm-lint: allow(...)` suppression comment",
    ));
    let driver = obj(vec![
        ("name", s("tdfm-lint")),
        ("rules", Value::Array(rules)),
    ]);
    let run = obj(vec![
        ("tool", obj(vec![("driver", driver)])),
        ("columnKind", s("unicodeCodePoints")),
        ("results", Value::Array(diags.iter().map(result).collect())),
    ]);
    let doc = obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        ("runs", Value::Array(vec![run])),
    ]);
    tdfm_json::to_string_pretty(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            file: "crates/tensor/src/ops/gemm.rs".to_string(),
            line: 12,
            col: 9,
            rule: "hot-path-alloc",
            message: "`.to_vec()` allocates".to_string(),
            suggestion: "use the Scratch arena".to_string(),
        }
    }

    #[test]
    fn sarif_parses_and_locates_the_finding() {
        let text = report_sarif(&[sample()]);
        let v = tdfm_json::parse(&text).expect("SARIF is valid JSON");
        assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = v.get("runs").and_then(Value::as_array).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Value::as_array)
            .expect("results");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("hot-path-alloc")
        );
        let region = results[0]
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("region");
        assert_eq!(region.get("startLine").and_then(Value::as_u64), Some(12));
        assert_eq!(region.get("startColumn").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn every_registered_rule_has_a_descriptor() {
        let text = report_sarif(&[]);
        let v = tdfm_json::parse(&text).expect("valid JSON");
        let rules = v
            .get("runs")
            .and_then(Value::as_array)
            .and_then(|r| r[0].get("tool"))
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_array)
            .expect("rules array");
        for rule in crate::rules::all_rules() {
            assert!(
                rules
                    .iter()
                    .any(|r| r.get("id").and_then(Value::as_str) == Some(rule.id())),
                "missing descriptor for {}",
                rule.id()
            );
        }
    }
}
