//! Intra-procedural "value reaches call" dataflow helpers.
//!
//! These are deliberately *name-based*, not SSA: a binding introduced by
//! `let h = ...` is tracked by every later mention of `h` inside the same
//! fn body. That is exactly the right precision for the concurrency rules
//! built on top —
//!
//! * `unjoined-spawn` asks "does `h` reach a `.join()` call, escape the
//!   fn, or die silently?",
//! * `lock-held-across-call` asks "which calls happen between taking a
//!   guard and dropping it?",
//! * `hashmap-iter-order` / `unordered-float-reduce` ask "is this name
//!   hash-typed by construction?" —
//!
//! and all of them err on the quiet side: an ambiguous use classifies as
//! an escape (the value went somewhere that may handle it), never as a
//! fresh finding.

use std::collections::BTreeSet;

use crate::lexer::{TokKind, Token};
use crate::parser::{Expr, ExprKind, FnItem, Span};

/// Token indices of every identifier spelled `name` inside `span`,
/// excluding `exclude` (typically the binding's own name token).
pub fn ident_uses(
    tokens: &[Token<'_>],
    span: Span,
    name: &str,
    exclude: Option<usize>,
) -> Vec<usize> {
    (span.lo..span.hi.min(tokens.len()))
        .filter(|&i| {
            tokens[i].kind == TokKind::Ident && tokens[i].text == name && Some(i) != exclude
        })
        .collect()
}

/// The chain of nodes whose spans contain `tok`, outermost first. The
/// token may sit in a node's own "gap" (e.g. an operator), in which case
/// the innermost element is the node owning that gap.
pub fn node_stack_at(root: &Expr, tok: usize) -> Vec<&Expr> {
    let mut stack = Vec::new();
    let mut cur = root;
    loop {
        if !cur.span.contains(tok) {
            break;
        }
        stack.push(cur);
        match cur.children.iter().find(|c| c.span.contains(tok)) {
            Some(child) => cur = child,
            None => break,
        }
    }
    stack
}

/// Does `name` reach one of `methods` as a receiver inside `body`? True
/// for `h.join()`, `h.as_mut().join()`, `handles[i].join()` when `name`
/// is the chain's first identifier.
pub fn reaches_method(body: &Expr, tokens: &[Token<'_>], name: &str, methods: &[&str]) -> bool {
    let mut hit = false;
    body.walk(&mut |e| {
        if hit {
            return;
        }
        if let ExprKind::MethodCall { method, .. } = &e.kind {
            if methods.contains(&method.as_str()) {
                if let Some(recv) = e.children.first() {
                    if first_ident(tokens, recv.span) == Some(name) {
                        hit = true;
                    }
                }
            }
        }
    });
    hit
}

/// First significant identifier inside `span`.
pub fn first_ident<'a>(tokens: &[Token<'a>], span: Span) -> Option<&'a str> {
    tokens[span.lo..span.hi.min(tokens.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
}

/// Does any use of `name` (outside `binding`) escape the fn — i.e. flow
/// somewhere that may keep or consume the value? Escapes: macro
/// arguments (opaque), call/method arguments (except `drop(name)`),
/// struct literals / groups / indexing, rebinding via another `let`, and
/// bare tail/`return` mentions. Receiver-position uses (`name.m()`) are
/// *not* escapes — track those with [`reaches_method`].
pub fn escapes(body: &Expr, tokens: &[Token<'_>], name: &str, binding: &Expr) -> bool {
    let uses = ident_uses(tokens, body.span, name, None);
    uses.iter().any(|&u| {
        if binding.span.contains(u) {
            return false; // the binding statement itself (pattern + init)
        }
        classify_use(body, tokens, u) == UseKind::Escape
    })
}

/// How a single identifier use participates in the surrounding structure.
#[derive(Debug, PartialEq, Eq)]
pub enum UseKind {
    /// Receiver of a method call (`name.m(..)`).
    Receiver,
    /// Argument of `drop(..)` — explicitly discarded.
    Dropped,
    /// Flows into a macro, call argument, struct literal, another `let`,
    /// or stands bare in tail/`return` position.
    Escape,
}

/// Classifies the use at token `u`, innermost decisive node wins.
pub fn classify_use(body: &Expr, tokens: &[Token<'_>], u: usize) -> UseKind {
    let stack = node_stack_at(body, u);
    for node in stack.iter().rev() {
        match &node.kind {
            ExprKind::Macro { .. } => return UseKind::Escape,
            ExprKind::Call { callee } => {
                if callee.contains(u) {
                    continue; // the use *is* the callee path, not an arg
                }
                let is_drop = crate::callgraph::last_segment(tokens, *callee)
                    .map(|(n, _)| n == "drop")
                    .unwrap_or(false);
                return if is_drop {
                    UseKind::Dropped
                } else {
                    UseKind::Escape
                };
            }
            ExprKind::MethodCall { .. } => {
                if node
                    .children
                    .first()
                    .is_some_and(|recv| recv.span.contains(u))
                {
                    return UseKind::Receiver;
                }
                return UseKind::Escape; // argument position
            }
            ExprKind::Let { .. } => return UseKind::Escape, // rebinding
            ExprKind::Leaf => {
                if !node.children.is_empty() {
                    return UseKind::Escape; // struct literal/group/index
                }
                continue;
            }
            // Transparent containers: look outward.
            _ => continue,
        }
    }
    // No decisive node: a bare mention — tail expression or `return`.
    UseKind::Escape
}

/// Names bound to `HashMap`/`HashSet` values in this fn, inferred from
/// parameter types (`m: &HashMap<..>`) and `let` statements whose span
/// mentions the type (`let m = HashMap::new()`, `let m: HashSet<_> =`).
pub fn hash_typed_names(tokens: &[Token<'_>], func: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // Parameters: split on depth-0 commas; a param mentioning the type
    // binds its first identifier (skipping `mut`/`self` keywords).
    let mut depth = 0i32;
    let mut param_start = func.params.lo + 1;
    let mut i = param_start;
    let flush_param = |lo: usize, hi: usize, out: &mut BTreeSet<String>, tokens: &[Token<'_>]| {
        let toks = &tokens[lo..hi.min(tokens.len())];
        if toks.iter().any(|t| is_hash_type(t)) {
            if let Some(name) = toks
                .iter()
                .find(|t| t.kind == TokKind::Ident && !matches!(t.text, "mut" | "self"))
            {
                out.insert(name.text.to_string());
            }
        }
    };
    while i < func.params.hi.min(tokens.len()) {
        match tokens[i].text {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth <= 0 => {
                flush_param(param_start, i, &mut out, tokens);
                param_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    flush_param(
        param_start,
        func.params.hi.saturating_sub(1),
        &mut out,
        tokens,
    );
    // Lets: any binding whose statement mentions the type.
    if let Some(body) = &func.body {
        body.walk(&mut |e| {
            if let ExprKind::Let {
                name: Some(name), ..
            } = &e.kind
            {
                if tokens[e.span.lo..e.span.hi.min(tokens.len())]
                    .iter()
                    .any(is_hash_type)
                {
                    out.insert(name.clone());
                }
            }
        });
    }
    out
}

fn is_hash_type(t: &Token<'_>) -> bool {
    t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    /// Runs `check` with the body of the sole fn in `src`.
    fn with_body(src: &str, check: impl FnOnce(&[Token<'_>], &FnItem, &Expr)) {
        let toks = lex(src);
        let file = parse_file(&toks);
        let fns = file.fns();
        let func = fns.first().expect("one fn");
        let body = func.body.as_ref().expect("body");
        check(&toks, func, body);
    }

    #[test]
    fn join_on_the_binding_is_reached() {
        with_body(
            "fn f() { let h = std::thread::spawn(work); h.join().unwrap(); }",
            |toks, _, body| {
                assert!(reaches_method(body, toks, "h", &["join"]));
                assert!(!reaches_method(body, toks, "g", &["join"]));
            },
        );
    }

    #[test]
    fn call_argument_uses_escape_but_drop_does_not() {
        with_body("fn f() { let h = mk(); keep(h); }", |toks, _, body| {
            let binding = &body.children[0];
            assert!(escapes(body, toks, "h", binding));
        });
        with_body("fn f() { let h = mk(); drop(h); }", |toks, _, body| {
            let binding = &body.children[0];
            assert!(!escapes(body, toks, "h", binding));
            let u = *ident_uses(toks, body.span, "h", None).last().unwrap();
            assert_eq!(classify_use(body, toks, u), UseKind::Dropped);
        });
    }

    #[test]
    fn vec_push_receiver_is_not_an_escape_but_push_arg_is() {
        with_body(
            "fn f() { let h = mk(); handles.push(h); }",
            |toks, _, body| {
                let binding = &body.children[0];
                assert!(escapes(body, toks, "h", binding), "arg of push escapes");
                assert!(!escapes(body, toks, "handles", binding));
            },
        );
    }

    #[test]
    fn macro_and_tail_uses_escape() {
        with_body("fn f() -> H { let h = mk(); h }", |toks, _, body| {
            let binding = &body.children[0];
            assert!(escapes(body, toks, "h", binding), "tail return escapes");
        });
        with_body("fn f() { let h = mk(); own!(h); }", |toks, _, body| {
            let binding = &body.children[0];
            assert!(escapes(body, toks, "h", binding), "macro arg escapes");
        });
    }

    #[test]
    fn unused_binding_does_not_escape() {
        with_body("fn f() { let h = mk(); other(); }", |toks, _, body| {
            let binding = &body.children[0];
            assert!(!escapes(body, toks, "h", binding));
        });
    }

    #[test]
    fn hash_typed_names_from_params_and_lets() {
        with_body(
            "fn f(counts: &HashMap<u32, f32>, xs: &[f32]) { let seen = HashSet::new(); let v: Vec<u32> = Vec::new(); }",
            |toks, func, _| {
                let names = hash_typed_names(toks, func);
                assert!(names.contains("counts"));
                assert!(names.contains("seen"));
                assert!(!names.contains("xs"));
                assert!(!names.contains("v"));
            },
        );
    }

    #[test]
    fn generic_params_do_not_split_hash_inference() {
        with_body(
            "fn f(pair: (u8, u8), m: HashMap<K, V>) { }",
            |toks, func, _| {
                let names = hash_typed_names(toks, func);
                assert_eq!(
                    names.iter().cloned().collect::<Vec<_>>(),
                    vec!["m".to_string()]
                );
            },
        );
    }
}
