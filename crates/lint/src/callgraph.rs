//! A workspace-wide call graph over the parsed ASTs ([`crate::parser`]).
//!
//! Resolution is by name, with two precision aids and one recall guard:
//!
//! * **Impl qualifiers.** Each fn defined inside an `impl`/`trait` block
//!   records the self-type (last depth-0 identifier of the impl header),
//!   so `Scratch::take_f32(..)` links to `Scratch`'s method and not to
//!   every `take_f32` in the tree.
//! * **Ubiquity denylist.** Method calls and qualified paths whose final
//!   segment is a std-prelude name (`new`, `len`, `max`, `collect`, ...)
//!   never create fallback edges: `.max(x)` must not drag a workspace fn
//!   that happens to be called `max` into every caller's reachable set.
//! * **Conservative multi-link.** Where several workspace fns share a
//!   name (e.g. `forward` on every layer), a call links to all of them —
//!   interprocedural rules over-approximate rather than miss.
//!
//! The graph is deterministic by construction: fns are discovered in
//! (file, source) order and edges preserve call-site order, so BFS
//! results — and therefore diagnostics — are stable across runs.

use std::collections::BTreeMap;

use crate::lexer::{TokKind, Token};
use crate::parser::{Expr, ExprKind, File, Item, ItemKind, Span};

/// One function definition somewhere in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the defining file in the workspace unit list.
    pub file: usize,
    pub name: String,
    /// Token index (in the defining file) of the name identifier.
    pub name_tok: usize,
    /// Token span of the body block; `None` for trait declarations.
    pub body: Option<Span>,
    /// Self-type of the enclosing `impl`/`trait` block, when any.
    pub qualifier: Option<String>,
}

/// The graph: nodes plus name-resolved call edges.
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// `edges[caller]` = `(callee, call-site token in caller's file)` in
    /// source order.
    edges: Vec<Vec<(usize, usize)>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Method/terminal-segment names so common in std that a name-only match
/// would link unrelated code (`.max(`, `Vec::new`). Calls through these
/// names only resolve when an impl qualifier pins them down. Must stay
/// sorted: resolution binary-searches it.
const UBIQUITOUS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_mut",
    "as_ref",
    "as_slice",
    "borrow",
    "borrow_mut",
    "capacity",
    "ceil",
    "chain",
    "clamp",
    "clear",
    "clone",
    "clone_from",
    "cmp",
    "collect",
    "contains",
    "count",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "exp",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "replace",
    "reserve",
    "resize",
    "rev",
    "round",
    "scope",
    "send",
    "skip",
    "sort",
    "spawn",
    "split",
    "sqrt",
    "store",
    "sum",
    "swap",
    "take",
    "to_string",
    "to_vec",
    "trim",
    "unwrap",
    "values",
    "write",
    "zip",
];

/// Is `name` on the std-prelude denylist? (Public: `lock-held-across-call`
/// uses the same notion to decide whether a method call under a guard can
/// plausibly be a workspace fn.)
pub fn is_ubiquitous(name: &str) -> bool {
    UBIQUITOUS.binary_search(&name).is_ok()
}

impl CallGraph {
    /// Builds the graph over every file's `(tokens, ast)` pair, indexed by
    /// position (the same indices the engine's unit list uses).
    pub fn build(files: &[(&[Token<'_>], &File)]) -> CallGraph {
        let mut fns = Vec::new();
        for (file_idx, (tokens, ast)) in files.iter().enumerate() {
            for item in &ast.items {
                collect_fns(tokens, item, file_idx, None, &mut fns);
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut edges = vec![Vec::new(); fns.len()];
        for (caller, f) in fns.iter().enumerate() {
            let Some(body) = f.body else { continue };
            let (tokens, ast) = files[f.file];
            // Walk only this fn's body (nested fns are their own nodes —
            // their subtrees are skipped so calls are not double-counted).
            visit_fn_body(ast, body, &mut |e| {
                resolve_call(tokens, e, &fns, &by_name, &mut edges[caller]);
            });
        }
        CallGraph {
            fns,
            edges,
            by_name,
        }
    }

    /// Direct callees of `caller` with their call-site tokens.
    pub fn callees(&self, caller: usize) -> &[(usize, usize)] {
        &self.edges[caller]
    }

    /// Indices of every fn named `name`.
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// BFS over call edges from `roots`: returns, for every reached fn
    /// (roots included), the `(caller, call-site token)` edge that first
    /// reached it (`None` for roots). Deterministic: queue order follows
    /// root order, then edge order.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut parent: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(r) {
                v.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &(callee, tok) in &self.edges[cur] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(callee) {
                    v.insert(Some((cur, tok)));
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// Renders the root-to-`idx` call chain as `a -> b -> c` fn names.
    pub fn chain(&self, parent: &BTreeMap<usize, Option<(usize, usize)>>, idx: usize) -> String {
        let mut names = vec![self.fns[idx].name.clone()];
        let mut cur = idx;
        while let Some(Some((caller, _))) = parent.get(&cur) {
            names.push(self.fns[*caller].name.clone());
            cur = *caller;
            if names.len() > 32 {
                break; // cycle guard (parent maps are acyclic, but be safe)
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Recursively collects fn definitions, threading the impl/trait
/// qualifier down.
fn collect_fns(
    tokens: &[Token<'_>],
    item: &Item,
    file: usize,
    qualifier: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    match &item.kind {
        ItemKind::Fn(func) => {
            out.push(FnNode {
                file,
                name: func.name.clone(),
                name_tok: func.name_tok,
                body: func.body.as_ref().map(|b| b.span),
                qualifier: qualifier.map(|q| q.to_string()),
            });
            // Nested statement-position fns.
            if let Some(body) = &func.body {
                body.walk(&mut |e| {
                    if let ExprKind::ItemStmt(nested) = &e.kind {
                        collect_fns(tokens, nested, file, None, out);
                    }
                });
            }
        }
        ItemKind::Mod { items, .. } => {
            for it in items {
                collect_fns(tokens, it, file, None, out);
            }
        }
        ItemKind::Impl { items } | ItemKind::Trait { items } => {
            let q = header_qualifier(tokens, item);
            for it in items {
                collect_fns(tokens, it, file, q.as_deref(), out);
            }
        }
        ItemKind::Verbatim => {}
    }
}

/// The self-type name of an `impl`/`trait` header: the last identifier at
/// angle-depth 0 before the body brace (`impl Agg for TrimmedMean {` ->
/// `TrimmedMean`; `impl<T> Wrapper<T> {` -> `Wrapper`). For `trait Name`,
/// that is the trait name itself.
fn header_qualifier(tokens: &[Token<'_>], item: &Item) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    for t in &tokens[item.span.lo..item.span.hi.min(tokens.len())] {
        if t.is_trivia() {
            continue;
        }
        match t.text {
            "{" => break,
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle = (angle - 1).max(0),
            ">>" => angle = (angle - 2).max(0),
            _ if t.kind == TokKind::Ident
                && angle == 0
                && !matches!(
                    t.text,
                    "impl" | "trait" | "for" | "where" | "dyn" | "mut" | "const"
                ) =>
            {
                last = Some(t.text);
            }
            _ => {}
        }
    }
    last.map(|s| s.to_string())
}

/// Walks the expressions of the fn body with token span `body`, skipping
/// subtrees of nested statement-position fns (separate graph nodes).
fn visit_fn_body<'s>(ast: &'s File, body: Span, f: &mut impl FnMut(&'s Expr)) {
    fn walk_skipping_items<'s>(e: &'s Expr, f: &mut impl FnMut(&'s Expr)) {
        if matches!(e.kind, ExprKind::ItemStmt(_)) {
            return;
        }
        f(e);
        for c in &e.children {
            walk_skipping_items(c, f);
        }
    }
    let mut found = false;
    ast.walk_exprs(&mut |e| {
        if !found && matches!(e.kind, ExprKind::Block) && e.span == body {
            found = true;
            walk_skipping_items(e, f);
        }
    });
}

/// The terminal path segment of a callee span: the last identifier token.
pub fn last_segment<'a>(tokens: &[Token<'a>], callee: Span) -> Option<(&'a str, usize)> {
    let mut found = None;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(callee.hi.min(tokens.len()))
        .skip(callee.lo)
    {
        if t.kind == TokKind::Ident {
            found = Some((t.text, i));
        }
    }
    found
}

/// The segment *before* the terminal one (`Scratch` in `Scratch::new`),
/// when the path is qualified.
fn qualifier_segment<'a>(tokens: &[Token<'a>], callee: Span, last_tok: usize) -> Option<&'a str> {
    let mut prev = None;
    for t in &tokens[callee.lo..last_tok] {
        if t.kind == TokKind::Ident {
            prev = Some(t.text);
        }
    }
    prev
}

/// Resolves one expression node to call edges, if it is a call.
fn resolve_call(
    tokens: &[Token<'_>],
    e: &Expr,
    fns: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    out: &mut Vec<(usize, usize)>,
) {
    match &e.kind {
        ExprKind::Call { callee } => {
            let Some((name, name_tok)) = last_segment(tokens, *callee) else {
                return;
            };
            let Some(cands) = by_name.get(name) else {
                return;
            };
            match qualifier_segment(tokens, *callee, name_tok) {
                Some(q) => {
                    // Qualified: prefer exact impl matches; fall back to
                    // all same-name fns only for non-ubiquitous names.
                    let exact: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].qualifier.as_deref() == Some(q))
                        .collect();
                    if !exact.is_empty() {
                        out.extend(exact.into_iter().map(|i| (i, name_tok)));
                    } else if !is_ubiquitous(name) {
                        out.extend(cands.iter().map(|&i| (i, name_tok)));
                    }
                }
                // Bare `helper(..)`: a free fn — link every candidate,
                // unless the name is a std prelude fn (`drop(x)` must not
                // link every `Drop::drop` impl in the workspace).
                None => {
                    if !is_ubiquitous(name) {
                        out.extend(cands.iter().map(|&i| (i, name_tok)));
                    }
                }
            }
        }
        ExprKind::MethodCall {
            method, method_tok, ..
        } => {
            if is_ubiquitous(method) {
                return;
            }
            if let Some(cands) = by_name.get(method.as_str()) {
                out.extend(cands.iter().map(|&i| (i, *method_tok)));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn with_graph(srcs: &[&str], check: impl FnOnce(&CallGraph)) {
        let tokens: Vec<Vec<Token<'_>>> = srcs.iter().map(|s| lex(s)).collect();
        let asts: Vec<File> = tokens.iter().map(|t| parse_file(t)).collect();
        let pairs: Vec<(&[Token<'_>], &File)> = tokens
            .iter()
            .zip(&asts)
            .map(|(t, a)| (t.as_slice(), a))
            .collect();
        check(&CallGraph::build(&pairs));
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.defs_named(name)[0]
    }

    #[test]
    fn denylist_is_sorted_for_binary_search() {
        let mut sorted = UBIQUITOUS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, UBIQUITOUS);
    }

    #[test]
    fn links_free_fn_calls_across_files() {
        with_graph(
            &[
                "pub fn kernel() { helper_alloc(3); }",
                "pub fn helper_alloc(n: usize) { other(n); }\nfn other(n: usize) {}",
            ],
            |g| {
                let kernel = idx(g, "kernel");
                let helper = idx(g, "helper_alloc");
                let other = idx(g, "other");
                assert_eq!(g.callees(kernel).len(), 1);
                assert_eq!(g.callees(kernel)[0].0, helper);
                let reach = g.reachable(&[kernel]);
                assert!(reach.contains_key(&other), "transitive reach");
                assert_eq!(g.chain(&reach, other), "kernel -> helper_alloc -> other");
            },
        );
    }

    #[test]
    fn qualified_calls_prefer_the_matching_impl() {
        with_graph(
            &[
                "struct A; impl A { pub fn make() {} }\nstruct B; impl B { pub fn make() {} }",
                "fn use_it() { A::make(); }",
            ],
            |g| {
                let callees = g.callees(idx(g, "use_it"));
                assert_eq!(callees.len(), 1);
                assert_eq!(g.fns[callees[0].0].qualifier.as_deref(), Some("A"));
            },
        );
    }

    #[test]
    fn ubiquitous_method_names_do_not_link() {
        with_graph(
            &[
                "struct S; impl S { pub fn max(&self) -> u8 { 0 } }",
                "fn f(x: f32) -> f32 { x.max(0.0) }",
            ],
            |g| {
                assert!(
                    g.callees(idx(g, "f")).is_empty(),
                    "`.max(` must not link to S::max"
                );
            },
        );
        // But `S::max(..)` (qualified) still resolves precisely.
        with_graph(
            &[
                "struct S; impl S { pub fn max(&self) -> u8 { 0 } }",
                "fn g(s: &S) -> u8 { S::max(s) }",
            ],
            |g| assert_eq!(g.callees(idx(g, "g")).len(), 1),
        );
    }

    #[test]
    fn bare_prelude_calls_do_not_link_to_trait_impls() {
        // `drop(x)` is `std::mem::drop`, not a call into any of the
        // workspace's `Drop::drop` impls.
        with_graph(
            &[
                "struct Buf; impl Drop for Buf { fn drop(&mut self) { flush(); } }\nfn flush() {}",
                "fn release(b: Buf) { drop(b); }",
            ],
            |g| {
                assert!(
                    g.callees(idx(g, "release")).is_empty(),
                    "bare `drop(..)` must not link to Drop::drop"
                );
            },
        );
    }

    #[test]
    fn non_ubiquitous_method_calls_multi_link() {
        with_graph(
            &[
                "struct A; impl A { pub fn forward(&self) {} }\nstruct B; impl B { pub fn forward(&self) {} }",
                "fn step(l: &A) { l.forward(); }",
            ],
            |g| assert_eq!(g.callees(idx(g, "step")).len(), 2, "conservative multi-link"),
        );
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_node() {
        with_graph(
            &["fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}"],
            |g| {
                let callees = |n: &str| -> Vec<usize> {
                    g.callees(idx(g, n)).iter().map(|&(c, _)| c).collect()
                };
                assert_eq!(callees("outer"), vec![idx(g, "inner")]);
                assert_eq!(callees("inner"), vec![idx(g, "leaf")]);
            },
        );
    }

    #[test]
    fn trait_headers_qualify_their_default_methods() {
        with_graph(&["trait Agg { fn combine(&self) {} }"], |g| {
            assert_eq!(g.fns[idx(g, "combine")].qualifier.as_deref(), Some("Agg"));
        });
    }
}
