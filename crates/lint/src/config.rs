//! The committed `lint.toml` path configuration.
//!
//! Only the TOML subset the config actually needs is parsed: `# comments`,
//! `[section]` / `[section.sub-name]` headers, and (possibly multi-line)
//! `key = ["string", ...]` arrays. Anything else is a hard error — a typo
//! in the committed scoping file must fail CI, not silently widen or
//! narrow a rule.
//!
//! Semantics: a rule applies to a file iff its `include` list is empty or
//! some entry prefix-matches the workspace-relative path, AND no `exclude`
//! entry prefix-matches. `[files] exclude` drops files from the walk
//! entirely.

use std::collections::BTreeMap;

/// Path scoping for one rule. Entries are `/`-separated path prefixes
/// relative to the workspace root (`crates/tensor/src/ops/`, or a full
/// file path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    pub include: Vec<String>,
    pub exclude: Vec<String>,
}

impl Scope {
    /// Does this scope select `path` (workspace-relative, `/`-separated)?
    pub fn selects(&self, path: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p.as_str()));
        included && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Files dropped from the walk entirely (`[files] exclude`).
    pub files_exclude: Vec<String>,
    /// Per-rule scope overrides (`[rules.<id>]` sections). A rule absent
    /// here keeps its built-in default scope.
    pub rules: BTreeMap<String, Scope>,
}

impl Config {
    /// Parses the `lint.toml` subset; errors carry the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // A `key = [` array may span lines; join until the `]`.
            while line.contains('=') && line.contains('[') && !line.contains(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("lint.toml:{lineno}: unterminated `[...]` array"));
                };
                line.push(' ');
                line.push_str(strip_comment(cont).trim());
            }
            let line = line.as_str();
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name != "files" && !name.starts_with("rules.") {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown section `[{name}]` (expected `[files]` or `[rules.<id>]`)"
                    ));
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = [...]`"));
            };
            let key = key.trim();
            let entries =
                parse_string_array(value.trim()).map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
            match (section.as_str(), key) {
                ("files", "exclude") => cfg.files_exclude = entries,
                ("files", other) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key `{other}` in [files] (expected `exclude`)"
                    ));
                }
                (sec, "include" | "exclude") if sec.starts_with("rules.") => {
                    let rule = sec["rules.".len()..].to_string();
                    let scope = cfg.rules.entry(rule).or_default();
                    if key == "include" {
                        scope.include = entries;
                    } else {
                        scope.exclude = entries;
                    }
                }
                (_, other) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key `{other}` (expected `include`/`exclude` under a `[rules.<id>]` section)"
                    ));
                }
            }
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` (single-line; trailing comma allowed).
fn parse_string_array(text: &str) -> Result<Vec<String>, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[\"...\"]` array, got `{text}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a double-quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# scoping for tdfm-lint
[files]
exclude = ["lint-fixtures/", "target/"]

[rules.sparsity-skip]
include = ["crates/tensor/src/ops/"]

[rules.nondeterministic-time]
exclude = ["crates/bench/",] # trailing comma + comment
"#,
        )
        .expect("config parses");
        assert_eq!(cfg.files_exclude, vec!["lint-fixtures/", "target/"]);
        assert_eq!(
            cfg.rules["sparsity-skip"].include,
            vec!["crates/tensor/src/ops/"]
        );
        assert_eq!(
            cfg.rules["nondeterministic-time"].exclude,
            vec!["crates/bench/"]
        );
    }

    #[test]
    fn scope_selection() {
        let scope = Scope {
            include: vec!["crates/tensor/src/ops/".to_string()],
            exclude: vec!["crates/tensor/src/ops/reduce.rs".to_string()],
        };
        assert!(scope.selects("crates/tensor/src/ops/gemm.rs"));
        assert!(!scope.selects("crates/tensor/src/ops/reduce.rs"));
        assert!(!scope.selects("crates/nn/src/trainer.rs"));
        assert!(Scope::default().selects("anything/at/all.rs"));
    }

    #[test]
    fn rejects_typos_loudly() {
        assert!(Config::parse("[fils]\nexclude = []").is_err());
        assert!(Config::parse("[files]\nexclud = []").is_err());
        assert!(Config::parse("[rules.x]\ninclude = \"not-an-array\"").is_err());
        assert!(Config::parse("[rules.x]\ninclude = [unquoted]").is_err());
        assert!(Config::parse("loose = []").is_err());
    }

    #[test]
    fn multi_line_arrays_join() {
        let cfg = Config::parse(
            "[rules.hot-path-alloc]\ninclude = [\n    \"a.rs\", # first\n    \"b.rs\",\n]",
        )
        .expect("multi-line array parses");
        assert_eq!(cfg.rules["hot-path-alloc"].include, vec!["a.rs", "b.rs"]);
        assert!(Config::parse("[rules.x]\ninclude = [\n\"a.rs\",").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[files]\nexclude = [\"a#b/\"]").expect("parses");
        assert_eq!(cfg.files_exclude, vec!["a#b/"]);
    }
}
