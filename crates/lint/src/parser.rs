//! A lightweight, lossless recursive-descent parser over [`crate::lexer`].
//!
//! PR 4's rules matched flat token patterns, which capped what they could
//! express: `hot-path-alloc` could not see an allocation one call deep,
//! and concurrency hazards (an unjoined spawn, a guard held across a
//! call) are properties of *structure*, not of token windows. This parser
//! recovers exactly the structure the rules need — items, function
//! signatures, blocks, call / method-call / loop / closure expressions —
//! and nothing more: types, patterns and operator precedence stay as raw
//! token runs.
//!
//! Two invariants make it safe to build rules on:
//!
//! * **Lossless spans.** Every node's span is a half-open range of token
//!   indices; children are ordered, non-overlapping sub-ranges of their
//!   parent. [`reconstruct`] walks the tree emitting parent tokens in the
//!   gaps around children — the result is byte-identical to the source
//!   for every `.rs` file in the workspace (property-tested in
//!   `tests/parser_roundtrip.rs`, mirroring the lexer round-trip sweep).
//! * **No panics.** Malformed input degrades: unparseable token runs
//!   become [`ItemKind::Verbatim`] items or plain [`ExprKind::Leaf`]
//!   nodes, and unbalanced delimiters run to the end of their region.
//!
//! The parser is deliberately heuristic in the two places Rust's grammar
//! is ambiguous without symbol tables: `ident { ... }` in expression
//! position is taken as a struct literal, and `|` starts a closure only in
//! expression-start position. Both degrade to mis-*kinded* (never
//! mis-*spanned*) nodes, which the round-trip property still pins.

use crate::lexer::{TokKind, Token};

/// A half-open range `[lo, hi)` of token indices into the file's token
/// stream (trivia included — spans always cover whole source regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub lo: usize,
    pub hi: usize,
}

impl Span {
    pub fn new(lo: usize, hi: usize) -> Self {
        Span { lo, hi }
    }

    pub fn contains(&self, tok: usize) -> bool {
        tok >= self.lo && tok < self.hi
    }
}

/// One parsed file: a list of top-level items.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level (or nested) item.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub span: Span,
}

#[derive(Debug)]
pub enum ItemKind {
    Fn(FnItem),
    /// Inline `mod name { ... }`; out-of-line `mod name;` is Verbatim.
    Mod {
        name: String,
        items: Vec<Item>,
    },
    /// `impl ... { ... }` — only the contained items are modelled.
    Impl {
        items: Vec<Item>,
    },
    /// `trait ... { ... }` — default method bodies are parsed.
    Trait {
        items: Vec<Item>,
    },
    /// Anything else (struct/enum/use/const/static/type/macro/attr soup):
    /// an opaque token run.
    Verbatim,
}

/// A function item: the one signature the rules care about plus a body.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Span of the parameter list including both parentheses.
    pub params: Span,
    /// The body block (`ExprKind::Block`), absent for trait declarations.
    pub body: Option<Expr>,
    /// Span of the whole item (attributes through closing brace).
    pub span: Span,
}

/// One expression node. `children` are ordered, non-overlapping spans
/// inside `span`; tokens not covered by a child belong to the node itself
/// (the "gap" tokens [`reconstruct`] emits in place).
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
    pub children: Vec<Expr>,
}

#[derive(Debug)]
pub enum ExprKind {
    /// An operand the rules have no structure for: a path, literal,
    /// parenthesised group, array, index, or struct literal. Interesting
    /// sub-expressions (e.g. a spawn inside a struct field) still appear
    /// as children.
    Leaf,
    /// `name!(...)` / `name![...]` / `name!{...}` — contents opaque.
    Macro {
        name: String,
    },
    /// `let <pat> = <init>;` — children are the init's nodes. `name` is
    /// set only for a simple `[mut] ident [: ty]` pattern.
    Let {
        name: Option<String>,
        name_tok: Option<usize>,
    },
    /// `path(args)` — `callee` spans the path (turbofish included);
    /// children are the argument nodes (plus, for `expr(...)` calls on a
    /// structured callee, that callee as the first child).
    Call {
        callee: Span,
    },
    /// `recv.name(args)` — children[0] is always the receiver node; the
    /// rest are argument nodes.
    MethodCall {
        method: String,
        method_tok: usize,
        dot_tok: usize,
    },
    /// `for <pat> in <iter> { ... }` — children: iter nodes then the body
    /// block (always the last child).
    For {
        pat: Span,
        iter: Span,
    },
    /// `while <cond> { ... }` / `while let ... { ... }`.
    While {
        cond: Span,
    },
    Loop,
    /// `if <cond> { } else if ... else { }` — children: cond nodes and
    /// every arm block, in source order.
    If,
    /// `match <scrutinee> { pat => value, ... }` — children: scrutinee
    /// nodes then each arm's value nodes (patterns stay raw tokens).
    Match {
        scrutinee: Span,
    },
    /// `|params| body` / `move || body` — children are the body's nodes.
    Closure,
    /// `{ ... }` — children are the statements' nodes.
    Block,
    /// An item in statement position (nested `fn`, `use`, `const`, ...).
    ItemStmt(Box<Item>),
}

impl Expr {
    /// Pre-order walk over this node and all descendants (items in
    /// statement position included).
    pub fn walk<'s>(&'s self, f: &mut impl FnMut(&'s Expr)) {
        f(self);
        if let ExprKind::ItemStmt(item) = &self.kind {
            item.walk_exprs(f);
        }
        for c in &self.children {
            c.walk(f);
        }
    }

    /// The body block of a loop/closure-like node: its last Block child.
    pub fn body_block(&self) -> Option<&Expr> {
        self.children
            .iter()
            .rev()
            .find(|c| matches!(c.kind, ExprKind::Block))
    }
}

impl Item {
    fn walk_exprs<'s>(&'s self, f: &mut impl FnMut(&'s Expr)) {
        match &self.kind {
            ItemKind::Fn(func) => {
                if let Some(body) = &func.body {
                    body.walk(f);
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items } | ItemKind::Trait { items } => {
                for it in items {
                    it.walk_exprs(f);
                }
            }
            ItemKind::Verbatim => {}
        }
    }

    fn collect_fns<'s>(&'s self, out: &mut Vec<&'s FnItem>) {
        match &self.kind {
            ItemKind::Fn(func) => {
                out.push(func);
                if let Some(body) = &func.body {
                    body.walk(&mut |e| {
                        if let ExprKind::ItemStmt(item) = &e.kind {
                            if let ItemKind::Fn(nested) = &item.kind {
                                out.push(nested);
                            }
                        }
                    });
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items } | ItemKind::Trait { items } => {
                for it in items {
                    it.collect_fns(out);
                }
            }
            ItemKind::Verbatim => {}
        }
    }
}

impl File {
    /// Every function in the file (module/impl/trait nesting flattened,
    /// nested statement-position fns included), in source order.
    pub fn fns(&self) -> Vec<&FnItem> {
        let mut out = Vec::new();
        for item in &self.items {
            item.collect_fns(&mut out);
        }
        out
    }

    /// Pre-order walk over every expression in every function body.
    pub fn walk_exprs<'s>(&'s self, f: &mut impl FnMut(&'s Expr)) {
        for item in &self.items {
            item.walk_exprs(f);
        }
    }
}

/// Parses a token stream into a [`File`]. Never fails: what it cannot
/// model becomes `Verbatim`/`Leaf` nodes with correct spans.
pub fn parse_file(tokens: &[Token<'_>]) -> File {
    let mut p = Parser { toks: tokens };
    File {
        items: p.parse_items(0, tokens.len()),
    }
}

/// Re-emits the source from the tree: for each node, parent tokens are
/// written in the gaps around children, children recursively. Equal to the
/// source iff every span is well-nested — the property the round-trip
/// tests pin for the whole workspace.
pub fn reconstruct(tokens: &[Token<'_>], file: &File) -> String {
    let mut out = String::new();
    emit_span_with_items(tokens, Span::new(0, tokens.len()), &file.items, &mut out);
    out
}

fn emit_tokens(tokens: &[Token<'_>], lo: usize, hi: usize, out: &mut String) {
    for t in &tokens[lo.min(tokens.len())..hi.min(tokens.len())] {
        out.push_str(t.text);
    }
}

fn emit_span_with_items(tokens: &[Token<'_>], span: Span, items: &[Item], out: &mut String) {
    let mut pos = span.lo;
    for item in items {
        emit_tokens(tokens, pos, item.span.lo, out);
        emit_item(tokens, item, out);
        pos = item.span.hi;
    }
    emit_tokens(tokens, pos, span.hi, out);
}

fn emit_item(tokens: &[Token<'_>], item: &Item, out: &mut String) {
    match &item.kind {
        ItemKind::Fn(func) => {
            match &func.body {
                Some(body) => {
                    emit_tokens(tokens, item.span.lo, body.span.lo, out);
                    emit_expr(tokens, body, out);
                    emit_tokens(tokens, body.span.hi, item.span.hi, out);
                }
                None => emit_tokens(tokens, item.span.lo, item.span.hi, out),
            };
        }
        ItemKind::Mod { items, .. } | ItemKind::Impl { items } | ItemKind::Trait { items } => {
            emit_span_with_items(tokens, item.span, items, out);
        }
        ItemKind::Verbatim => emit_tokens(tokens, item.span.lo, item.span.hi, out),
    }
}

fn emit_expr(tokens: &[Token<'_>], expr: &Expr, out: &mut String) {
    if let ExprKind::ItemStmt(item) = &expr.kind {
        emit_item(tokens, item, out);
        return;
    }
    let mut pos = expr.span.lo;
    for c in &expr.children {
        emit_tokens(tokens, pos, c.span.lo, out);
        emit_expr(tokens, c, out);
        pos = c.span.hi;
    }
    emit_tokens(tokens, pos, expr.span.hi, out);
}

/// Validates the span-nesting invariant: children ordered, non-overlapping
/// and contained in their parent. Returns the first violation found.
pub fn check_spans(tokens: &[Token<'_>], file: &File) -> Result<(), String> {
    fn check_expr(e: &Expr) -> Result<(), String> {
        if e.span.lo > e.span.hi {
            return Err(format!("inverted span {:?}", e.span));
        }
        let mut pos = e.span.lo;
        for c in &e.children {
            if c.span.lo < pos || c.span.hi > e.span.hi {
                return Err(format!(
                    "child {:?} escapes/overlaps in parent {:?} ({:?})",
                    c.span, e.span, e.kind
                ));
            }
            pos = c.span.hi;
            if let ExprKind::ItemStmt(item) = &c.kind {
                check_item(item)?;
            }
            check_expr(c)?;
        }
        Ok(())
    }
    fn check_item(item: &Item) -> Result<(), String> {
        match &item.kind {
            ItemKind::Fn(func) => {
                if let Some(body) = &func.body {
                    if body.span.lo < item.span.lo || body.span.hi > item.span.hi {
                        return Err(format!(
                            "fn `{}` body {:?} escapes item {:?}",
                            func.name, body.span, item.span
                        ));
                    }
                    check_expr(body)?;
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items } | ItemKind::Trait { items } => {
                let mut pos = item.span.lo;
                for it in items {
                    if it.span.lo < pos || it.span.hi > item.span.hi {
                        return Err(format!(
                            "item {:?} escapes/overlaps in {:?}",
                            it.span, item.span
                        ));
                    }
                    pos = it.span.hi;
                    check_item(it)?;
                }
            }
            ItemKind::Verbatim => {}
        }
        Ok(())
    }
    let mut pos = 0usize;
    for item in &file.items {
        if item.span.lo < pos || item.span.hi > tokens.len() {
            return Err(format!("top-level item {:?} escapes/overlaps", item.span));
        }
        pos = item.span.hi;
        check_item(item)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The parser proper.
// ---------------------------------------------------------------------------

struct Parser<'a, 't> {
    toks: &'t [Token<'a>],
}

/// Keywords that may precede `fn` in a signature.
const FN_QUALIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];

impl<'a, 't> Parser<'a, 't> {
    /// Index of the first significant (non-trivia) token at or after `i`,
    /// strictly below `end`.
    fn sig_at(&self, mut i: usize, end: usize) -> Option<usize> {
        while i < end.min(self.toks.len()) {
            if !self.toks[i].is_trivia() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    fn text(&self, i: usize) -> &'a str {
        self.toks[i].text
    }

    fn kind(&self, i: usize) -> TokKind {
        self.toks[i].kind
    }

    /// Given `i` at an opening delimiter (`(`/`[`/`{`), returns the index
    /// one past its matching closer. Unbalanced input runs to `end`.
    fn skip_balanced(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while let Some(s) = self.sig_at(j, end) {
            match self.text(s) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return s + 1;
                    }
                }
                _ => {}
            }
            j = s + 1;
        }
        end
    }

    /// Scans forward from `i` until `stop` matches a token text at
    /// delimiter depth 0, returning that token's index (or `end`).
    fn scan_depth0(&self, i: usize, end: usize, stop: impl Fn(&str) -> bool) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while let Some(s) = self.sig_at(j, end) {
            let t = self.text(s);
            // The stop check comes first: a stop of `{` must halt AT the
            // opener, not descend into it.
            if depth == 0 && stop(t) {
                return s;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return s; // closing our own region: stop here
                    }
                    depth -= 1;
                }
                _ => {}
            }
            j = s + 1;
        }
        end
    }

    /// Skips a generic parameter list starting at `<`. `->`'s `>` does not
    /// close. Bails at `(`, `{` or `;` at angle depth > 0 (malformed).
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while let Some(s) = self.sig_at(j, end) {
            match self.text(s) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">=" => depth -= 1,
                "{" | ";" => return s, // malformed generics: stop cleanly
                _ => {}
            }
            if depth <= 0 {
                return s + 1;
            }
            j = s + 1;
        }
        end
    }

    // -- items ---------------------------------------------------------

    fn parse_items(&mut self, lo: usize, hi: usize) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = lo;
        while let Some(start) = self.sig_at(i, hi) {
            if matches!(self.text(start), ")" | "]" | "}") {
                // A stray closer can only mean our caller's region was
                // over-approximated; consume it as a one-token Verbatim.
                items.push(Item {
                    kind: ItemKind::Verbatim,
                    span: Span::new(start, start + 1),
                });
                i = start + 1;
                continue;
            }
            let item = self.parse_item(start, hi);
            i = item.span.hi.max(start + 1);
            items.push(item);
        }
        items
    }

    /// Parses one item starting at significant token `start`.
    fn parse_item(&mut self, start: usize, hi: usize) -> Item {
        let mut j = start;
        // Outer attributes. An *inner* attribute (`#![...]`) is its own
        // Verbatim item — it belongs to the enclosing scope, not to the
        // next item.
        while let Some(s) = self.sig_at(j, hi) {
            if self.text(s) != "#" {
                break;
            }
            if self.sig_at(s + 1, hi).map(|n| self.text(n)) == Some("!") {
                if j == start {
                    let open = self.sig_at(s + 1, hi).and_then(|b| self.sig_at(b + 1, hi));
                    let end = open.map_or(s + 2, |o| self.skip_balanced(o, hi));
                    return Item {
                        kind: ItemKind::Verbatim,
                        span: Span::new(start, end),
                    };
                }
                break;
            }
            let Some(open) = self.sig_at(s + 1, hi) else {
                break;
            };
            j = self.skip_balanced(open, hi);
        }
        // Visibility.
        if let Some(s) = self.sig_at(j, hi) {
            if self.text(s) == "pub" {
                j = s + 1;
                if let Some(p) = self.sig_at(j, hi) {
                    if self.text(p) == "(" {
                        j = self.skip_balanced(p, hi);
                    }
                }
            }
        }
        // Qualifiers before `fn` (const/unsafe/async/extern "C"). A
        // `const`/`extern`/`unsafe` that does *not* lead to `fn`/`impl`/
        // `trait`/`mod` falls through to the Verbatim arm below.
        let mut k = j;
        while let Some(s) = self.sig_at(k, hi) {
            let t = self.text(s);
            if !FN_QUALIFIERS.contains(&t) {
                break;
            }
            let next = self.sig_at(s + 1, hi);
            let next_text = next.map(|n| self.text(n));
            if t == "const" && next_text != Some("fn") {
                break; // `const NAME: ...` item
            }
            if t == "extern" {
                match next_text {
                    Some(s) if self.kind(next.unwrap_or(0)) == TokKind::Str => {
                        let _ = s;
                        k = next.unwrap_or(s.len()) + 1;
                        continue;
                    }
                    _ => break, // `extern crate` / `extern { ... }` block
                }
            }
            k = s + 1;
        }
        let Some(kw) = self.sig_at(k, hi) else {
            return Item {
                kind: ItemKind::Verbatim,
                span: Span::new(start, hi),
            };
        };
        match self.text(kw) {
            "fn" => self.parse_fn(start, kw, hi),
            "mod" => {
                let name_tok = self.sig_at(kw + 1, hi);
                let name = name_tok.map_or(String::new(), |n| self.text(n).to_string());
                let after = name_tok.map_or(kw + 1, |n| n + 1);
                match self.sig_at(after, hi).map(|s| (s, self.text(s))) {
                    Some((open, "{")) => {
                        let close = self.skip_balanced(open, hi);
                        let items = self.parse_items(open + 1, close.saturating_sub(1));
                        Item {
                            kind: ItemKind::Mod { name, items },
                            span: Span::new(start, close),
                        }
                    }
                    Some((semi, ";")) => Item {
                        kind: ItemKind::Verbatim,
                        span: Span::new(start, semi + 1),
                    },
                    _ => Item {
                        kind: ItemKind::Verbatim,
                        span: Span::new(start, after),
                    },
                }
            }
            "impl" | "trait" => {
                let open = self.scan_depth0(kw + 1, hi, |t| t == "{" || t == ";");
                if open >= hi || self.text(open) != "{" {
                    return Item {
                        kind: ItemKind::Verbatim,
                        span: Span::new(start, (open + 1).min(hi)),
                    };
                }
                let close = self.skip_balanced(open, hi);
                let items = self.parse_items(open + 1, close.saturating_sub(1));
                let kind = if self.text(kw) == "impl" {
                    ItemKind::Impl { items }
                } else {
                    ItemKind::Trait { items }
                };
                Item {
                    kind,
                    span: Span::new(start, close),
                }
            }
            "struct" | "enum" | "union" => {
                // To `;` (unit/tuple struct) or through the brace body.
                let stop = self.scan_depth0(kw + 1, hi, |t| t == ";" || t == "{");
                let end = if stop < hi && self.text(stop) == "{" {
                    self.skip_balanced(stop, hi)
                } else {
                    (stop + 1).min(hi)
                };
                Item {
                    kind: ItemKind::Verbatim,
                    span: Span::new(start, end),
                }
            }
            "macro_rules" => {
                // `macro_rules ! name { ... }`
                let mut m = kw + 1;
                for _ in 0..2 {
                    if let Some(s) = self.sig_at(m, hi) {
                        m = s + 1;
                    }
                }
                let end = match self.sig_at(m, hi) {
                    Some(open) if matches!(self.text(open), "(" | "[" | "{") => {
                        self.skip_balanced(open, hi)
                    }
                    Some(other) => other + 1,
                    None => hi,
                };
                Item {
                    kind: ItemKind::Verbatim,
                    span: Span::new(start, end),
                }
            }
            _ => {
                // use / static / type / extern crate / item macros /
                // recovery: scan to `;` at depth 0, brace bodies matched.
                let stop = self.scan_depth0(kw, hi, |t| t == ";" || t == "{");
                let end = if stop < hi && self.text(stop) == "{" {
                    let close = self.skip_balanced(stop, hi);
                    // An item macro `name! { ... }` needs no `;`.
                    close
                } else {
                    (stop + 1).min(hi)
                };
                Item {
                    kind: ItemKind::Verbatim,
                    span: Span::new(start, end.max(kw + 1)),
                }
            }
        }
    }

    /// Parses `fn name <generics>? (params) -> ret where? { body }` with
    /// `kw` at the `fn` keyword and `start` at the item's first token.
    fn parse_fn(&mut self, start: usize, kw: usize, hi: usize) -> Item {
        let name_tok = self.sig_at(kw + 1, hi);
        let (name, mut j) = match name_tok {
            Some(n) if self.kind(n) == TokKind::Ident => (self.text(n).to_string(), n + 1),
            _ => (String::new(), kw + 1),
        };
        // Generics.
        if let Some(s) = self.sig_at(j, hi) {
            if self.text(s) == "<" {
                j = self.skip_generics(s, hi);
            }
        }
        // Parameters.
        let params = match self.sig_at(j, hi) {
            Some(open) if self.text(open) == "(" => {
                let close = self.skip_balanced(open, hi);
                j = close;
                Span::new(open, close)
            }
            _ => Span::new(j, j),
        };
        // Return type / where clause: scan to the body `{` or a `;`.
        let stop = self.scan_depth0(j, hi, |t| t == "{" || t == ";");
        let (body, end) = if stop < hi && self.text(stop) == "{" {
            let close = self.skip_balanced(stop, hi);
            (Some(self.parse_block(stop, close)), close)
        } else {
            (None, (stop + 1).min(hi))
        };
        Item {
            kind: ItemKind::Fn(FnItem {
                name,
                name_tok: name_tok.unwrap_or(kw),
                params,
                body,
                span: Span::new(start, end),
            }),
            span: Span::new(start, end),
        }
    }

    // -- blocks and statements -----------------------------------------

    /// Parses a block whose `{` is at `open` and whose matching `}` is
    /// just before `close` (i.e. `close == skip_balanced(open, ..)`).
    fn parse_block(&mut self, open: usize, close: usize) -> Expr {
        let inner_hi = close.saturating_sub(1).max(open + 1);
        let children = self.parse_stmts(open + 1, inner_hi);
        Expr {
            kind: ExprKind::Block,
            span: Span::new(open, close),
            children,
        }
    }

    /// Statement soup: `let` bindings, nested items, and expression
    /// statements, flattened into the block's child list in source order.
    fn parse_stmts(&mut self, lo: usize, hi: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut i = lo;
        while let Some(start) = self.sig_at(i, hi) {
            let t = self.text(start);
            if t == ";" {
                i = start + 1;
                continue;
            }
            if t == "let" {
                let node = self.parse_let(start, hi);
                i = node.span.hi.max(start + 1);
                out.push(node);
                continue;
            }
            if self.starts_item_in_stmt(start, hi) {
                let item = self.parse_item(start, hi);
                i = item.span.hi.max(start + 1);
                out.push(Expr {
                    span: item.span,
                    kind: ExprKind::ItemStmt(Box::new(item)),
                    children: Vec::new(),
                });
                continue;
            }
            // Expression statement: parse up to `;` at depth 0.
            let semi = self.scan_depth0(start, hi, |t| t == ";");
            let mut nodes = Vec::new();
            let consumed = self.parse_expr_run(start, semi, &mut nodes);
            out.extend(nodes);
            i = consumed.max(semi.min(hi)).max(start) + 1;
        }
        out
    }

    /// Is the token at `start` the beginning of an item inside a function
    /// body (`fn helper`, `use`, `struct`, `const X`, ...)?
    fn starts_item_in_stmt(&self, start: usize, hi: usize) -> bool {
        match self.text(start) {
            "fn" | "use" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "static"
            | "macro_rules" => true,
            "type" => {
                // `type X = ...;` only; `.type` etc cannot start a stmt.
                true
            }
            "const" => {
                // `const FOO: ...` or `const fn`; `const` closures do not
                // exist, and `const { ... }` blocks are not used here.
                self.sig_at(start + 1, hi)
                    .map(|n| self.text(n) != "{")
                    .unwrap_or(true)
            }
            "unsafe" => {
                // `unsafe fn` in stmt position (rare); `unsafe { ... }` is
                // an expression.
                self.sig_at(start + 1, hi)
                    .map(|n| self.text(n) == "fn")
                    .unwrap_or(false)
            }
            "pub" | "#" => true,
            _ => false,
        }
    }

    /// Parses `let <pat> (= <init>)? ;` starting at the `let` keyword.
    fn parse_let(&mut self, start: usize, hi: usize) -> Expr {
        // Pattern + type: to `=` at depth 0, also counting angle depth so
        // `let x: Foo<Item = T> = ...` finds the right `=`.
        let mut angle = 0i32;
        let mut depth = 0usize;
        let mut eq = None;
        let mut j = start + 1;
        let mut stop = hi;
        while let Some(s) = self.sig_at(j, hi) {
            match self.text(s) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        stop = s;
                        break;
                    }
                    depth -= 1;
                }
                "<" if depth == 0 => angle += 1,
                ">" if depth == 0 => angle = (angle - 1).max(0),
                ">>" if depth == 0 => angle = (angle - 2).max(0),
                "=" if depth == 0 && angle == 0 => {
                    eq = Some(s);
                    break;
                }
                ";" if depth == 0 => {
                    stop = s;
                    break;
                }
                _ => {}
            }
            j = s + 1;
        }
        // Simple-binding name: `let [mut] ident` with `:`/`=`/`;` next.
        let mut name = None;
        let mut name_tok = None;
        let mut n = self.sig_at(start + 1, hi);
        if let Some(s) = n {
            if self.text(s) == "mut" {
                n = self.sig_at(s + 1, hi);
            }
        }
        if let Some(s) = n {
            if self.kind(s) == TokKind::Ident
                && !matches!(self.text(s), "mut")
                && self
                    .sig_at(s + 1, hi)
                    .map(|x| matches!(self.text(x), ":" | "=" | ";"))
                    .unwrap_or(true)
            {
                name = Some(self.text(s).to_string());
                name_tok = Some(s);
            }
        }
        let (children, after_init) = match eq {
            Some(eq) => {
                let semi = self.scan_depth0(eq + 1, hi, |t| t == ";");
                let mut nodes = Vec::new();
                let consumed = self.parse_expr_run(eq + 1, semi, &mut nodes);
                (nodes, consumed.max(semi))
            }
            None => (Vec::new(), stop),
        };
        // Include the trailing `;` when present.
        let end = match self.sig_at(after_init, hi) {
            Some(s) if self.text(s) == ";" => s + 1,
            _ => after_init.min(hi),
        };
        Expr {
            kind: ExprKind::Let { name, name_tok },
            span: Span::new(start, end),
            children,
        }
    }

    // -- expressions ---------------------------------------------------

    /// Parses the token run `[lo, hi)` as expression soup, pushing the
    /// structured nodes found (calls, loops, closures, blocks, ...) onto
    /// `out` in source order. Returns the index it stopped at (normally
    /// `hi`; earlier if a closing delimiter of an outer region appears).
    fn parse_expr_run(&mut self, lo: usize, hi: usize, out: &mut Vec<Expr>) -> usize {
        let mut i = lo;
        // The operand currently being extended by postfix operators, and
        // whether the next token is in expression-start position.
        let mut current: Option<Expr> = None;
        let mut expr_start = true;
        let mut pending_move: Option<usize> = None;

        macro_rules! flush {
            () => {
                if let Some(node) = current.take() {
                    if !matches!(node.kind, ExprKind::Leaf) || !node.children.is_empty() {
                        out.push(node);
                    }
                }
            };
        }

        while let Some(s) = self.sig_at(i, hi) {
            let t = self.text(s);
            match t {
                ")" | "]" | "}" => {
                    // Closing an outer region: stop without consuming.
                    flush!();
                    return s;
                }
                "if" | "match" | "for" | "while" | "loop" => {
                    flush!();
                    let node = match t {
                        "if" => self.parse_if(s, hi),
                        "match" => self.parse_match(s, hi),
                        "for" => self.parse_for(s, hi),
                        "while" => self.parse_while(s, hi),
                        _ => self.parse_loop(s, hi),
                    };
                    i = node.span.hi.max(s + 1);
                    current = Some(node);
                    expr_start = false;
                    pending_move = None;
                }
                "unsafe" => {
                    // `unsafe { ... }` block expression.
                    match self.sig_at(s + 1, hi) {
                        Some(open) if self.text(open) == "{" => {
                            flush!();
                            let close = self.skip_balanced(open, hi);
                            let mut node = self.parse_block(open, close);
                            node.span.lo = s;
                            i = close;
                            current = Some(node);
                            expr_start = false;
                        }
                        _ => i = s + 1,
                    }
                }
                "move" => {
                    pending_move = Some(s);
                    i = s + 1;
                }
                "|" | "||" if expr_start || pending_move.is_some() => {
                    flush!();
                    let node = self.parse_closure(pending_move.unwrap_or(s), s, hi);
                    i = node.span.hi.max(s + 1);
                    current = Some(node);
                    expr_start = false;
                    pending_move = None;
                }
                "{" if expr_start => {
                    flush!();
                    let close = self.skip_balanced(s, hi);
                    current = Some(self.parse_block(s, close));
                    i = close;
                    expr_start = false;
                }
                "(" | "[" => {
                    let close = self.skip_balanced(s, hi);
                    let mut inner = Vec::new();
                    self.parse_expr_run(s + 1, close.saturating_sub(1), &mut inner);
                    if t == "(" && !expr_start {
                        // A call on a structured callee: `f()(x)`, or
                        // arguments right after a path were handled in the
                        // path arm — reaching here means `expr(...)`.
                        let prev = current.take();
                        let callee_span = prev.as_ref().map_or(Span::new(s, s), |p| p.span);
                        let mut children = Vec::new();
                        if let Some(p) = prev {
                            if !matches!(p.kind, ExprKind::Leaf) || !p.children.is_empty() {
                                children.push(p);
                            }
                        }
                        children.extend(inner);
                        current = Some(Expr {
                            kind: ExprKind::Call {
                                callee: callee_span,
                            },
                            span: Span::new(callee_span.lo.min(s), close),
                            children,
                        });
                    } else if !expr_start {
                        // Indexing `expr[...]`: extend the operand.
                        let prev = current.take();
                        let span_lo = prev.as_ref().map_or(s, |p| p.span.lo);
                        let mut children = Vec::new();
                        if let Some(p) = prev {
                            if !matches!(p.kind, ExprKind::Leaf) || !p.children.is_empty() {
                                children.push(p);
                            }
                        }
                        children.extend(inner);
                        current = Some(Expr {
                            kind: ExprKind::Leaf,
                            span: Span::new(span_lo, close),
                            children,
                        });
                    } else {
                        // Group `(a + b)` or array literal `[x; n]`.
                        current = Some(Expr {
                            kind: ExprKind::Leaf,
                            span: Span::new(s, close),
                            children: inner,
                        });
                    }
                    i = close;
                    expr_start = false;
                }
                "." => {
                    let (node, next) = self.parse_postfix_dot(current.take(), s, hi);
                    current = Some(node);
                    i = next;
                    expr_start = false;
                }
                "?" => {
                    if let Some(c) = &mut current {
                        c.span.hi = s + 1;
                    }
                    i = s + 1;
                    expr_start = false;
                }
                _ if self.kind(s) == TokKind::Ident && !is_expr_keyword(t) => {
                    flush!();
                    let (node, next, still_operand) = self.parse_path_operand(s, hi);
                    current = Some(node);
                    i = next;
                    expr_start = !still_operand;
                }
                _ => {
                    // Literals keep the operand position; operators reset
                    // to expression-start and flush the current operand.
                    let operand = matches!(
                        self.kind(s),
                        TokKind::Number
                            | TokKind::Str
                            | TokKind::RawStr
                            | TokKind::Char
                            | TokKind::Byte
                    );
                    if operand {
                        flush!();
                        current = Some(Expr {
                            kind: ExprKind::Leaf,
                            span: Span::new(s, s + 1),
                            children: Vec::new(),
                        });
                        expr_start = false;
                    } else {
                        flush!();
                        expr_start = true;
                    }
                    i = s + 1;
                }
            }
        }
        if let Some(node) = current.take() {
            if !matches!(node.kind, ExprKind::Leaf) || !node.children.is_empty() {
                out.push(node);
            }
        }
        hi
    }

    /// A path operand starting at identifier `s`: `a::b::<T>::c`, then
    /// optionally a call `(`, a macro `!`, or a struct literal `{`.
    /// Returns (node, next index, whether we are still in operand
    /// position).
    fn parse_path_operand(&mut self, s: usize, hi: usize) -> (Expr, usize, bool) {
        let mut j = s + 1;
        // Walk the path: `::` segments and turbofish.
        while let Some(p) = self.sig_at(j, hi) {
            if self.text(p) != "::" {
                break;
            }
            match self.sig_at(p + 1, hi) {
                Some(n) if self.kind(n) == TokKind::Ident => j = n + 1,
                Some(n) if self.text(n) == "<" => j = self.skip_generics(n, hi),
                _ => break,
            }
        }
        let path = Span::new(s, j);
        match self.sig_at(j, hi).map(|n| (n, self.text(n))) {
            Some((open, "(")) => {
                let close = self.skip_balanced(open, hi);
                let mut args = Vec::new();
                self.parse_expr_run(open + 1, close.saturating_sub(1), &mut args);
                (
                    Expr {
                        kind: ExprKind::Call { callee: path },
                        span: Span::new(s, close),
                        children: args,
                    },
                    close,
                    true,
                )
            }
            Some((bang, "!")) => {
                // The macro's short name is the last path segment.
                let name = self.text(path.hi.saturating_sub(1)).to_string();
                let end = match self.sig_at(bang + 1, hi) {
                    Some(open) if matches!(self.text(open), "(" | "[" | "{") => {
                        self.skip_balanced(open, hi)
                    }
                    _ => bang + 1,
                };
                (
                    Expr {
                        kind: ExprKind::Macro { name },
                        span: Span::new(s, end),
                        children: Vec::new(),
                    },
                    end,
                    true,
                )
            }
            Some((open, "{")) => {
                // Struct literal `Path { field: expr, .. }`.
                let close = self.skip_balanced(open, hi);
                let mut inner = Vec::new();
                self.parse_expr_run(open + 1, close.saturating_sub(1), &mut inner);
                (
                    Expr {
                        kind: ExprKind::Leaf,
                        span: Span::new(s, close),
                        children: inner,
                    },
                    close,
                    true,
                )
            }
            _ => (
                Expr {
                    kind: ExprKind::Leaf,
                    span: path,
                    children: Vec::new(),
                },
                j,
                true,
            ),
        }
    }

    /// `.name(args)` / `.name::<T>(args)` method call, or `.field` /
    /// `.0` access. `recv` is the operand parsed so far.
    fn parse_postfix_dot(&mut self, recv: Option<Expr>, dot: usize, hi: usize) -> (Expr, usize) {
        let recv = recv.unwrap_or(Expr {
            kind: ExprKind::Leaf,
            span: Span::new(dot, dot),
            children: Vec::new(),
        });
        let Some(name_tok) = self.sig_at(dot + 1, hi) else {
            let mut r = recv;
            r.span.hi = dot + 1;
            return (r, dot + 1);
        };
        if self.kind(name_tok) != TokKind::Ident {
            // Tuple index `.0` or `.await`-like: extend the operand.
            let mut r = recv;
            r.span.hi = name_tok + 1;
            return (r, name_tok + 1);
        }
        let mut j = name_tok + 1;
        // Turbofish on the method.
        if let Some(p) = self.sig_at(j, hi) {
            if self.text(p) == "::" {
                if let Some(n) = self.sig_at(p + 1, hi) {
                    if self.text(n) == "<" {
                        j = self.skip_generics(n, hi);
                    }
                }
            }
        }
        match self.sig_at(j, hi).map(|n| (n, self.text(n))) {
            Some((open, "(")) => {
                let close = self.skip_balanced(open, hi);
                let mut args = Vec::new();
                self.parse_expr_run(open + 1, close.saturating_sub(1), &mut args);
                let recv_lo = recv.span.lo.min(dot);
                let mut children = vec![recv];
                children.extend(args);
                (
                    Expr {
                        kind: ExprKind::MethodCall {
                            method: self.text(name_tok).to_string(),
                            method_tok: name_tok,
                            dot_tok: dot,
                        },
                        span: Span::new(recv_lo, close),
                        children,
                    },
                    close,
                )
            }
            _ => {
                // Field access: extend the receiver's span, keep children.
                let mut r = recv;
                r.span.hi = name_tok + 1;
                (r, name_tok + 1)
            }
        }
    }

    fn parse_if(&mut self, s: usize, hi: usize) -> Expr {
        let mut children = Vec::new();
        let mut j = s + 1;
        let mut end = s + 1;
        loop {
            // Condition (struct literals are illegal here, so the first
            // `{` at depth 0 opens the arm).
            let open = self.scan_depth0(j, hi, |t| t == "{");
            if open >= hi || self.text(open) != "{" {
                end = end.max(open.min(hi));
                break;
            }
            let mut cond = Vec::new();
            self.parse_expr_run(j, open, &mut cond);
            children.extend(cond);
            let close = self.skip_balanced(open, hi);
            children.push(self.parse_block(open, close));
            end = close;
            // `else` / `else if`.
            match self.sig_at(close, hi) {
                Some(e) if self.text(e) == "else" => match self.sig_at(e + 1, hi) {
                    Some(n) if self.text(n) == "if" => {
                        j = n + 1;
                    }
                    Some(n) if self.text(n) == "{" => {
                        let c2 = self.skip_balanced(n, hi);
                        children.push(self.parse_block(n, c2));
                        end = c2;
                        break;
                    }
                    _ => break,
                },
                _ => break,
            }
        }
        Expr {
            kind: ExprKind::If,
            span: Span::new(s, end),
            children,
        }
    }

    fn parse_match(&mut self, s: usize, hi: usize) -> Expr {
        let open = self.scan_depth0(s + 1, hi, |t| t == "{");
        if open >= hi || self.text(open) != "{" {
            return Expr {
                kind: ExprKind::Leaf,
                span: Span::new(s, open.min(hi)),
                children: Vec::new(),
            };
        }
        let mut children = Vec::new();
        let mut scrutinee = Vec::new();
        self.parse_expr_run(s + 1, open, &mut scrutinee);
        let scrutinee_span = Span::new(s + 1, open);
        children.extend(scrutinee);
        let close = self.skip_balanced(open, hi);
        let body_hi = close.saturating_sub(1);
        // Arms: `pat => value`, value either a block or an expression up
        // to the next depth-0 comma. Patterns are never expression-parsed
        // (or-patterns would otherwise read as closures).
        let mut a = open + 1;
        while a < body_hi {
            let arrow = self.scan_depth0(a, body_hi, |t| t == "=>");
            if arrow >= body_hi || self.text(arrow) != "=>" {
                break;
            }
            let value_start = arrow + 1;
            match self.sig_at(value_start, body_hi) {
                Some(vs) if self.text(vs) == "{" => {
                    let vclose = self.skip_balanced(vs, body_hi);
                    children.push(self.parse_block(vs, vclose));
                    a = vclose;
                    if let Some(c) = self.sig_at(a, body_hi) {
                        if self.text(c) == "," {
                            a = c + 1;
                        }
                    }
                }
                Some(vs) => {
                    let comma = self.scan_depth0(vs, body_hi, |t| t == ",");
                    let mut value = Vec::new();
                    self.parse_expr_run(vs, comma, &mut value);
                    children.extend(value);
                    a = comma + 1;
                }
                None => break,
            }
        }
        Expr {
            kind: ExprKind::Match {
                scrutinee: scrutinee_span,
            },
            span: Span::new(s, close),
            children,
        }
    }

    fn parse_for(&mut self, s: usize, hi: usize) -> Expr {
        let kw_in = self.scan_depth0(s + 1, hi, |t| t == "in");
        if kw_in >= hi || self.text(kw_in) != "in" {
            return Expr {
                kind: ExprKind::Leaf,
                span: Span::new(s, kw_in.min(hi).max(s + 1)),
                children: Vec::new(),
            };
        }
        let pat = Span::new(s + 1, kw_in);
        let open = self.scan_depth0(kw_in + 1, hi, |t| t == "{");
        if open >= hi || self.text(open) != "{" {
            return Expr {
                kind: ExprKind::Leaf,
                span: Span::new(s, open.min(hi)),
                children: Vec::new(),
            };
        }
        let iter = Span::new(kw_in + 1, open);
        let mut children = Vec::new();
        self.parse_expr_run(kw_in + 1, open, &mut children);
        let close = self.skip_balanced(open, hi);
        children.push(self.parse_block(open, close));
        Expr {
            kind: ExprKind::For { pat, iter },
            span: Span::new(s, close),
            children,
        }
    }

    fn parse_while(&mut self, s: usize, hi: usize) -> Expr {
        let open = self.scan_depth0(s + 1, hi, |t| t == "{");
        if open >= hi || self.text(open) != "{" {
            return Expr {
                kind: ExprKind::Leaf,
                span: Span::new(s, open.min(hi)),
                children: Vec::new(),
            };
        }
        let cond = Span::new(s + 1, open);
        let mut children = Vec::new();
        self.parse_expr_run(s + 1, open, &mut children);
        let close = self.skip_balanced(open, hi);
        children.push(self.parse_block(open, close));
        Expr {
            kind: ExprKind::While { cond },
            span: Span::new(s, close),
            children,
        }
    }

    fn parse_loop(&mut self, s: usize, hi: usize) -> Expr {
        let open = self.scan_depth0(s + 1, hi, |t| t == "{");
        if open >= hi || self.text(open) != "{" {
            return Expr {
                kind: ExprKind::Leaf,
                span: Span::new(s, open.min(hi)),
                children: Vec::new(),
            };
        }
        let close = self.skip_balanced(open, hi);
        let children = vec![self.parse_block(open, close)];
        Expr {
            kind: ExprKind::Loop,
            span: Span::new(s, close),
            children,
        }
    }

    /// Parses `move? |params| body` with `bar` at the opening `|`/`||`
    /// and `start` at `move` when present.
    fn parse_closure(&mut self, start: usize, bar: usize, hi: usize) -> Expr {
        let params_end = if self.text(bar) == "||" {
            bar + 1
        } else {
            // Scan for the closing `|` at delimiter depth 0.
            let mut j = bar + 1;
            let mut depth = 0usize;
            let mut end = hi;
            while let Some(s) = self.sig_at(j, hi) {
                match self.text(s) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            end = s; // malformed: treat as params end
                            break;
                        }
                        depth -= 1;
                    }
                    "|" if depth == 0 => {
                        end = s + 1;
                        break;
                    }
                    _ => {}
                }
                j = s + 1;
            }
            end
        };
        // Body: a block, or an expression up to a depth-0 `,` (argument
        // position) or the end of the enclosing region.
        let mut children = Vec::new();
        let end = match self.sig_at(params_end, hi) {
            Some(vs) if self.text(vs) == "{" => {
                let close = self.skip_balanced(vs, hi);
                children.push(self.parse_block(vs, close));
                close
            }
            Some(vs) => {
                // Optional `-> Type` before a braced body.
                let stop = self.scan_depth0(vs, hi, |t| t == ",");
                let consumed = self.parse_expr_run(vs, stop, &mut children);
                consumed.min(stop).max(vs)
            }
            None => params_end,
        };
        Expr {
            kind: ExprKind::Closure,
            span: Span::new(start, end.min(hi).max(start + 1)),
            children,
        }
    }
}

/// Keywords that can appear in expression position but are not operands.
fn is_expr_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "let"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "as"
            | "in"
            | "mut"
            | "ref"
            | "unsafe"
            | "await"
            | "dyn"
            | "impl"
            | "where"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<crate::lexer::Token<'_>>, File) {
        let toks = lex(src);
        let file = parse_file(&toks);
        (toks, file)
    }

    fn roundtrip(src: &str) -> File {
        let toks = lex(src);
        let file = parse_file(&toks);
        check_spans(&toks, &file).unwrap_or_else(|e| panic!("span invariant: {e}\nsrc: {src}"));
        assert_eq!(
            reconstruct(&toks, &file),
            src,
            "parse -> reconstruct must be byte-identical"
        );
        file
    }

    #[test]
    fn parses_fn_items_with_signatures() {
        let file = roundtrip(
            "pub(crate) fn add<T: Into<f32>>(a: T, b: f32) -> f32 where T: Copy { a.into() + b }",
        );
        let fns = file.fns();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "add");
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn finds_fns_through_mods_impls_and_traits() {
        let src = r#"
mod outer {
    impl Foo {
        fn method(&self) {}
    }
    trait Bar {
        fn required(&self);
        fn with_default(&self) { let x = 1; }
    }
    mod inner {
        fn deep() {}
    }
}
fn top() {
    fn nested_helper() {}
}
"#;
        let file = roundtrip(src);
        let names: Vec<&str> = file.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "method",
                "required",
                "with_default",
                "deep",
                "top",
                "nested_helper"
            ]
        );
        // The trait's bodiless declaration has no block.
        let required = file
            .fns()
            .into_iter()
            .find(|f| f.name == "required")
            .unwrap();
        assert!(required.body.is_none());
    }

    #[test]
    fn call_and_method_call_structure() {
        let src = "fn f() { foo(1, bar(2)); x.meth(3).chain(); Vec::<f32>::with_capacity(8); }";
        let (toks, file) = parse(src);
        check_spans(&toks, &file).unwrap();
        let mut calls = Vec::new();
        let mut methods = Vec::new();
        file.walk_exprs(&mut |e| match &e.kind {
            ExprKind::Call { callee } => {
                let text: String = toks[callee.lo..callee.hi]
                    .iter()
                    .filter(|t| !t.is_trivia())
                    .map(|t| t.text)
                    .collect();
                calls.push(text);
            }
            ExprKind::MethodCall { method, .. } => methods.push(method.clone()),
            _ => {}
        });
        assert_eq!(calls, vec!["foo", "bar", "Vec::<f32>::with_capacity"]);
        assert_eq!(methods, vec!["chain", "meth"]); // preorder: outer first
    }

    #[test]
    fn method_call_receiver_is_first_child() {
        let src = "fn f() { handle.join().unwrap(); }";
        let (toks, file) = parse(src);
        let mut joins = 0;
        file.walk_exprs(&mut |e| {
            if let ExprKind::MethodCall { method, .. } = &e.kind {
                if method == "join" {
                    joins += 1;
                    let recv = &e.children[0];
                    let text: String = toks[recv.span.lo..recv.span.hi]
                        .iter()
                        .map(|t| t.text)
                        .collect();
                    assert_eq!(text, "handle");
                }
            }
        });
        assert_eq!(joins, 1);
    }

    #[test]
    fn loops_carry_pattern_iter_and_body() {
        let src = "fn f(m: &M) { for (k, v) in m.iter() { touch(k); } }";
        let (toks, file) = parse(src);
        let mut seen = false;
        file.walk_exprs(&mut |e| {
            if let ExprKind::For { pat, iter } = &e.kind {
                seen = true;
                let pat_text: String = toks[pat.lo..pat.hi].iter().map(|t| t.text).collect();
                assert!(pat_text.contains("(k, v)"), "{pat_text}");
                let iter_text: String = toks[iter.lo..iter.hi].iter().map(|t| t.text).collect();
                assert!(iter_text.contains("m.iter()"), "{iter_text}");
                assert!(e.body_block().is_some());
            }
        });
        assert!(seen);
        roundtrip(src);
    }

    #[test]
    fn closures_are_detected_in_expression_position_only() {
        let src = "fn f() { let c = |x: u32| x + 1; let o = a | b; it.map(move || 0); }";
        let (_, file) = parse(src);
        let mut closures = 0;
        file.walk_exprs(&mut |e| {
            if matches!(e.kind, ExprKind::Closure) {
                closures += 1;
            }
        });
        assert_eq!(closures, 2, "bit-or `a | b` must not read as a closure");
        roundtrip(src);
    }

    #[test]
    fn match_arm_or_patterns_do_not_become_closures() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    match x {
        Some(1) | Some(2) => spawnish(),
        Some(n) => n,
        None => 0,
    }
}
"#;
        let (_, file) = parse(src);
        let mut closures = 0;
        let mut calls = 0;
        file.walk_exprs(&mut |e| match e.kind {
            ExprKind::Closure => closures += 1,
            ExprKind::Call { .. } => calls += 1,
            _ => {}
        });
        assert_eq!(closures, 0);
        assert_eq!(calls, 1, "the arm value call is found");
        roundtrip(src);
    }

    #[test]
    fn let_bindings_expose_simple_names() {
        let src =
            "fn f() { let mut h = spawnish(); let (a, b) = pair(); let t: Foo<Item = T> = mk(); }";
        let (_, file) = parse(src);
        let mut names = Vec::new();
        file.walk_exprs(&mut |e| {
            if let ExprKind::Let { name, .. } = &e.kind {
                names.push(name.clone());
            }
        });
        assert_eq!(
            names,
            vec![Some("h".to_string()), None, Some("t".to_string())]
        );
        roundtrip(src);
    }

    #[test]
    fn macros_are_opaque() {
        let src = "fn f() { assert_eq!(vec![1, { 2 }], x); write!(out, \"{}\", v).ok(); }";
        let (_, file) = parse(src);
        let mut macros = Vec::new();
        file.walk_exprs(&mut |e| {
            if let ExprKind::Macro { name } = &e.kind {
                macros.push(name.clone());
            }
        });
        assert!(macros.contains(&"assert_eq".to_string()), "{macros:?}");
        assert!(macros.contains(&"write".to_string()), "{macros:?}");
        roundtrip(src);
    }

    #[test]
    fn struct_literals_and_verbatim_items_roundtrip() {
        roundtrip("struct S { a: u32 }\nenum E { A, B(u8) }\nuse std::collections::{HashMap, HashSet};\nstatic X: u8 = 0;\nconst Y: &str = \"s\";\ntype Z = Vec<u8>;");
        roundtrip("fn f() -> S { S { a: inner(), b: |x| x } }");
        roundtrip("macro_rules! m { ($x:expr) => { $x + 1 }; }");
        roundtrip("json_struct!(Foo { a, b });");
    }

    #[test]
    fn degenerate_inputs_never_panic_and_roundtrip() {
        for src in [
            "",
            "}",
            "{",
            "fn",
            "fn f(",
            "fn f() {",
            "impl {",
            "let x = ;",
            "fn f() { a..b; 0..=n; }",
            "fn f() { x as f32 + 1; }",
            "fn f() { #![allow(dead_code)] }",
            "#![forbid(unsafe_code)]\nfn f() {}",
            "fn f() { if let Some(x) = y { x } else { z } }",
            "fn f() { while let Some(i) = it.next() { go(i); } }",
            "fn f<'a>(x: &'a [u8]) -> &'a [u8] { &x[1..] }",
            "fn f() { r#match(); let r#type = 1; }",
            "fn f() { s.field.sub.leaf; t.0; u.0.1; }",
            "fn g() { (a)(b); v[i](c); }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn if_else_chains_collect_all_blocks() {
        let src = "fn f(x: u32) { if x > 1 { a(); } else if x > 0 { b(); } else { c(); } }";
        let (_, file) = parse(src);
        let mut blocks = 0;
        file.walk_exprs(&mut |e| {
            if matches!(e.kind, ExprKind::If) {
                blocks = e
                    .children
                    .iter()
                    .filter(|c| matches!(c.kind, ExprKind::Block))
                    .count();
            }
        });
        assert_eq!(blocks, 3);
        roundtrip(src);
    }
}
