//! Structured diagnostics and their text / JSON renderings.

use tdfm_json::{Number, Value};

fn num(n: u64) -> Value {
    Value::Num(Number::UInt(n))
}

/// One finding: where, which rule, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column (multi-byte UTF-8 counts once).
    pub col: u32,
    /// Rule id (`nan-laundering`, `sparsity-skip`, ...).
    pub rule: &'static str,
    /// What is wrong at this site.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub suggestion: String,
}

impl Diagnostic {
    /// `file:line:col: [rule] message` with an indented help line — the
    /// format CI logs and editors both understand.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    help: {}",
            self.file, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("file".to_string(), Value::Str(self.file.clone())),
            ("line".to_string(), num(u64::from(self.line))),
            ("col".to_string(), num(u64::from(self.col))),
            ("rule".to_string(), Value::Str(self.rule.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "suggestion".to_string(),
                Value::Str(self.suggestion.clone()),
            ),
        ])
    }
}

/// The `--json` report: a machine-readable artifact for CI upload.
pub fn report_json(diags: &[Diagnostic], files_checked: usize) -> String {
    let value = Value::Object(vec![
        ("tool".to_string(), Value::Str("tdfm-lint".to_string())),
        ("files_checked".to_string(), num(files_checked as u64)),
        ("findings".to_string(), num(diags.len() as u64)),
        (
            "diagnostics".to_string(),
            Value::Array(diags.iter().map(Diagnostic::to_json).collect()),
        ),
    ]);
    tdfm_json::to_string_pretty(&value)
}

/// The human-readable report; empty string when there is nothing to say.
pub fn report_text(diags: &[Diagnostic], files_checked: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str(&format!(
            "tdfm-lint: {files_checked} files checked, no findings\n"
        ));
    } else {
        out.push_str(&format!(
            "tdfm-lint: {} finding(s) in {} files checked\n",
            diags.len(),
            files_checked
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            file: "crates/tensor/src/ops/gemm.rs".to_string(),
            line: 12,
            col: 9,
            rule: "sparsity-skip",
            message: "zero-skip guard".to_string(),
            suggestion: "remove the guard".to_string(),
        }
    }

    #[test]
    fn render_has_file_line_col_and_rule() {
        let r = sample().render();
        assert!(r.starts_with("crates/tensor/src/ops/gemm.rs:12:9: [sparsity-skip]"));
        assert!(r.contains("help: remove the guard"));
    }

    #[test]
    fn json_report_parses_and_counts() {
        let text = report_json(&[sample()], 3);
        let v = tdfm_json::parse(&text).expect("report is valid JSON");
        assert_eq!(v.get("findings").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("files_checked").and_then(Value::as_u64), Some(3));
        let diags = v
            .get("diagnostics")
            .and_then(Value::as_array)
            .expect("diagnostics array present");
        assert_eq!(
            diags[0].get("rule").and_then(Value::as_str),
            Some("sparsity-skip")
        );
        assert_eq!(diags[0].get("line").and_then(Value::as_u64), Some(12));
    }
}
