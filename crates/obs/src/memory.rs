//! Process memory accounting for run manifests: peak RSS and an opt-in
//! heap-allocation counter.
//!
//! Peak RSS comes from `/proc/self/status` (`VmHWM`, the resident-set
//! high-water mark), so it needs no allocator cooperation; on platforms
//! without procfs it reads as 0 and the manifest field stays at its
//! default.
//!
//! The allocation counter is the other way around: this crate only owns
//! the (safe) bookkeeping — a gate flag and an atomic counter — because
//! installing a `#[global_allocator]` requires `unsafe`, which this crate
//! forbids. A binary or test that wants counting wraps the system
//! allocator in a shim whose `alloc`/`realloc` call [`note_alloc`], then
//! brackets the region of interest with [`set_counting`]. See
//! `crates/nn/tests/zero_alloc.rs` for the canonical shim.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation (or growing reallocation) if counting is
/// on. Called from allocator shims; a no-op (one relaxed load) otherwise,
/// so shims can forward unconditionally.
pub fn note_alloc() {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Opens or closes the counting gate. Allocations only accumulate while
/// the gate is open.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::SeqCst);
}

/// Allocations observed since the last [`reset_allocations`]. Zero when no
/// shim ever counted — the manifest default for runs without one.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Zeroes the allocation counter.
pub fn reset_allocations() {
    ALLOCS.store(0, Ordering::SeqCst);
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|text| parse_vm_hwm(&text))
        .unwrap_or(0)
}

/// Extracts `VmHWM` (reported in kB) from a `/proc/self/status` document.
fn parse_vm_hwm(text: &str) -> Option<u64> {
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_from_status_document() {
        let status = "Name:\ttdfm\nVmPeak:\t  999999 kB\nVmHWM:\t   12345 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(12345 * 1024));
        assert_eq!(parse_vm_hwm("Name:\ttdfm\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_bytes() > 0);
    }

    #[test]
    fn counter_only_moves_while_gate_is_open() {
        // Serialise against any other test touching the global counter.
        reset_allocations();
        note_alloc();
        assert_eq!(allocations(), 0, "gate closed: note_alloc must not count");
        set_counting(true);
        note_alloc();
        note_alloc();
        set_counting(false);
        note_alloc();
        assert_eq!(allocations(), 2);
        reset_allocations();
        assert_eq!(allocations(), 0);
    }
}
