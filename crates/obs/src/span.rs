//! RAII spans and kernel-op timers.
//!
//! A [`Span`] marks a region of work: entering emits a `span_open` event
//! at debug level, dropping emits `span_close` with the wall-clock
//! duration and records that duration into the global metrics registry
//! under `span.<name>`. Spans nest per thread; the dotted path of open
//! spans is attached to every event emitted inside them.
//!
//! [`OpTimer`] is the stripped-down variant for hot kernels (matmul,
//! convolution): no events, no path, just a histogram recording — and
//! when timing is disabled its construction is a single atomic load.

use crate::sink::{timing_enabled, Level};
use crate::{enabled, metrics};
use std::cell::RefCell;
use std::time::Instant;
use tdfm_json::Value;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Dotted path of the spans currently open on this thread (`"grid.cell"`;
/// empty outside any span).
pub fn current_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("."))
}

/// `true` when [`Span::enter`] would produce a live span. The
/// [`crate::span!`] macro checks this before evaluating its fields.
#[inline]
pub fn spans_active() -> bool {
    enabled(Level::Debug) || timing_enabled()
}

/// An RAII region marker — create with [`crate::span!`].
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Opens a span: pushes `name` onto the thread's span path and emits
    /// `span_open` with `fields`.
    pub fn enter(name: &'static str, fields: &[(&str, Value)]) -> Span {
        if !spans_active() {
            return Span(None);
        }
        debug_assert!(
            !name.contains('.'),
            "span names must not contain '.': the dotted path is the \
             hierarchy encoding the profiler reconstructs"
        );
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        if enabled(Level::Debug) {
            crate::sink::emit(Level::Debug, "span_open", fields);
        }
        Span(Some(ActiveSpan {
            name,
            start: Instant::now(),
        }))
    }

    /// A span that records nothing (the disabled branch of
    /// [`crate::span!`]).
    pub fn inactive() -> Span {
        Span(None)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let elapsed = active.start.elapsed();
        metrics::global()
            .histogram(&format!("span.{}", active.name))
            .record(elapsed);
        if enabled(Level::Debug) {
            crate::sink::emit(
                Level::Debug,
                "span_close",
                &[("seconds", crate::fv(elapsed))],
            );
        }
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&active.name), "span drop order");
            stack.pop();
        });
    }
}

/// Wall-clock timer for hot tensor kernels.
///
/// `OpTimer::start("matmul")` records into the global histogram
/// `op.matmul` on drop. When timing is disabled ([`timing_enabled`] is
/// `false`) construction costs one atomic load and drop is free.
#[derive(Debug)]
pub struct OpTimer(Option<(&'static str, Instant)>);

impl OpTimer {
    /// Starts timing the named op (no-op unless timing is enabled).
    #[inline]
    pub fn start(name: &'static str) -> OpTimer {
        if timing_enabled() {
            OpTimer(Some((name, Instant::now())))
        } else {
            OpTimer(None)
        }
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.0.take() {
            metrics::global()
                .histogram(&format!("op.{name}"))
                .record(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_span_leaves_no_path() {
        let span = Span::inactive();
        assert_eq!(current_path(), "");
        drop(span);
        assert_eq!(current_path(), "");
    }
}
