//! Post-hoc span-tree profiling over `TDFM_TRACE` JSONL files.
//!
//! A trace records one `span_close` event per [`crate::Span`] drop, and —
//! because the close is emitted *before* the span pops its thread-local
//! stack — each close carries the full dotted path of the span it ends
//! plus a precise `seconds` field. That is enough to reconstruct the span
//! hierarchy after the fact: aggregate closes by path, and a path is the
//! direct child of the path obtained by dropping its last segment.
//!
//! From the aggregate the profiler computes, per span path:
//!
//! * **total time** — wall-clock seconds spent inside the span, children
//!   included (the sum of its close durations), and
//! * **self time** — total time minus the total time of its direct
//!   children, i.e. the time attributable to the span's own code.
//!
//! Self times are a partition of the wall clock: summed over every path
//! they reconcile (up to float rounding) with the total time of the root
//! spans. `tdfm report --profile` renders the tree and a self-time table;
//! `--collapsed` emits the `a;b;c <microseconds>` collapsed-stack format
//! that flamegraph tooling consumes directly.
//!
//! Span names must not contain `.` — the dotted path is the hierarchy
//! encoding ([`crate::Span::enter`] asserts this).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use tdfm_json::Value;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Dotted path, e.g. `"cell.repetition.fit"`.
    pub path: String,
    /// Number of `span_close` records at this path.
    pub calls: u64,
    /// Summed wall-clock seconds, children included.
    pub total_seconds: f64,
    /// `total_seconds` minus the direct children's `total_seconds`.
    pub self_seconds: f64,
}

impl SpanStats {
    /// Nesting depth (root spans are depth 0).
    pub fn depth(&self) -> usize {
        self.path.matches('.').count()
    }

    /// The last path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('.').next().unwrap_or(&self.path)
    }
}

/// A reconstructed span tree with self/total time attribution.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-path statistics, sorted by path (so parents precede children).
    pub spans: Vec<SpanStats>,
    /// Span paths that opened more often than they closed (crashed or
    /// truncated traces), with the open-minus-close surplus.
    pub unclosed: Vec<(String, u64)>,
}

impl Profile {
    /// Profiles the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unreadable or malformed line; a
    /// `span_close` record without a span path or a numeric
    /// `fields.seconds` is malformed.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Profile, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(path, &text)
    }

    /// Profiles trace text (`path` only labels error messages).
    ///
    /// # Errors
    ///
    /// See [`Profile::from_path`].
    pub fn parse(path: &Path, text: &str) -> Result<Profile, String> {
        let mut totals: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut opens: BTreeMap<String, u64> = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = tdfm_json::parse(line)
                .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), lineno + 1))?;
            let event = record.get("event").and_then(Value::as_str).ok_or_else(|| {
                format!(
                    "{}:{}: record is missing required field `event`",
                    path.display(),
                    lineno + 1
                )
            })?;
            match event {
                "span_open" => {
                    let span = span_path(&record, path, lineno)?;
                    *opens.entry(span).or_default() += 1;
                }
                "span_close" => {
                    let span = span_path(&record, path, lineno)?;
                    let seconds = record
                        .get("fields")
                        .and_then(|f| f.get("seconds"))
                        .and_then(Value::as_f64)
                        .ok_or_else(|| {
                            format!(
                                "{}:{}: span_close without numeric `fields.seconds`",
                                path.display(),
                                lineno + 1
                            )
                        })?;
                    let entry = totals.entry(span).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += seconds;
                }
                _ => {}
            }
        }

        // Self time: subtract each path's total from its parent's. Paths
        // are aggregated, so this is exact per parent (every child close
        // happened inside *some* close of the parent path).
        let mut spans: Vec<SpanStats> = totals
            .iter()
            .map(|(path, &(calls, total))| SpanStats {
                path: path.clone(),
                calls,
                total_seconds: total,
                self_seconds: total,
            })
            .collect();
        let child_totals: Vec<(Option<String>, f64)> = spans
            .iter()
            .map(|s| (parent_path(&s.path), s.total_seconds))
            .collect();
        for (parent, total) in child_totals {
            let Some(parent) = parent else { continue };
            if let Ok(i) = spans.binary_search_by(|s| s.path.as_str().cmp(parent.as_str())) {
                spans[i].self_seconds -= total;
            }
        }

        let unclosed: Vec<(String, u64)> = opens
            .into_iter()
            .filter_map(|(path, n)| {
                let closed = totals.get(&path).map(|&(c, _)| c).unwrap_or(0);
                (n > closed).then(|| (path, n - closed))
            })
            .collect();
        Ok(Profile { spans, unclosed })
    }

    /// Summed total time of the root spans (paths without a parent) — the
    /// profiled wall clock.
    pub fn root_total_seconds(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| !s.path.contains('.'))
            .map(|s| s.total_seconds)
            .sum()
    }

    /// Summed self time over every path. Reconciles with
    /// [`Profile::root_total_seconds`] up to float rounding: self times
    /// partition the root spans' wall clock.
    pub fn total_self_seconds(&self) -> f64 {
        self.spans.iter().map(|s| s.self_seconds).sum()
    }

    /// Renders the span tree plus a table of the heaviest self-time paths.
    pub fn render_table(&self, label: &Path) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== profile: {} ==", label.display());
        if self.spans.is_empty() {
            let _ = writeln!(out, "no span_close records in trace");
            return out;
        }
        let wall = self.root_total_seconds();
        let _ = writeln!(
            out,
            "root span wall clock: {wall:.6}s across {} span path(s)",
            self.spans.len()
        );

        let _ = writeln!(out, "span tree (total incl. children / self):");
        for s in &self.spans {
            let indent = "  ".repeat(s.depth());
            let _ = writeln!(
                out,
                "  {:<40} x{:<7} total {:>11.6}s  self {:>11.6}s",
                format!("{indent}{}", s.name()),
                s.calls,
                s.total_seconds,
                s.self_seconds
            );
        }

        let mut by_self: Vec<&SpanStats> = self.spans.iter().collect();
        by_self.sort_by(|a, b| {
            b.self_seconds
                .total_cmp(&a.self_seconds)
                .then_with(|| a.path.cmp(&b.path))
        });
        let _ = writeln!(out, "self time by span path:");
        for s in &by_self {
            let share = if wall > 0.0 {
                100.0 * s.self_seconds / wall
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:>11.6}s  {:>5.1}%  x{:<7} {}",
                s.self_seconds, share, s.calls, s.path
            );
        }

        for (path, n) in &self.unclosed {
            let _ = writeln!(out, "WARNING: {path} opened {n} time(s) without closing");
        }
        out
    }

    /// Renders collapsed stacks: one `seg;seg;seg <value>` line per path,
    /// value = self time in integer microseconds (the unit flamegraph
    /// scripts expect). Lines are sorted by path; negative-rounding self
    /// times clamp to zero.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let micros = (s.self_seconds.max(0.0) * 1e6).round() as u64;
            let _ = writeln!(out, "{} {}", s.path.replace('.', ";"), micros);
        }
        out
    }
}

fn span_path(record: &Value, path: &Path, lineno: usize) -> Result<String, String> {
    record
        .get("span")
        .and_then(Value::as_str)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .ok_or_else(|| {
            format!(
                "{}:{}: span record without a span path",
                path.display(),
                lineno + 1
            )
        })
}

fn parent_path(path: &str) -> Option<String> {
    path.rsplit_once('.').map(|(parent, _)| parent.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn line(event: &str, span: &str, seconds: Option<f64>) -> String {
        let fields = match seconds {
            Some(s) => format!("{{\"seconds\":{s}}}"),
            None => "{}".to_string(),
        };
        format!(
            "{{\"ts_ms\":1,\"level\":\"debug\",\"span\":\"{span}\",\"event\":\"{event}\",\"fields\":{fields}}}"
        )
    }

    fn profile(lines: &[String]) -> Profile {
        Profile::parse(&PathBuf::from("test.jsonl"), &lines.join("\n")).unwrap()
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let p = profile(&[
            line("span_open", "grid", None),
            line("span_open", "grid.cell", None),
            line("span_close", "grid.cell", Some(3.0)),
            line("span_open", "grid.cell", None),
            line("span_close", "grid.cell", Some(2.0)),
            line("span_close", "grid", Some(10.0)),
        ]);
        assert_eq!(p.spans.len(), 2);
        let grid = &p.spans[0];
        assert_eq!(grid.path, "grid");
        assert_eq!(grid.calls, 1);
        assert_eq!(grid.total_seconds, 10.0);
        assert_eq!(grid.self_seconds, 5.0);
        let cell = &p.spans[1];
        assert_eq!(cell.path, "grid.cell");
        assert_eq!(cell.calls, 2);
        assert_eq!(cell.total_seconds, 5.0);
        assert_eq!(cell.self_seconds, 5.0);
        assert!(p.unclosed.is_empty());
    }

    #[test]
    fn self_times_partition_the_root_wall_clock() {
        let p = profile(&[
            line("span_close", "a.b.c", Some(1.0)),
            line("span_close", "a.b", Some(2.5)),
            line("span_close", "a.d", Some(0.5)),
            line("span_close", "a", Some(4.0)),
            line("span_close", "z", Some(1.0)),
        ]);
        assert_eq!(p.root_total_seconds(), 5.0);
        assert!((p.total_self_seconds() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unclosed_spans_are_reported() {
        let p = profile(&[
            line("span_open", "fit", None),
            line("span_open", "fit", None),
            line("span_close", "fit", Some(1.0)),
        ]);
        assert_eq!(p.unclosed, vec![("fit".to_string(), 1)]);
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let p = profile(&[
            line("span_close", "a.b", Some(0.0021)),
            line("span_close", "a", Some(0.005)),
        ]);
        assert_eq!(p.render_collapsed(), "a 2900\na;b 2100\n");
    }

    #[test]
    fn malformed_close_is_an_error() {
        let text = line("span_close", "fit", None);
        let err = Profile::parse(&PathBuf::from("t.jsonl"), &text).unwrap_err();
        assert!(err.contains("seconds"), "{err}");
        let text = line("span_close", "", Some(1.0));
        let err = Profile::parse(&PathBuf::from("t.jsonl"), &text).unwrap_err();
        assert!(err.contains("span"), "{err}");
    }

    #[test]
    fn table_lists_tree_and_self_times() {
        let p = profile(&[
            line("span_close", "grid.cell", Some(3.0)),
            line("span_close", "grid", Some(4.0)),
        ]);
        let table = p.render_table(&PathBuf::from("t.jsonl"));
        assert!(table.contains("root span wall clock: 4.000000s"), "{table}");
        assert!(table.contains("grid.cell"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
    }
}
