//! `tdfm report`: aggregate run manifests and JSONL traces into a
//! human-readable summary (slowest cells, golden-cache hit rate,
//! histogram percentiles, event counts).
//!
//! Parsing is strict — a malformed manifest or a trace line that is not
//! valid JSON is an error, which is what lets CI use `tdfm report` as the
//! "trace is valid JSONL and the manifest parses" assertion.

use crate::manifest::RunManifest;
use crate::sink::Level;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use tdfm_json::Value;

/// How many slowest cells a manifest section lists.
const SLOWEST: usize = 5;

/// How many provenance records a manifest section lists.
const PROVENANCE_TOP: usize = 10;

/// Renders a summary of the given manifest / trace files.
///
/// A file with a `.jsonl` extension — or whose first line is a complete
/// JSON object carrying a `ts_ms` field — is treated as a JSONL trace
/// where every non-empty line must parse as a JSON object with `ts_ms`,
/// `level` and `event` fields; anything else is parsed as a
/// [`RunManifest`].
///
/// # Errors
///
/// Returns a description of the first unreadable or malformed input.
pub fn render_report(paths: &[impl AsRef<Path>]) -> Result<String, String> {
    if paths.is_empty() {
        return Err("report needs at least one manifest or trace file".to_string());
    }
    let mut out = String::new();
    for path in paths {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if looks_like_trace(path, &text) {
            let summary = TraceSummary::parse(path, &text)?;
            summary.render(&mut out, path);
        } else {
            let manifest = RunManifest::load(path)?;
            render_manifest(&mut out, path, &manifest);
        }
    }
    Ok(out)
}

fn looks_like_trace(path: &Path, text: &str) -> bool {
    if path.extension().is_some_and(|e| e == "jsonl") {
        return true;
    }
    // A pretty-printed manifest's first line is a lone `{`, which does not
    // parse on its own; a trace's first line is a complete record.
    text.lines()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| tdfm_json::parse(l).ok())
        .is_some_and(|v| v.get("ts_ms").is_some())
}

fn render_manifest(out: &mut String, path: &Path, m: &RunManifest) {
    let _ = writeln!(out, "== manifest: {} ({}) ==", m.name, path.display());
    let _ = writeln!(
        out,
        "cells: {}   scale: {}   thread budget: {}   total cell wall: {:.2}s",
        m.cells.len(),
        m.scale,
        m.thread_budget,
        m.total_wall_seconds()
    );

    let lookups = m.metrics.counter("golden_lookups").unwrap_or(0);
    let trained = m.metrics.counter("golden_trainings").unwrap_or(0);
    let disk = m.metrics.counter("golden_disk_hits").unwrap_or(0);
    if lookups > 0 {
        let hits = lookups.saturating_sub(trained);
        let _ = writeln!(
            out,
            "golden cache: {} lookups, {} trained, {} disk hits — hit rate {:.1}%",
            lookups,
            trained,
            disk,
            100.0 * hits as f64 / lookups as f64
        );
    }

    if !m.cells.is_empty() {
        let mut by_wall: Vec<_> = m.cells.iter().collect();
        by_wall.sort_by(|a, b| b.wall_seconds.total_cmp(&a.wall_seconds));
        let _ = writeln!(out, "slowest cells:");
        for cell in by_wall.iter().take(SLOWEST) {
            let _ = writeln!(
                out,
                "  {:>9.3}s  [{:>3}] {} / {} / {} / {}",
                cell.wall_seconds, cell.index, cell.dataset, cell.model, cell.technique, cell.fault
            );
        }
    }

    let live: Vec<_> = m
        .metrics
        .histograms
        .iter()
        .filter(|h| h.count > 0)
        .collect();
    if !live.is_empty() {
        let _ = writeln!(out, "histograms:");
        for h in live {
            let _ = writeln!(
                out,
                "  {:<24} count {:>7}  mean {:>10.4}s  p50 {:>10.4}s  p90 {:>10.4}s  p99 {:>10.4}s  max {:>10.4}s",
                h.name, h.count, h.mean_seconds, h.p50_seconds, h.p90_seconds, h.p99_seconds, h.max_seconds
            );
        }
    }
    let counters: Vec<_> = m.metrics.counters.iter().filter(|c| c.value > 0).collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in counters {
            let _ = writeln!(out, "  {:<24} {:>10}", c.name, c.value);
        }
    }
    if m.peak_rss_bytes > 0 || m.allocations > 0 {
        let _ = writeln!(
            out,
            "memory: peak RSS {:.1} MiB, {} heap allocation(s) counted",
            m.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            m.allocations
        );
    }
    if !m.provenance.is_empty() {
        let _ = writeln!(
            out,
            "injection provenance ({} record(s), top {} by |AD|·count):",
            m.provenance.len(),
            PROVENANCE_TOP.min(m.provenance.len())
        );
        let mut ranked: Vec<_> = m.provenance.iter().collect();
        // Damage-weighted count surfaces the faults that both fired often
        // and sat in a cell whose predictions actually moved.
        ranked.sort_by(|a, b| {
            let weight = |r: &crate::manifest::ProvenanceRecord| r.ad_mean.abs() * r.count as f64;
            weight(b)
                .total_cmp(&weight(a))
                .then(a.cell.cmp(&b.cell))
                .then(a.kind.cmp(&b.kind))
                .then(a.target.cmp(&b.target))
                .then(a.bucket.cmp(&b.bucket))
        });
        for r in ranked.iter().take(PROVENANCE_TOP) {
            let target = if r.kind == "bitflip" {
                format!("{} bits {}-{}", r.target, r.bit_lo, r.bit_hi)
            } else {
                r.target.clone()
            };
            let _ = writeln!(
                out,
                "  [{:>3}] {:<11} {:<12} {:<22} {:<12} x{:<8} AD {:+.4}",
                r.cell, r.source, r.kind, target, r.bucket, r.count, r.ad_mean
            );
        }
    }
    out.push('\n');
}

/// Aggregated view of one JSONL trace file.
struct TraceSummary {
    records: usize,
    by_level: BTreeMap<String, usize>,
    by_event: BTreeMap<String, usize>,
    span_seconds: BTreeMap<String, (usize, f64)>,
    first_ts_ms: u64,
    last_ts_ms: u64,
    errors: Vec<String>,
}

impl TraceSummary {
    fn parse(path: &Path, text: &str) -> Result<TraceSummary, String> {
        let mut summary = TraceSummary {
            records: 0,
            by_level: BTreeMap::new(),
            by_event: BTreeMap::new(),
            span_seconds: BTreeMap::new(),
            first_ts_ms: u64::MAX,
            last_ts_ms: 0,
            errors: Vec::new(),
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = tdfm_json::parse(line)
                .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), lineno + 1))?;
            let ts = record
                .get("ts_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| missing(path, lineno, "ts_ms"))?;
            let level = record
                .get("level")
                .and_then(Value::as_str)
                .ok_or_else(|| missing(path, lineno, "level"))?;
            if Level::parse(level).is_none() {
                return Err(format!(
                    "{}:{}: unknown level `{level}`",
                    path.display(),
                    lineno + 1
                ));
            }
            let event = record
                .get("event")
                .and_then(Value::as_str)
                .ok_or_else(|| missing(path, lineno, "event"))?;

            summary.records += 1;
            summary.first_ts_ms = summary.first_ts_ms.min(ts);
            summary.last_ts_ms = summary.last_ts_ms.max(ts);
            *summary.by_level.entry(level.to_string()).or_default() += 1;
            *summary.by_event.entry(event.to_string()).or_default() += 1;
            if event == "span_close" {
                let span = record
                    .get("span")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let seconds = record
                    .get("fields")
                    .and_then(|f| f.get("seconds"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                let entry = summary.span_seconds.entry(span).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += seconds;
            }
            if level == "error" {
                let mut msg = event.to_string();
                if let Some(Value::Object(fields)) = record.get("fields") {
                    for (k, v) in fields {
                        let _ = write!(msg, " {k}={}", tdfm_json::to_string(v));
                    }
                }
                summary.errors.push(msg);
            }
        }
        Ok(summary)
    }

    fn render(&self, out: &mut String, path: &Path) {
        let _ = writeln!(out, "== trace: {} ==", path.display());
        let wall = if self.records > 0 {
            (self.last_ts_ms.saturating_sub(self.first_ts_ms)) as f64 / 1e3
        } else {
            0.0
        };
        let _ = writeln!(out, "{} records spanning {:.2}s", self.records, wall);
        if !self.by_level.is_empty() {
            let levels: Vec<String> = self
                .by_level
                .iter()
                .map(|(l, n)| format!("{l} x{n}"))
                .collect();
            let _ = writeln!(out, "levels: {}", levels.join(", "));
        }
        if !self.by_event.is_empty() {
            let _ = writeln!(out, "events:");
            let mut events: Vec<_> = self.by_event.iter().collect();
            events.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (event, n) in events {
                let _ = writeln!(out, "  {event:<24} x{n}");
            }
        }
        if !self.span_seconds.is_empty() {
            let _ = writeln!(out, "span wall-clock totals:");
            for (span, (n, secs)) in &self.span_seconds {
                let span = if span.is_empty() { "(root)" } else { span };
                let _ = writeln!(out, "  {span:<24} x{n:<6} total {secs:>9.3}s");
            }
        }
        for e in &self.errors {
            let _ = writeln!(out, "ERROR: {e}");
        }
        out.push('\n');
    }
}

fn missing(path: &Path, lineno: usize, field: &str) -> String {
    format!(
        "{}:{}: record is missing required field `{field}`",
        path.display(),
        lineno + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tdfm-obs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn reports_a_valid_trace() {
        let path = tmp(
            "ok.jsonl",
            concat!(
                "{\"ts_ms\":1000,\"level\":\"info\",\"span\":\"\",\"event\":\"grid_cell\",\"fields\":{\"cell\":1}}\n",
                "{\"ts_ms\":2500,\"level\":\"debug\",\"span\":\"cell\",\"event\":\"span_close\",\"fields\":{\"seconds\":1.5}}\n",
                "{\"ts_ms\":2600,\"level\":\"error\",\"span\":\"\",\"event\":\"loss_nonfinite\",\"fields\":{\"loss\":null}}\n",
            ),
        );
        let report = render_report(&[&path]).unwrap();
        assert!(report.contains("3 records"), "{report}");
        assert!(report.contains("grid_cell"), "{report}");
        assert!(report.contains("ERROR: loss_nonfinite"), "{report}");
        assert!(report.contains("1.500s"), "{report}");
    }

    #[test]
    fn rejects_invalid_trace_lines() {
        let path = tmp("bad.jsonl", "this is not json\n");
        assert!(render_report(&[&path]).is_err());
        let path = tmp("short.jsonl", "{\"level\":\"info\"}\n");
        let err = render_report(&[&path]).unwrap_err();
        assert!(err.contains("ts_ms"), "{err}");
        let path = tmp(
            "lvl.jsonl",
            "{\"ts_ms\":1,\"level\":\"loud\",\"event\":\"x\"}\n",
        );
        assert!(render_report(&[&path]).unwrap_err().contains("loud"));
    }

    #[test]
    fn empty_input_list_is_an_error() {
        assert!(render_report(&Vec::<std::path::PathBuf>::new()).is_err());
    }

    #[test]
    fn manifest_report_shows_provenance_and_memory() {
        use crate::manifest::{ProvenanceRecord, RunManifest};
        let mut m = RunManifest::new("prov", "tiny", 2);
        m.peak_rss_bytes = 64 * 1024 * 1024;
        m.allocations = 12;
        let record = |cell, kind: &str, bucket: &str, count, ad_mean| ProvenanceRecord {
            cell,
            source: "data".into(),
            kind: kind.into(),
            target: "-".into(),
            bit_lo: 0,
            bit_hi: 0,
            bucket: bucket.into(),
            count,
            ad_mean,
        };
        // The damaging cell must outrank the quiet one despite fewer faults.
        m.provenance
            .push(record(1, "Mislabelling", "idx 0-63", 5, 0.4));
        m.provenance.push(record(0, "Removal", "-", 100, 0.001));
        let path = tmp("prov.manifest.json", &m.to_json());
        let report = render_report(&[&path]).unwrap();
        assert!(report.contains("peak RSS 64.0 MiB"), "{report}");
        assert!(report.contains("12 heap allocation(s)"), "{report}");
        let mislabel = report.find("Mislabelling").unwrap();
        let removal = report.find("Removal").unwrap();
        assert!(mislabel < removal, "damage-weighted order\n{report}");
        assert!(report.contains("idx 0-63"), "{report}");
    }
}
