//! The global event sink: level filtering, stderr lines, JSONL traces.
//!
//! The sink is configured once from the environment on first use
//! (`TDFM_LOG` for the stderr level, `TDFM_TRACE` for the JSON-lines
//! file) or explicitly via [`configure`]. The *disabled* fast path —
//! [`enabled`] returning `false` — costs one relaxed atomic load, so
//! instrumentation can sit on hot paths; the [`crate::event!`] macro
//! additionally skips evaluating and formatting its fields entirely when
//! the level is filtered out.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};
use tdfm_json::{Number, Value};

/// Event severity, from always-important to firehose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The run is crashing or producing wrong data.
    Error = 1,
    /// Something degraded but the run continues.
    Warn = 2,
    /// Run-level progress (grid cells, cache summaries).
    Info = 3,
    /// Per-epoch / per-span detail.
    Debug = 4,
    /// Per-batch firehose.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as written in `TDFM_LOG` and trace records.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `TDFM_LOG` value. `None` means "off"; unknown strings are
    /// also off (a misspelt filter must not turn the firehose on).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// `MAX_LEVEL` sentinel: the sink has not been initialised yet.
const UNINIT: u8 = u8::MAX;

/// Highest level any output wants (0 = everything off).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether span/op timings are collected: 0 uninit, 1 off, 2 on.
static TIMING: AtomicU8 = AtomicU8::new(0);

struct SinkState {
    stderr_max: u8,
    trace_max: u8,
    trace: Option<File>,
    capture: Option<Vec<String>>,
}

static STATE: Mutex<Option<SinkState>> = Mutex::new(None);

/// Explicit sink configuration ([`configure`]); the env-var path covers
/// normal runs, this covers tests and tools.
#[derive(Debug, Default)]
pub struct ObsConfig {
    /// Most verbose level printed to stderr (`None` = nothing).
    pub stderr_level: Option<Level>,
    /// Where to write JSONL trace records (`None` = no trace file).
    pub trace_path: Option<PathBuf>,
    /// Collect stderr lines into a buffer ([`take_captured`]) instead of
    /// writing them — test support.
    pub capture: bool,
    /// Force span/op timing collection on, whatever the levels say.
    pub timing: bool,
}

/// Replaces the sink configuration (flushing any previous trace file).
///
/// # Errors
///
/// Returns the I/O error if the trace file cannot be created.
pub fn configure(cfg: ObsConfig) -> std::io::Result<()> {
    let trace = match &cfg.trace_path {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            Some(File::create(path)?)
        }
        None => None,
    };
    let stderr_max = cfg.stderr_level.map(|l| l as u8).unwrap_or(0);
    let trace_max = if trace.is_some() {
        Level::Trace as u8
    } else {
        0
    };
    let state = SinkState {
        stderr_max,
        trace_max,
        trace,
        capture: cfg.capture.then(Vec::new),
    };
    let timing = cfg.timing || stderr_max >= Level::Debug as u8 || trace_max > 0;
    let mut guard = STATE.lock().expect("sink state poisoned");
    *guard = Some(state);
    MAX_LEVEL.store(stderr_max.max(trace_max), Ordering::Relaxed);
    TIMING.store(if timing { 2 } else { 1 }, Ordering::Relaxed);
    Ok(())
}

/// Initialises from `TDFM_LOG` / `TDFM_TRACE` if nothing has configured
/// the sink yet, and returns the current max level.
fn init_from_env() -> u8 {
    let mut guard = STATE.lock().expect("sink state poisoned");
    if guard.is_none() {
        let stderr_level = std::env::var("TDFM_LOG")
            .ok()
            .and_then(|v| Level::parse(&v));
        let trace_path = std::env::var("TDFM_TRACE").ok().map(PathBuf::from);
        let trace = trace_path.and_then(|path| match File::create(&path) {
            Ok(f) => Some(f),
            Err(e) => {
                // tdfm-lint: allow(raw-eprintln, the sink cannot route its own bootstrap failure through itself; stderr is the only channel left)
                eprintln!("tdfm-obs: cannot create TDFM_TRACE file {path:?}: {e}");
                None
            }
        });
        let stderr_max = stderr_level.map(|l| l as u8).unwrap_or(0);
        let trace_max = if trace.is_some() {
            Level::Trace as u8
        } else {
            0
        };
        let timing = stderr_max >= Level::Debug as u8 || trace_max > 0;
        MAX_LEVEL.store(stderr_max.max(trace_max), Ordering::Relaxed);
        TIMING.store(if timing { 2 } else { 1 }, Ordering::Relaxed);
        *guard = Some(SinkState {
            stderr_max,
            trace_max,
            trace,
            capture: None,
        });
    }
    MAX_LEVEL.load(Ordering::Relaxed)
}

/// `true` when an event at `level` would reach any output.
///
/// This is the instrumentation fast path: when everything is off it is a
/// single relaxed atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == UNINIT { init_from_env() } else { max };
    (level as u8) <= max
}

/// `true` when span / kernel-op wall-clock timings should be collected.
///
/// One relaxed atomic load on the hot path, exactly like [`enabled`].
#[inline]
pub fn timing_enabled() -> bool {
    match TIMING.load(Ordering::Relaxed) {
        0 => {
            init_from_env();
            TIMING.load(Ordering::Relaxed) == 2
        }
        t => t == 2,
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

fn render_field(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => tdfm_json::to_string(other),
    }
}

/// Delivers one event to the configured outputs. Call through the
/// [`crate::event!`] macro, which performs the [`enabled`] check and only
/// then builds the field list.
pub fn emit(level: Level, event: &str, fields: &[(&str, Value)]) {
    let span_path = crate::span::current_path();
    let mut guard = STATE.lock().expect("sink state poisoned");
    let Some(state) = guard.as_mut() else { return };

    if (level as u8) <= state.stderr_max {
        let mut line = format!("[{:<5}] ", level.name());
        if !span_path.is_empty() {
            line.push_str(&span_path);
            line.push(' ');
        }
        line.push_str(event);
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            // tdfm-lint: allow(lock-held-across-call, render_field is a pure formatter; the sink state lock is the only lock in this crate)
            line.push_str(&render_field(value));
        }
        match &mut state.capture {
            Some(buf) => buf.push(line),
            // tdfm-lint: allow(raw-eprintln, this IS the sink's stderr back end — the TDFM_LOG-filtered human channel every event! call lands in)
            None => eprintln!("{line}"),
        }
    }

    if (level as u8) <= state.trace_max {
        if let Some(file) = &mut state.trace {
            let record = Value::Object(vec![
                ("ts_ms".to_string(), Value::Num(Number::UInt(now_ms()))),
                ("level".to_string(), Value::Str(level.name().to_string())),
                ("span".to_string(), Value::Str(span_path)),
                ("event".to_string(), Value::Str(event.to_string())),
                (
                    "fields".to_string(),
                    Value::Object(
                        fields
                            .iter()
                            .map(|(k, v)| (k.to_string(), v.clone()))
                            .collect(),
                    ),
                ),
            ]);
            let mut line = tdfm_json::to_string(&record);
            line.push('\n');
            // One write per record: a crashed run keeps every line emitted
            // before the crash (the loss_nonfinite post-mortem relies on
            // this).
            if file.write_all(line.as_bytes()).is_err() {
                state.trace = None;
                state.trace_max = 0;
            }
        }
    }
}

/// Flushes the trace file (events are written unbuffered, so this is a
/// plain `File::flush` — cheap, and the loss-nonfinite path calls it
/// before panicking for good measure).
pub fn flush() {
    let mut guard = STATE.lock().expect("sink state poisoned");
    if let Some(state) = guard.as_mut() {
        if let Some(file) = &mut state.trace {
            let _ = file.flush();
        }
    }
}

/// Drains the captured stderr lines (empty unless configured with
/// `capture: true`).
pub fn take_captured() -> Vec<String> {
    let mut guard = STATE.lock().expect("sink state poisoned");
    guard
        .as_mut()
        .and_then(|s| s.capture.as_mut())
        .map(std::mem::take)
        .unwrap_or_default()
}

/// Converts a value into a JSON field for [`crate::event!`] /
/// [`crate::span!`].
pub fn fv<T: IntoField>(value: T) -> Value {
    value.into_field()
}

/// Types usable as event field values.
pub trait IntoField {
    /// The JSON representation of the field.
    fn into_field(self) -> Value;
}

impl IntoField for Value {
    fn into_field(self) -> Value {
        self
    }
}

impl IntoField for f32 {
    fn into_field(self) -> Value {
        Value::Num(Number::F32(self))
    }
}

impl IntoField for f64 {
    fn into_field(self) -> Value {
        Value::Num(Number::F64(self))
    }
}

impl IntoField for bool {
    fn into_field(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoField for &str {
    fn into_field(self) -> Value {
        Value::Str(self.to_string())
    }
}

impl IntoField for String {
    fn into_field(self) -> Value {
        Value::Str(self)
    }
}

impl IntoField for std::time::Duration {
    fn into_field(self) -> Value {
        Value::Num(Number::F64(self.as_secs_f64()))
    }
}

macro_rules! field_uint {
    ($($ty:ty),+) => {
        $(impl IntoField for $ty {
            fn into_field(self) -> Value {
                Value::Num(Number::UInt(self as u64))
            }
        })+
    };
}

field_uint!(u8, u16, u32, u64, usize);

macro_rules! field_int {
    ($($ty:ty),+) => {
        $(impl IntoField for $ty {
            fn into_field(self) -> Value {
                let v = self as i64;
                if v < 0 {
                    Value::Num(Number::Int(v))
                } else {
                    Value::Num(Number::UInt(v as u64))
                }
            }
        })+
    };
}

field_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse(" INFO "), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn field_values_serialise_like_their_types() {
        assert_eq!(tdfm_json::to_string(&fv(1.5f32)), "1.5");
        assert_eq!(tdfm_json::to_string(&fv(3usize)), "3");
        assert_eq!(tdfm_json::to_string(&fv(-2i64)), "-2");
        assert_eq!(tdfm_json::to_string(&fv("x")), "\"x\"");
        assert_eq!(tdfm_json::to_string(&fv(true)), "true");
    }
}
