//! Named counters and fixed-bucket duration histograms.
//!
//! A [`Registry`] is a map from metric names to lock-free instruments:
//! every increment or recording after the first lookup is a handful of
//! atomic operations, so instruments can sit on hot paths. Call sites that
//! fire per batch or per kernel should cache the [`Counter`]/[`Histogram`]
//! handle (e.g. in a `OnceLock`) instead of looking it up each time — the
//! lookup takes the registry's map lock.
//!
//! Histograms use fixed power-of-two buckets over nanoseconds
//! ([`HIST_BUCKETS`] of them), which keeps recording allocation-free and
//! makes snapshots mergeable; quantiles are linearly interpolated within
//! the bucket containing the requested rank (and clamped to the observed
//! maximum, so a single-recording histogram reports its exact value).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
use tdfm_json::json_struct;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts durations whose
/// nanosecond value is `< 2^(i+1)` (and at least `2^i`, except bucket 0).
/// `2^47` ns is about 39 hours, far beyond any single cell or sweep.
pub const HIST_BUCKETS: usize = 48;

/// A fixed-bucket histogram of wall-clock durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        // Bucket i covers [2^i, 2^(i+1)) ns; 0 and 1 ns share bucket 0.
        ((64 - nanos.max(1).leading_zeros()) as usize - 1).min(HIST_BUCKETS - 1)
    }

    /// Upper bound of bucket `i` in seconds.
    fn bucket_upper_seconds(i: usize) -> f64 {
        (1u64 << (i + 1).min(63)) as f64 * 1e-9
    }

    /// Lower bound of bucket `i` in seconds (bucket 0 starts at zero:
    /// 0 ns and 1 ns recordings both land there).
    fn bucket_lower_seconds(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (1u64 << i.min(63)) as f64 * 1e-9
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a duration given in (non-negative, finite) seconds.
    pub fn record_secs(&self, seconds: f64) {
        if seconds.is_finite() && seconds >= 0.0 {
            self.record(Duration::from_secs_f64(seconds));
        }
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean recorded duration in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9 / count as f64
    }

    /// Largest recorded duration in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// The `q`-quantile (`0 < q <= 1`) in seconds, estimated by linear
    /// interpolation inside the power-of-two bucket holding that rank: the
    /// rank's recordings are assumed uniform over the bucket, so rank `r`
    /// of `n` in-bucket recordings sits at fraction `(r - 0.5) / n` of the
    /// bucket's width. The estimate is clamped to the observed maximum —
    /// a single-recording histogram therefore reports its exact value for
    /// every quantile instead of its bucket's upper bound. Returns 0 when
    /// empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        if rank >= count {
            // The top rank is the observed maximum itself; interpolating
            // would report the middle of its bucket instead.
            return self.max_seconds();
        }
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket > 0 && seen + in_bucket >= rank {
                let lo = Self::bucket_lower_seconds(i);
                let hi = Self::bucket_upper_seconds(i);
                let frac = ((rank - seen) as f64 - 0.5) / in_bucket as f64;
                let estimate = lo + frac * (hi - lo);
                return estimate.min(self.max_seconds());
            }
            seen += in_bucket;
        }
        self.max_seconds()
    }

    /// Snapshot of this histogram under `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            mean_seconds: self.mean_seconds(),
            p50_seconds: self.quantile_seconds(0.50),
            p90_seconds: self.quantile_seconds(0.90),
            p99_seconds: self.quantile_seconds(0.99),
            max_seconds: self.max_seconds(),
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

json_struct!(CounterSnapshot { name, value });

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recordings.
    pub count: u64,
    /// Mean duration, seconds.
    pub mean_seconds: f64,
    /// Median, interpolated within its bucket, seconds.
    pub p50_seconds: f64,
    /// 90th percentile, interpolated within its bucket, seconds.
    pub p90_seconds: f64,
    /// 99th percentile, interpolated within its bucket, seconds.
    pub p99_seconds: f64,
    /// Largest recording, seconds.
    pub max_seconds: f64,
}

json_struct!(HistogramSnapshot {
    name,
    count,
    mean_seconds,
    p50_seconds,
    p90_seconds,
    p99_seconds,
    max_seconds
});

/// Every instrument of a [`Registry`] at one point in time, sorted by
/// name — the `metrics` section of a run manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSnapshot>,
}

json_struct!(MetricsSnapshot {
    counters,
    histograms
});

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Merges `other` into `self`: counters with the same name add up,
    /// histograms with the same name keep the one with more recordings
    /// (bucket-level merging is not needed by any current caller).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => {
                    if h.count > mine.count {
                        *mine = h.clone();
                    }
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

/// A named collection of counters and histograms.
///
/// The process-wide registry is [`crate::global`]; components that need
/// isolated counts (e.g. one experiment runner among several in the same
/// process) own their own `Registry`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Snapshots every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Drops every instrument (tests only — outstanding handles keep
    /// counting into instruments that are no longer reachable by name).
    pub fn clear(&self) {
        self.counters.lock().expect("counter map poisoned").clear();
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .clear();
    }
}

/// The process-wide metrics registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").add(4);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_summarises() {
        let h = Histogram::new();
        for micros in [1u64, 2, 4, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 4);
        let mean = h.mean_seconds();
        assert!((mean - 1007e-6 / 4.0).abs() < 1e-9, "mean {mean}");
        // p50 interpolates inside the bucket of the 2 µs sample
        // ([1024 ns, 2048 ns)) instead of snapping to its upper bound.
        let p50 = h.quantile_seconds(0.5);
        assert!((1024e-9..2048e-9).contains(&p50), "p50 {p50}");
        // The top rank is the exact maximum, not a bucket bound.
        assert!((h.quantile_seconds(1.0) - 1e-3).abs() < 1e-9);
        assert!(h.max_seconds() >= 1e-3);
    }

    #[test]
    fn quantiles_interpolate_within_the_winning_bucket() {
        // 100 recordings spread over bucket [1024 ns, 2048 ns).
        let h = Histogram::new();
        for i in 0..100u64 {
            h.record(Duration::from_nanos(1024 + i * 10));
        }
        let p50 = h.quantile_seconds(0.50);
        let p90 = h.quantile_seconds(0.90);
        // Rank 50 of 100 sits at fraction (50 - 0.5)/100 of the bucket.
        let expected_p50 = 1024e-9 + 0.495 * 1024e-9;
        assert!((p50 - expected_p50).abs() < 1e-12, "p50 {p50}");
        assert!(p50 < p90, "interpolated ranks are monotonic");
        // High ranks clamp to the observed maximum (2014 ns) rather than
        // extrapolating past every recording.
        assert!((h.quantile_seconds(0.99) - 2014e-9).abs() < 1e-12);
    }

    #[test]
    fn single_recording_reports_its_exact_value_at_every_quantile() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(1500));
        for q in [0.5, 0.9, 0.99, 1.0] {
            let got = h.quantile_seconds(q);
            assert!((got - 1500e-9).abs() < 1e-12, "q={q} got {got}");
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_exactly_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_seconds(q), 0.0, "q={q}");
        }
        assert_eq!(h.snapshot("empty").p50_seconds, 0.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_seconds(), 0.0);
        assert_eq!(h.quantile_seconds(0.99), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_serialisable() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(2);
        reg.histogram("lat").record(Duration::from_millis(3));
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        assert_eq!(snap.counter("zeta"), Some(1));
        let text = tdfm_json::to_string(&snap);
        let back: MetricsSnapshot = tdfm_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_adds_counters_and_keeps_fuller_histograms() {
        let a = Registry::new();
        a.counter("x").add(2);
        a.histogram("h").record(Duration::from_millis(1));
        let b = Registry::new();
        b.counter("x").add(3);
        b.counter("y").inc();
        let h = b.histogram("h");
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(2));
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("x"), Some(5));
        assert_eq!(snap.counter("y"), Some(1));
        assert_eq!(snap.histograms[0].count, 2);
    }
}
