#![forbid(unsafe_code)]
//! # tdfm-obs
//!
//! Zero-external-dependency observability for the TDFM reproduction:
//! structured tracing, metrics, and run manifests, built on std and
//! [`tdfm_json`] only (the workspace builds fully offline).
//!
//! The paper's Section IV-E claims rest on runtime accounting; this crate
//! is the substrate that makes long fault-injection sweeps debuggable and
//! measurable, in the spirit of the per-injection logs that TensorFI and
//! PyTorchFI-style campaigns ship.
//!
//! ## Pieces
//!
//! * **Events** — [`event!`] delivers levelled, structured records to a
//!   global sink. `TDFM_LOG=error|warn|info|debug|trace` selects what is
//!   printed to stderr as human-readable lines; `TDFM_TRACE=<path>`
//!   additionally writes *every* record as one JSON object per line
//!   (JSONL), serialised with [`tdfm_json`]. With both unset, the
//!   disabled path is one relaxed atomic load and the event's fields are
//!   never evaluated or formatted.
//! * **Spans** — [`span!`] returns an RAII [`Span`] that nests per
//!   thread, stamps contained events with its dotted path, and records
//!   its wall-clock duration into the metrics registry under
//!   `span.<name>`. [`OpTimer`] is the events-free variant for hot
//!   tensor kernels.
//! * **Metrics** — [`metrics::Registry`] holds named [`metrics::Counter`]s
//!   and fixed-bucket duration [`metrics::Histogram`]s; [`global`] is the
//!   process-wide registry, and components needing isolated counts (the
//!   experiment runner) own private registries. Snapshots serialise to
//!   JSON for manifests.
//! * **Manifests** — [`RunManifest`] records a run's configuration grid,
//!   seeds, thread budget, per-cell wall times and a metrics snapshot;
//!   harness binaries write one next to their results, and
//!   [`render_report`] (the `tdfm report` subcommand) aggregates
//!   manifests and traces into a summary.
//!
//! Observability output goes only to stderr and side files: results files
//! stay byte-identical whether or not tracing is enabled.
//!
//! ## Example
//!
//! ```
//! use tdfm_obs::{event, span, Level};
//!
//! let _run = span!("demo", cells = 4usize);
//! for cell in 0..4usize {
//!     let _cell = span!("cell", index = cell);
//!     event!(Level::Debug, "cell_done", cell = cell, ad = 0.12f32);
//! }
//! tdfm_obs::global().counter("cells_completed").add(4);
//! ```

pub mod figure;
pub mod manifest;
pub mod memory;
pub mod metrics;
pub mod profile;
pub mod report;
mod sink;
mod span;

pub use figure::{Heatmap, LineChart, Series};
pub use manifest::{ManifestCell, ProvenanceRecord, RunManifest};
pub use metrics::{global, MetricsSnapshot, Registry};
pub use profile::{Profile, SpanStats};
pub use report::render_report;
pub use sink::{configure, emit, enabled, flush, fv, take_captured, timing_enabled};
pub use sink::{IntoField, Level, ObsConfig};
pub use span::{current_path, spans_active, OpTimer, Span};

/// Emits a structured event at the given [`Level`].
///
/// Fields are `key = value` pairs; values can be numbers, strings, bools
/// or [`std::time::Duration`]s (see [`IntoField`]). When the level is
/// filtered out the field expressions are **not evaluated** — the whole
/// call is one atomic load.
///
/// ```
/// use tdfm_obs::{event, Level};
/// event!(Level::Info, "epoch", epoch = 3usize, loss = 0.25f32);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::emit($level, $name, &[
                $( (stringify!($key), $crate::fv($val)), )*
            ]);
        }
    };
}

/// Opens an RAII [`Span`]: events emitted while it is alive carry its
/// dotted path, and its wall-clock duration lands in the global metrics
/// registry under `span.<name>` when it drops.
///
/// Field expressions are only evaluated when spans are active
/// (`TDFM_LOG=debug`/`trace`, a trace file, or forced timing).
///
/// ```
/// use tdfm_obs::span;
/// let _guard = span!("train", epochs = 10usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::spans_active() {
            $crate::Span::enter($name, &[
                $( (stringify!($key), $crate::fv($val)), )*
            ])
        } else {
            $crate::Span::inactive()
        }
    };
}
