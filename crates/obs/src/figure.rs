//! Deterministic, zero-dependency SVG figures: line/scatter charts and
//! grid heatmaps.
//!
//! The renderer exists so the paper-style figures (AD vs fault rate per
//! technique, fault-rate × bit-position heatmaps) can be committed and
//! drift-gated like the result JSONs. That forces a determinism
//! discipline stricter than "looks the same":
//!
//! * **No wall-clock, no randomness** — output is a pure function of the
//!   chart description; there are no timestamps, generator comments or
//!   random ids.
//! * **Fixed geometry** — the viewBox is computed only from the input's
//!   shape (series/row/column counts), never from the environment.
//! * **Stable float formatting** — every coordinate and label goes
//!   through fixed-precision `format!`, which is platform-independent,
//!   so re-rendering on any machine (and at any `TDFM_THREADS`) is
//!   byte-identical.
//! * **Input-order iteration** — series, rows and columns render in the
//!   order given; nothing passes through a hash map.
//!
//! Colors are the Okabe–Ito palette (colorblind-safe, print-safe), the
//! same one the bench bar charts use.

use std::fmt::Write as _;

/// Okabe–Ito qualitative palette.
const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#999999",
];

/// Escapes the five XML-special characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Fixed-precision coordinate: two decimals is sub-pixel at this scale.
fn px(v: f64) -> String {
    format!("{v:.2}")
}

/// The smallest "nice" value (1, 2, 2.5 or 5 times a power of ten) that
/// is `>= v`; the y-axis upper bound.
fn nice_ceil(v: f64) -> f64 {
    if !(v.is_finite()) || v <= 0.0 {
        return 1.0;
    }
    let exp = v.log10().floor();
    let base = 10f64.powf(exp);
    for mult in [1.0, 2.0, 2.5, 5.0, 10.0] {
        if mult * base >= v - 1e-12 {
            return mult * base;
        }
    }
    10.0 * base
}

/// One plotted series: a label, `(x, y)` points, and optional symmetric
/// error half-widths (empty = no error bars; otherwise one per point).
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in drawing order.
    pub points: Vec<(f64, f64)>,
    /// 95%-CI half-widths per point; empty for none.
    pub err: Vec<f64>,
}

/// A line/scatter chart with optional error bars and a legend.
#[derive(Debug, Clone, Default)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Explicit x ticks as `(position, label)`; empty = ticks at every
    /// distinct x value, labelled with the value itself.
    pub x_ticks: Vec<(f64, String)>,
    /// The plotted series, drawn (and colored) in order.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Renders the chart as a standalone SVG document.
    pub fn render(&self) -> String {
        const PLOT_W: f64 = 430.0;
        const PLOT_H: f64 = 300.0;
        const LEFT: f64 = 62.0;
        const TOP: f64 = 44.0;
        const BOTTOM: f64 = 58.0;
        let legend_w = 170.0;
        let width = LEFT + PLOT_W + 14.0 + legend_w;
        let height = TOP + PLOT_H + BOTTOM;

        let ticks: Vec<(f64, String)> = if self.x_ticks.is_empty() {
            let mut xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup();
            xs.into_iter().map(|x| (x, format!("{x}"))).collect()
        } else {
            self.x_ticks.clone()
        };
        let (x_min, x_max) = match (ticks.first(), ticks.last()) {
            (Some(a), Some(b)) if b.0 > a.0 => (a.0, b.0),
            (Some(a), _) => (a.0 - 0.5, a.0 + 0.5),
            _ => (0.0, 1.0),
        };
        let y_max = nice_ceil(
            self.series
                .iter()
                .flat_map(|s| {
                    s.points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| p.1 + s.err.get(i).copied().unwrap_or(0.0))
                })
                .fold(0.0, f64::max),
        );
        let sx = |x: f64| LEFT + (x - x_min) / (x_max - x_min) * PLOT_W;
        let sy = |y: f64| TOP + PLOT_H - (y / y_max) * PLOT_H;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {} {}\" \
             font-family=\"Helvetica, Arial, sans-serif\">",
            px(width),
            px(height)
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\" \
             font-weight=\"bold\">{}</text>",
            px(LEFT + PLOT_W / 2.0),
            esc(&self.title)
        );

        // Frame, gridlines and y ticks (five divisions of the nice max).
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" \
             stroke=\"#333333\" stroke-width=\"1\"/>",
            px(LEFT),
            px(TOP),
            px(PLOT_W),
            px(PLOT_H)
        );
        for i in 0..=5u32 {
            let y_val = y_max * f64::from(i) / 5.0;
            let y = sy(y_val);
            if i > 0 && i < 5 {
                let _ = writeln!(
                    svg,
                    "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#DDDDDD\" \
                     stroke-width=\"0.5\"/>",
                    px(LEFT),
                    px(y),
                    px(LEFT + PLOT_W),
                    px(y)
                );
            }
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"end\">{:.2}</text>",
                px(LEFT - 6.0),
                px(y + 4.0),
                y_val
            );
        }
        for (x_val, label) in &ticks {
            let x = sx(*x_val);
            let _ = writeln!(
                svg,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333333\" \
                 stroke-width=\"1\"/>",
                px(x),
                px(TOP + PLOT_H),
                px(x),
                px(TOP + PLOT_H + 4.0)
            );
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\">{}</text>",
                px(x),
                px(TOP + PLOT_H + 18.0),
                esc(label)
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
            px(LEFT + PLOT_W / 2.0),
            px(TOP + PLOT_H + 40.0),
            esc(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {})\">{}</text>",
            px(TOP + PLOT_H / 2.0),
            px(TOP + PLOT_H / 2.0),
            esc(&self.y_label)
        );

        // Series: error bars under the polyline, markers on top.
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (i, &(x, y)) in series.points.iter().enumerate() {
                let Some(&e) = series.err.get(i) else {
                    continue;
                };
                if e <= 0.0 {
                    continue;
                }
                let (cx, lo, hi) = (sx(x), sy((y - e).max(0.0)), sy(y + e));
                let _ = writeln!(
                    svg,
                    "<line x1=\"{cx}\" y1=\"{lo}\" x2=\"{cx}\" y2=\"{hi}\" stroke=\"{color}\" \
                     stroke-width=\"1\"/>\
                     <line x1=\"{l}\" y1=\"{lo}\" x2=\"{r}\" y2=\"{lo}\" stroke=\"{color}\" \
                     stroke-width=\"1\"/>\
                     <line x1=\"{l}\" y1=\"{hi}\" x2=\"{r}\" y2=\"{hi}\" stroke=\"{color}\" \
                     stroke-width=\"1\"/>",
                    cx = px(cx),
                    lo = px(lo),
                    hi = px(hi),
                    l = px(cx - 3.5),
                    r = px(cx + 3.5),
                );
            }
            if series.points.len() > 1 {
                let path: Vec<String> = series
                    .points
                    .iter()
                    .map(|&(x, y)| format!("{},{}", px(sx(x)), px(sy(y))))
                    .collect();
                let _ = writeln!(
                    svg,
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                     stroke-width=\"1.8\"/>",
                    path.join(" ")
                );
            }
            for &(x, y) in &series.points {
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{}\" cy=\"{}\" r=\"3.2\" fill=\"{color}\"/>",
                    px(sx(x)),
                    px(sy(y))
                );
            }
        }

        // Legend, right of the plot.
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let y = TOP + 10.0 + si as f64 * 20.0;
            let _ = writeln!(
                svg,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{color}\" \
                 stroke-width=\"1.8\"/>\
                 <circle cx=\"{}\" cy=\"{}\" r=\"3.2\" fill=\"{color}\"/>\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>",
                px(LEFT + PLOT_W + 18.0),
                px(y),
                px(LEFT + PLOT_W + 42.0),
                px(y),
                px(LEFT + PLOT_W + 30.0),
                px(y),
                px(LEFT + PLOT_W + 48.0),
                px(y + 4.0),
                esc(&series.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A grid heatmap: rows × columns of optional values on a sequential
/// white → vermillion color scale (missing cells render gray).
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    /// Chart title.
    pub title: String,
    /// Caption under the column labels.
    pub x_label: String,
    /// Caption left of the row labels.
    pub y_label: String,
    /// Column headers, in order.
    pub col_labels: Vec<String>,
    /// Row headers, in order.
    pub row_labels: Vec<String>,
    /// `cells[row][col]`; `None` renders as "no data".
    pub cells: Vec<Vec<Option<f64>>>,
    /// Multiplies values in cell text (e.g. 100.0 to print percents).
    pub value_scale: f64,
}

impl Heatmap {
    /// Sequential color for `v` on `[0, vmax]`: white at 0 to Okabe–Ito
    /// vermillion `#D55E00` at `vmax`.
    fn color(v: f64, vmax: f64) -> String {
        let t = if vmax > 0.0 {
            (v / vmax).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let lerp = |a: f64, b: f64| (a + (b - a) * t).round() as u8;
        format!(
            "#{:02X}{:02X}{:02X}",
            lerp(255.0, 0xD5 as f64),
            lerp(255.0, 0x5E as f64),
            lerp(255.0, 0x00 as f64)
        )
    }

    /// Renders the heatmap as a standalone SVG document.
    pub fn render(&self) -> String {
        let rows = self.row_labels.len();
        let cols = self.col_labels.len();
        // Wide grids (e.g. 32 bit positions) get narrow, text-free cells.
        let cell_w: f64 = if cols > 12 { 18.0 } else { 64.0 };
        let cell_h: f64 = 26.0;
        let left: f64 = 150.0;
        let top: f64 = 64.0;
        let width = left + cols as f64 * cell_w + 30.0;
        let height = top + rows as f64 * cell_h + 74.0;
        let vmax = self
            .cells
            .iter()
            .flatten()
            .flatten()
            .fold(0.0f64, |m, &v| m.max(v));

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {} {}\" \
             font-family=\"Helvetica, Arial, sans-serif\">",
            px(width),
            px(height)
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"24\" font-size=\"15\" text-anchor=\"middle\" \
             font-weight=\"bold\">{}</text>",
            px(left + cols as f64 * cell_w / 2.0),
            esc(&self.title)
        );
        for (c, label) in self.col_labels.iter().enumerate() {
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\">{}</text>",
                px(left + (c as f64 + 0.5) * cell_w),
                px(top - 8.0),
                esc(label)
            );
        }
        for (r, label) in self.row_labels.iter().enumerate() {
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\">{}</text>",
                px(left - 8.0),
                px(top + (r as f64 + 0.5) * cell_h + 3.0),
                esc(label)
            );
        }
        for r in 0..rows {
            for c in 0..cols {
                let value = self
                    .cells
                    .get(r)
                    .and_then(|row| row.get(c))
                    .copied()
                    .flatten();
                let x = left + c as f64 * cell_w;
                let y = top + r as f64 * cell_h;
                let fill = match value {
                    Some(v) => Self::color(v, vmax),
                    None => "#EEEEEE".to_string(),
                };
                let _ = writeln!(
                    svg,
                    "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\" \
                     stroke=\"#FFFFFF\" stroke-width=\"1\"/>",
                    px(x),
                    px(y),
                    px(cell_w),
                    px(cell_h)
                );
                if cell_w >= 40.0 {
                    let text = match value {
                        Some(v) => format!("{:.2}", v * self.value_scale),
                        None => "-".to_string(),
                    };
                    // Dark cells get white text for contrast.
                    let dark = value.is_some_and(|v| vmax > 0.0 && v / vmax > 0.55);
                    let _ = writeln!(
                        svg,
                        "<text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\" \
                         fill=\"{}\">{}</text>",
                        px(x + cell_w / 2.0),
                        px(y + cell_h / 2.0 + 3.0),
                        if dark { "#FFFFFF" } else { "#333333" },
                        esc(&text)
                    );
                }
            }
        }
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
            px(left + cols as f64 * cell_w / 2.0),
            px(top + rows as f64 * cell_h + 24.0),
            esc(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {})\">{}</text>",
            px(top + rows as f64 * cell_h / 2.0),
            px(top + rows as f64 * cell_h / 2.0),
            esc(&self.y_label)
        );

        // Color-bar legend: ten swatches from 0 to vmax.
        let bar_y = top + rows as f64 * cell_h + 38.0;
        for i in 0..10u32 {
            let _ = writeln!(
                svg,
                "<rect x=\"{}\" y=\"{}\" width=\"16\" height=\"10\" fill=\"{}\"/>",
                px(left + f64::from(i) * 16.0),
                px(bar_y),
                Self::color(vmax * f64::from(i) / 9.0, vmax)
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\">0</text>\
             <text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\">{:.2}</text>",
            px(left),
            px(bar_y + 22.0),
            px(left + 160.0),
            px(bar_y + 22.0),
            vmax * self.value_scale
        );
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart {
            title: "AD vs fault rate".to_string(),
            x_label: "fault %".to_string(),
            y_label: "accuracy delta".to_string(),
            x_ticks: vec![],
            series: vec![
                Series {
                    label: "Baseline".to_string(),
                    points: vec![(10.0, 0.1), (30.0, 0.2), (50.0, 0.4)],
                    err: vec![0.02, 0.03, 0.05],
                },
                Series {
                    label: "Ensemble <LC>".to_string(),
                    points: vec![(10.0, 0.05), (30.0, 0.1), (50.0, 0.15)],
                    err: vec![],
                },
            ],
        }
    }

    #[test]
    fn line_chart_renders_deterministically() {
        let a = chart().render();
        let b = chart().render();
        assert_eq!(a, b);
        assert!(a.starts_with("<svg xmlns"), "{}", &a[..60]);
        assert!(a.ends_with("</svg>\n"));
        assert!(a.contains("polyline"));
        assert!(a.contains("Baseline"));
        // XML-special characters in labels are escaped.
        assert!(a.contains("Ensemble &lt;LC&gt;"));
        assert!(!a.contains("Ensemble <LC>"));
    }

    #[test]
    fn line_chart_has_no_timestamps_or_ids() {
        let svg = chart().render();
        assert!(!svg.contains("id="), "ids invite nondeterminism: {svg}");
        for needle in ["date", "generator", "creat"] {
            assert!(
                !svg.to_lowercase().contains(needle),
                "suspicious `{needle}` in output"
            );
        }
    }

    #[test]
    fn single_point_series_render_markers_and_error_bars() {
        let chart = LineChart {
            title: "one point".to_string(),
            x_ticks: vec![(0.0, "Baseline".to_string()), (1.0, "LS".to_string())],
            series: vec![Series {
                label: "AD".to_string(),
                points: vec![(0.0, 0.1), (1.0, 0.2)],
                err: vec![0.01, 0.02],
            }],
            ..LineChart::default()
        };
        let svg = chart.render();
        assert!(svg.contains("circle"));
        assert!(svg.contains(">Baseline</text>"));
    }

    #[test]
    fn nice_ceil_picks_round_upper_bounds() {
        assert_eq!(nice_ceil(0.43), 0.5);
        assert_eq!(nice_ceil(0.5), 0.5);
        assert_eq!(nice_ceil(0.09), 0.1);
        assert_eq!(nice_ceil(1.2), 2.0);
        assert_eq!(nice_ceil(0.0), 1.0);
        assert_eq!(nice_ceil(f64::NAN), 1.0);
    }

    #[test]
    fn heatmap_renders_missing_cells_and_color_scale() {
        let map = Heatmap {
            title: "AD".to_string(),
            x_label: "technique".to_string(),
            y_label: "plan".to_string(),
            col_labels: vec!["BL".to_string(), "LS".to_string()],
            row_labels: vec!["w x1".to_string(), "w x4".to_string()],
            cells: vec![vec![Some(0.1), Some(0.9)], vec![Some(0.0), None]],
            value_scale: 100.0,
        };
        let a = map.render();
        assert_eq!(a, map.render(), "heatmap must be deterministic");
        // vmax cell is pure vermillion, zero is white, missing is gray.
        assert!(a.contains("#D55E00"), "{a}");
        assert!(a.contains("#FFFFFF"));
        assert!(a.contains("#EEEEEE"));
        assert!(a.contains(">90.00<"), "value text scaled to percent: {a}");
        assert!(a.contains(">-<"), "missing cell placeholder: {a}");
    }

    #[test]
    fn wide_heatmaps_drop_cell_text() {
        let map = Heatmap {
            title: "bits".to_string(),
            col_labels: (0..32).map(|b| b.to_string()).collect(),
            row_labels: vec!["x1".to_string()],
            cells: vec![(0..32).map(|b| Some(b as f64 / 31.0)).collect()],
            value_scale: 1.0,
            ..Heatmap::default()
        };
        let svg = map.render();
        assert!(!svg.contains(">0.50<"), "narrow cells must skip text");
        assert!(svg.contains(">31</text>"), "column headers stay: {svg}");
    }
}
