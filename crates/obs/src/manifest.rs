//! Run manifests: the machine-readable record of what a run executed.
//!
//! Every harness binary and `tdfm sweep` writes a `*.manifest.json` next
//! to its results: the configuration grid (one [`ManifestCell`] per
//! experiment cell, with its wall time), the seeds, the thread budget and
//! a [`MetricsSnapshot`] of every counter and histogram at the end of the
//! run. `tdfm report` aggregates one or more manifests (and JSONL traces)
//! into a human summary.

use crate::metrics::MetricsSnapshot;
use std::path::Path;
use tdfm_json::json_struct;

/// One experiment cell as recorded in a manifest. All identity fields are
/// plain strings so the manifest schema is independent of the experiment
/// crates (and readable by any JSON tool).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestCell {
    /// Position in the run's grid (0-based).
    pub index: usize,
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Mitigation technique name.
    pub technique: String,
    /// Human-readable fault label (`"Mislabelling 30%"`).
    pub fault: String,
    /// Experiment scale name.
    pub scale: String,
    /// Repetitions run for this cell.
    pub repetitions: usize,
    /// Base seed of the cell.
    pub seed: u64,
    /// Wall-clock seconds spent in this cell (training + inference summed
    /// over repetitions).
    pub wall_seconds: f64,
}

json_struct!(ManifestCell {
    index,
    dataset,
    model,
    technique,
    fault,
    scale,
    repetitions,
    seed,
    wall_seconds
});

/// One injection-provenance record of a run: how many faults of one kind
/// landed on one target of one cell, joined with that cell's mean
/// accuracy delta — so the manifest records which faults *mattered*, not
/// just how many fired. Written by the experiment runners from the
/// injector-level records; all identity fields are plain strings for the
/// same schema-independence reasons as [`ManifestCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Index of the [`ManifestCell`] these faults belong to.
    pub cell: usize,
    /// Fault axis: `"data"`, `"weights"` or `"activations"`.
    pub source: String,
    /// Fault kind (`"Mislabelling"`, `"bitflip"`, ...).
    pub kind: String,
    /// What was hit (`"tensor 3"`, `"all layers"`, `"-"` for data faults).
    pub target: String,
    /// Lowest bit flipped (inclusive; 0 for data faults).
    pub bit_lo: u32,
    /// Highest bit flipped (inclusive; 0 for data faults).
    pub bit_hi: u32,
    /// Sample-index bucket (`"idx 0-63"`) or `"-"`.
    pub bucket: String,
    /// Faults that fired with this key, summed over the cell's
    /// repetitions.
    pub count: u64,
    /// The owning cell's mean accuracy delta — the join that turns raw
    /// counts into "did these faults move the model".
    pub ad_mean: f64,
}

json_struct!(ProvenanceRecord {
    cell,
    source,
    kind,
    target,
    bit_lo,
    bit_hi,
    bucket,
    count,
    ad_mean
});

/// The manifest of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run name (usually the harness binary or sweep output stem).
    pub name: String,
    /// Seconds since the Unix epoch when the manifest was written.
    pub created_unix: u64,
    /// Scale the run executed at.
    pub scale: String,
    /// Worker-thread budget the run saw (`TDFM_THREADS` resolution).
    pub thread_budget: usize,
    /// Every cell of the run's grid, in execution-grid order.
    pub cells: Vec<ManifestCell>,
    /// Counter and histogram snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Per-cell injection provenance (which faults fired where, joined
    /// with each cell's AD). Empty for runs whose harness predates the
    /// field — it parses as a default on old manifests.
    pub provenance: Vec<ProvenanceRecord>,
    /// Peak resident set size of the process at manifest time, bytes
    /// (`VmHWM` on Linux; 0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Heap allocations observed by the counting allocator, when a
    /// harness opted in (0 otherwise).
    pub allocations: u64,
}

json_struct!(RunManifest {
    name,
    created_unix,
    scale,
    thread_budget,
    cells,
    metrics,
    provenance = default,
    peak_rss_bytes = default,
    allocations = default
});

impl RunManifest {
    /// Creates an empty manifest stamped with the current time.
    pub fn new(name: impl Into<String>, scale: impl Into<String>, thread_budget: usize) -> Self {
        let created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            name: name.into(),
            created_unix,
            scale: scale.into(),
            thread_budget,
            cells: Vec::new(),
            metrics: MetricsSnapshot::default(),
            provenance: Vec::new(),
            peak_rss_bytes: crate::memory::peak_rss_bytes(),
            allocations: crate::memory::allocations(),
        }
    }

    /// Total wall seconds across all cells.
    pub fn total_wall_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_seconds).sum()
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        tdfm_json::to_string_pretty(self)
    }

    /// Writes the manifest to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a manifest.
    ///
    /// # Errors
    ///
    /// Returns a description of the filesystem or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        tdfm_json::from_str(&text).map_err(|e| format!("bad manifest {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use std::time::Duration;

    fn sample() -> RunManifest {
        let reg = Registry::new();
        reg.counter("golden_lookups").add(4);
        reg.counter("golden_trainings").add(1);
        reg.histogram("span.cell")
            .record(Duration::from_millis(120));
        let mut m = RunManifest::new("unit", "Tiny", 4);
        m.cells.push(ManifestCell {
            index: 0,
            dataset: "cifar-10".into(),
            model: "resnet50".into(),
            technique: "Ensemble".into(),
            fault: "Mislabelling 30%".into(),
            scale: "Tiny".into(),
            repetitions: 2,
            seed: 42,
            wall_seconds: 1.25,
        });
        m.metrics = reg.snapshot();
        m
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let back: RunManifest = tdfm_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.metrics.counter("golden_lookups"), Some(4));
        assert!((back.total_wall_seconds() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn manifest_writes_and_loads() {
        let dir = std::env::temp_dir().join("tdfm-obs-manifest-test");
        let path = dir.join("run.manifest.json");
        let m = sample();
        m.write(&path).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provenance_and_memory_fields_round_trip() {
        let mut m = sample();
        m.peak_rss_bytes = 123_456_789;
        m.allocations = 42;
        m.provenance.push(ProvenanceRecord {
            cell: 0,
            source: "data".into(),
            kind: "Mislabelling".into(),
            target: "-".into(),
            bit_lo: 0,
            bit_hi: 0,
            bucket: "idx 0-63".into(),
            count: 17,
            ad_mean: 0.25,
        });
        let back: RunManifest = tdfm_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.provenance[0].count, 17);
    }

    #[test]
    fn manifests_without_new_fields_still_parse() {
        // A manifest written before provenance / memory accounting existed
        // must load with defaults, not fail.
        let mut m = sample();
        m.provenance.clear();
        let mut json = m.to_json();
        for field in ["\"provenance\"", "\"peak_rss_bytes\"", "\"allocations\""] {
            assert!(json.contains(field));
        }
        // Strip the new fields out of the serialised form.
        let value: tdfm_json::Value = tdfm_json::from_str(&json).unwrap();
        let tdfm_json::Value::Object(mut map) = value else {
            panic!("manifest is an object")
        };
        map.retain(|(k, _)| !matches!(k.as_str(), "provenance" | "peak_rss_bytes" | "allocations"));
        json = tdfm_json::to_string(&tdfm_json::Value::Object(map));
        let back: RunManifest = tdfm_json::from_str(&json).unwrap();
        assert!(back.provenance.is_empty());
        assert_eq!(back.peak_rss_bytes, 0);
        assert_eq!(back.allocations, 0);
        assert_eq!(back.cells, m.cells);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("tdfm-obs-manifest-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.manifest.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(RunManifest::load(&path).is_err());
        assert!(RunManifest::load(dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
