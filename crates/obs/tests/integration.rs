//! End-to-end tests of the observability stack: JSONL traces that round-trip
//! through `tdfm-json`, exact metrics under thread contention, `TDFM_LOG`
//! filtering semantics, and the cost of instrumented-but-disabled code.
//!
//! The sink is process-global, so every test that reconfigures it holds
//! [`SINK_LOCK`] for its whole body.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tdfm_obs::{configure, event, span, Level, ObsConfig, OpTimer};

/// Serialises the tests that reconfigure the global sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resets the sink to "everything off" so later tests (and the rest of the
/// process) see the quiet default.
fn quiet() {
    configure(ObsConfig::default()).unwrap();
}

#[test]
fn trace_round_trips_through_tdfm_json() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("tdfm-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("roundtrip.jsonl");
    configure(ObsConfig {
        trace_path: Some(trace_path.clone()),
        ..ObsConfig::default()
    })
    .unwrap();

    {
        let _span = span!("fit", epochs = 3usize, lr = 0.1f32);
        event!(Level::Info, "epoch", epoch = 0usize, loss = 1.25f32);
        event!(
            Level::Error,
            "loss_nonfinite",
            loss = f32::NAN,
            batch = 7usize,
            negative = -3i64,
        );
        event!(Level::Trace, "batch", note = "unicode: µ→✓");
    }
    tdfm_obs::flush();
    quiet();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    // span_open + 3 events + span_close.
    assert_eq!(lines.len(), 5, "{text}");
    for line in &lines {
        let record = tdfm_json::parse(line).expect("every trace line is valid JSON");
        for key in ["ts_ms", "level", "span", "event", "fields"] {
            assert!(record.get(key).is_some(), "missing {key} in {line}");
        }
    }
    let epoch = tdfm_json::parse(lines[1]).unwrap();
    assert_eq!(
        epoch.get("event").and_then(tdfm_json::Value::as_str),
        Some("epoch")
    );
    // Events inside the span carry its path.
    assert_eq!(
        epoch.get("span").and_then(tdfm_json::Value::as_str),
        Some("fit")
    );
    let loss = epoch.get("fields").and_then(|f| f.get("loss")).unwrap();
    assert!((loss.as_f64().unwrap() - 1.25).abs() < 1e-9);

    // The whole file is what `tdfm report` accepts as a trace.
    let report = tdfm_obs::render_report(&[&trace_path]).unwrap();
    assert!(report.contains("5 records"), "{report}");
    assert!(report.contains("ERROR: loss_nonfinite"), "{report}");
}

#[test]
fn registry_totals_are_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let registry = tdfm_obs::Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let counter = registry.counter("hits");
                let histogram = registry.histogram("lat");
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(Duration::from_nanos((t * PER_THREAD + i) as u64 + 1));
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counter("hits"), Some((THREADS * PER_THREAD) as u64));
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "lat")
        .expect("histogram registered");
    assert_eq!(hist.count, (THREADS * PER_THREAD) as u64);
}

#[test]
fn tdfm_log_filter_suppresses_lower_levels_without_evaluating_fields() {
    let _guard = lock();
    configure(ObsConfig {
        stderr_level: Some(Level::Info),
        capture: true,
        ..ObsConfig::default()
    })
    .unwrap();

    let evaluations = AtomicUsize::new(0);
    let observe = |x: usize| {
        evaluations.fetch_add(1, Ordering::SeqCst);
        x
    };
    event!(Level::Info, "kept", value = observe(1));
    event!(Level::Debug, "dropped", value = observe(2));
    event!(Level::Trace, "dropped_too", value = observe(3));
    let lines = tdfm_obs::take_captured();
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("kept"), "{lines:?}");
    assert!(!lines[0].contains("dropped"), "{lines:?}");
    // The filtered events never evaluated their field expressions.
    assert_eq!(evaluations.load(Ordering::SeqCst), 1);

    // With the sink fully off even Error is filtered, and spans are inert.
    quiet();
    event!(Level::Error, "silent", value = observe(4));
    let _span = span!("never", value = observe(5));
    assert_eq!(evaluations.load(Ordering::SeqCst), 1);
    assert!(tdfm_obs::take_captured().is_empty());
}

#[test]
fn concurrent_trace_writes_never_interleave() {
    // 8 threads hammer the JSONL writer; every line of the resulting file
    // must parse as one complete record (no torn or interleaved writes)
    // and every record must be accounted for.
    let _guard = lock();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 250;
    let dir = std::env::temp_dir().join("tdfm-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("torture.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    configure(ObsConfig {
        trace_path: Some(trace_path.clone()),
        ..ObsConfig::default()
    })
    .unwrap();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    event!(
                        Level::Info,
                        "torture",
                        thread = t,
                        i = i,
                        pad = "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
                    );
                }
            });
        }
    });
    tdfm_obs::flush();
    quiet();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), THREADS * PER_THREAD);
    let mut seen = vec![[false; PER_THREAD]; THREADS];
    for line in &lines {
        let record =
            tdfm_json::parse(line).unwrap_or_else(|e| panic!("torn trace line ({e}): {line}"));
        assert_eq!(
            record.get("event").and_then(tdfm_json::Value::as_str),
            Some("torture"),
            "{line}"
        );
        let fields = record.get("fields").expect("fields object");
        let t = fields
            .get("thread")
            .and_then(tdfm_json::Value::as_f64)
            .unwrap() as usize;
        let i = fields.get("i").and_then(tdfm_json::Value::as_f64).unwrap() as usize;
        assert!(!seen[t][i], "duplicate record thread={t} i={i}");
        seen[t][i] = true;
    }
    assert!(seen.iter().flatten().all(|&s| s), "records went missing");
}

#[test]
fn profile_reconstructs_span_tree_from_trace() {
    // A trace with nested spans must profile back into a tree whose
    // self-time totals reconcile with the root span's wall clock.
    let _guard = lock();
    let dir = std::env::temp_dir().join("tdfm-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("profile.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    configure(ObsConfig {
        trace_path: Some(trace_path.clone()),
        ..ObsConfig::default()
    })
    .unwrap();

    {
        let _run = span!("run");
        for _ in 0..2 {
            let _cell = span!("cell");
            {
                let _fit = span!("fit");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    tdfm_obs::flush();
    quiet();

    let profile = tdfm_obs::Profile::from_path(&trace_path).unwrap();
    let root_wall = profile.root_total_seconds();
    let self_total = profile.total_self_seconds();
    assert!(root_wall > 0.0);
    // Every moment of the root span is attributed to exactly one span
    // path, so self times sum back to the root wall clock (span_close
    // carries precise per-span seconds; allow float rounding only).
    assert!(
        (self_total - root_wall).abs() < 1e-6 * root_wall.max(1.0),
        "self-time sum {self_total}s does not reconcile with root wall {root_wall}s"
    );

    let table = profile.render_table(&trace_path);
    assert!(table.contains("run"), "{table}");
    assert!(table.contains("cell"), "{table}");
    let collapsed = profile.render_collapsed();
    assert!(collapsed.contains("run;cell;fit"), "{collapsed}");
    // Collapsed stacks carry self time in integer microseconds and must
    // cover the same total.
    let micros: u64 = collapsed
        .lines()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(_, n)| n.parse::<u64>().unwrap())
        .sum();
    assert!(
        (micros as f64 / 1e6 - root_wall).abs() < 2e-5 * 6.0 + 1e-4,
        "collapsed micros {micros} vs root wall {root_wall}s"
    );
}

#[test]
fn disabled_instrumentation_overhead_is_negligible() {
    let _guard = lock();
    quiet();

    const CALLS: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..CALLS {
        event!(Level::Trace, "hot", i = i);
        let _t = OpTimer::start("hot_op");
    }
    let elapsed = start.elapsed();
    // ~2 relaxed atomic loads per iteration; anything near real work would
    // blow this generous bound (250 ns/call) by orders of magnitude.
    let per_call = elapsed.as_nanos() / u128::from(CALLS);
    assert!(
        per_call < 250,
        "disabled instrumentation costs {per_call} ns/call ({elapsed:?} total)"
    );
}
