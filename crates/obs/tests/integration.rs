//! End-to-end tests of the observability stack: JSONL traces that round-trip
//! through `tdfm-json`, exact metrics under thread contention, `TDFM_LOG`
//! filtering semantics, and the cost of instrumented-but-disabled code.
//!
//! The sink is process-global, so every test that reconfigures it holds
//! [`SINK_LOCK`] for its whole body.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tdfm_obs::{configure, event, span, Level, ObsConfig, OpTimer};

/// Serialises the tests that reconfigure the global sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resets the sink to "everything off" so later tests (and the rest of the
/// process) see the quiet default.
fn quiet() {
    configure(ObsConfig::default()).unwrap();
}

#[test]
fn trace_round_trips_through_tdfm_json() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("tdfm-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("roundtrip.jsonl");
    configure(ObsConfig {
        trace_path: Some(trace_path.clone()),
        ..ObsConfig::default()
    })
    .unwrap();

    {
        let _span = span!("fit", epochs = 3usize, lr = 0.1f32);
        event!(Level::Info, "epoch", epoch = 0usize, loss = 1.25f32);
        event!(
            Level::Error,
            "loss_nonfinite",
            loss = f32::NAN,
            batch = 7usize,
            negative = -3i64,
        );
        event!(Level::Trace, "batch", note = "unicode: µ→✓");
    }
    tdfm_obs::flush();
    quiet();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    // span_open + 3 events + span_close.
    assert_eq!(lines.len(), 5, "{text}");
    for line in &lines {
        let record = tdfm_json::parse(line).expect("every trace line is valid JSON");
        for key in ["ts_ms", "level", "span", "event", "fields"] {
            assert!(record.get(key).is_some(), "missing {key} in {line}");
        }
    }
    let epoch = tdfm_json::parse(lines[1]).unwrap();
    assert_eq!(
        epoch.get("event").and_then(tdfm_json::Value::as_str),
        Some("epoch")
    );
    // Events inside the span carry its path.
    assert_eq!(
        epoch.get("span").and_then(tdfm_json::Value::as_str),
        Some("fit")
    );
    let loss = epoch.get("fields").and_then(|f| f.get("loss")).unwrap();
    assert!((loss.as_f64().unwrap() - 1.25).abs() < 1e-9);

    // The whole file is what `tdfm report` accepts as a trace.
    let report = tdfm_obs::render_report(&[&trace_path]).unwrap();
    assert!(report.contains("5 records"), "{report}");
    assert!(report.contains("ERROR: loss_nonfinite"), "{report}");
}

#[test]
fn registry_totals_are_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let registry = tdfm_obs::Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let counter = registry.counter("hits");
                let histogram = registry.histogram("lat");
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(Duration::from_nanos((t * PER_THREAD + i) as u64 + 1));
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counter("hits"), Some((THREADS * PER_THREAD) as u64));
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "lat")
        .expect("histogram registered");
    assert_eq!(hist.count, (THREADS * PER_THREAD) as u64);
}

#[test]
fn tdfm_log_filter_suppresses_lower_levels_without_evaluating_fields() {
    let _guard = lock();
    configure(ObsConfig {
        stderr_level: Some(Level::Info),
        capture: true,
        ..ObsConfig::default()
    })
    .unwrap();

    let evaluations = AtomicUsize::new(0);
    let observe = |x: usize| {
        evaluations.fetch_add(1, Ordering::SeqCst);
        x
    };
    event!(Level::Info, "kept", value = observe(1));
    event!(Level::Debug, "dropped", value = observe(2));
    event!(Level::Trace, "dropped_too", value = observe(3));
    let lines = tdfm_obs::take_captured();
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("kept"), "{lines:?}");
    assert!(!lines[0].contains("dropped"), "{lines:?}");
    // The filtered events never evaluated their field expressions.
    assert_eq!(evaluations.load(Ordering::SeqCst), 1);

    // With the sink fully off even Error is filtered, and spans are inert.
    quiet();
    event!(Level::Error, "silent", value = observe(4));
    let _span = span!("never", value = observe(5));
    assert_eq!(evaluations.load(Ordering::SeqCst), 1);
    assert!(tdfm_obs::take_captured().is_empty());
}

#[test]
fn disabled_instrumentation_overhead_is_negligible() {
    let _guard = lock();
    quiet();

    const CALLS: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..CALLS {
        event!(Level::Trace, "hot", i = i);
        let _t = OpTimer::start("hot_op");
    }
    let elapsed = start.elapsed();
    // ~2 relaxed atomic loads per iteration; anything near real work would
    // blow this generous bound (250 ns/call) by orders of magnitude.
    let per_call = elapsed.as_nanos() / u128::from(CALLS);
    assert!(
        per_call < 250,
        "disabled instrumentation costs {per_call} ns/call ({elapsed:?} total)"
    );
}
