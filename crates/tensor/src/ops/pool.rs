//! Max, average and global-average pooling (forward + backward).
//!
//! Table III of the paper distinguishes the architecture families partly by
//! their pooling: ConvNet/VGG use max pooling, ResNet/MobileNet end in
//! (global) average pooling.

use crate::ops::conv_out_dim;
use crate::parallel::parallel_chunks_mut;
use crate::scratch::Scratch;
use crate::Tensor;

/// Indices of the winning elements of a max-pool forward pass, needed to
/// route gradients in the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolCache {
    argmax: Vec<u32>,
    input_dims: [usize; 4],
}

impl MaxPoolCache {
    /// Hands the cache's index buffer back to `scratch` so the next
    /// forward pass reuses it instead of allocating.
    pub fn recycle(self, scratch: &Scratch) {
        scratch.recycle_u32(self.argmax);
    }
}

/// Max pooling over `k`×`k` windows with stride `s`.
///
/// Returns the pooled tensor and a cache for [`max_pool2d_backward`].
/// Uses the process-shared scratch arena; see [`max_pool2d_forward_with`].
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn max_pool2d_forward(input: &Tensor, k: usize, s: usize) -> (Tensor, MaxPoolCache) {
    max_pool2d_forward_with(input, k, s, Scratch::shared())
}

/// [`max_pool2d_forward`] drawing the output and index buffers from
/// `scratch`.
///
/// The argmax pass runs first (one `(sample, channel)` plane per task),
/// then the values are gathered through the winning indices — the two
/// passes replace a locked per-plane copy and allocate nothing.
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn max_pool2d_forward_with(
    input: &Tensor,
    k: usize,
    s: usize,
    scratch: &Scratch,
) -> (Tensor, MaxPoolCache) {
    assert_eq!(input.shape().rank(), 4, "max pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    let mut out = scratch.tensor_uninit(&[n, c, oh, ow]);
    let mut argmax = scratch.take_u32(n * c * oh * ow).into_vec();
    let x = input.data();
    let plane_in = h * w;
    let plane_out = oh * ow;
    parallel_chunks_mut(&mut argmax, plane_out, k * k, |p, arg| {
        let plane = &x[p * plane_in..(p + 1) * plane_in];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ki in 0..k {
                    for kj in 0..k {
                        let idx = (oi * s + ki) * w + (oj * s + kj);
                        let v = plane[idx];
                        // A NaN wins the window and then sticks (nothing
                        // compares greater than NaN), matching the
                        // reference frameworks instead of silently
                        // dropping the poisoned lane. Finite-only windows
                        // are untouched.
                        if v > best || v.is_nan() {
                            best = v;
                            best_idx = idx;
                        }
                    }
                }
                arg[oi * ow + oj] = best_idx as u32;
            }
        }
    });
    {
        let arg = &argmax[..];
        parallel_chunks_mut(out.data_mut(), plane_out, 1, |p, y| {
            let plane = &x[p * plane_in..(p + 1) * plane_in];
            let arg_plane = &arg[p * plane_out..(p + 1) * plane_out];
            for (o, &idx) in y.iter_mut().zip(arg_plane) {
                *o = plane[idx as usize];
            }
        });
    }
    (
        out,
        MaxPoolCache {
            argmax,
            input_dims: [n, c, h, w],
        },
    )
}

/// Routes output gradients back to the winning input positions.
///
/// # Panics
///
/// Panics if `grad_output` does not match the cached geometry.
pub fn max_pool2d_backward(grad_output: &Tensor, cache: &MaxPoolCache) -> Tensor {
    max_pool2d_backward_with(grad_output, cache, Scratch::shared())
}

/// [`max_pool2d_backward`] drawing the gradient buffer from `scratch`.
///
/// # Panics
///
/// Panics if `grad_output` does not match the cached geometry.
pub fn max_pool2d_backward_with(
    grad_output: &Tensor,
    cache: &MaxPoolCache,
    scratch: &Scratch,
) -> Tensor {
    let mut grad_input = scratch.tensor_zeroed(&cache.input_dims);
    let (n, c) = (cache.input_dims[0], cache.input_dims[1]);
    let plane_in = cache.input_dims[2] * cache.input_dims[3];
    let planes = n * c;
    assert_eq!(
        grad_output.numel(),
        cache.argmax.len(),
        "grad_output size mismatch"
    );
    let plane_out = grad_output.numel() / planes;
    let gy = grad_output.data();
    let arg = &cache.argmax;
    parallel_chunks_mut(grad_input.data_mut(), plane_in, 1, |p, gx| {
        let gy_plane = &gy[p * plane_out..(p + 1) * plane_out];
        let arg_plane = &arg[p * plane_out..(p + 1) * plane_out];
        for (g, &a) in gy_plane.iter().zip(arg_plane) {
            gx[a as usize] += g;
        }
    });
    grad_input
}

/// Average pooling over `k`×`k` windows with stride `s`.
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn avg_pool2d_forward(input: &Tensor, k: usize, s: usize) -> Tensor {
    avg_pool2d_forward_with(input, k, s, Scratch::shared())
}

/// [`avg_pool2d_forward`] drawing the output buffer from `scratch`.
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn avg_pool2d_forward_with(input: &Tensor, k: usize, s: usize, scratch: &Scratch) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "avg pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    let mut out = scratch.tensor_uninit(&[n, c, oh, ow]);
    let x = input.data();
    let plane_in = h * w;
    let plane_out = oh * ow;
    let inv = 1.0 / (k * k) as f32;
    parallel_chunks_mut(out.data_mut(), plane_out, k * k, |p, y| {
        let plane = &x[p * plane_in..(p + 1) * plane_in];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0;
                for ki in 0..k {
                    for kj in 0..k {
                        acc += plane[(oi * s + ki) * w + (oj * s + kj)];
                    }
                }
                y[oi * ow + oj] = acc * inv;
            }
        }
    });
    out
}

/// Backward pass of [`avg_pool2d_forward`].
///
/// # Panics
///
/// Panics if the geometries are inconsistent.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    k: usize,
    s: usize,
) -> Tensor {
    avg_pool2d_backward_with(grad_output, input_dims, k, s, Scratch::shared())
}

/// [`avg_pool2d_backward`] drawing the gradient buffer from `scratch`.
///
/// # Panics
///
/// Panics if the geometries are inconsistent.
pub fn avg_pool2d_backward_with(
    grad_output: &Tensor,
    input_dims: &[usize],
    k: usize,
    s: usize,
    scratch: &Scratch,
) -> Tensor {
    assert_eq!(input_dims.len(), 4, "input dims must be NCHW");
    let (h, w) = (input_dims[2], input_dims[3]);
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    assert_eq!(
        grad_output.shape().dims(),
        &[input_dims[0], input_dims[1], oh, ow],
        "grad_output shape mismatch"
    );
    let mut grad_input = scratch.tensor_zeroed(input_dims);
    let plane_in = h * w;
    let plane_out = oh * ow;
    let gy = grad_output.data();
    let inv = 1.0 / (k * k) as f32;
    parallel_chunks_mut(grad_input.data_mut(), plane_in, k * k, |p, gx| {
        let gy_plane = &gy[p * plane_out..(p + 1) * plane_out];
        for oi in 0..oh {
            for oj in 0..ow {
                let g = gy_plane[oi * ow + oj] * inv;
                for ki in 0..k {
                    for kj in 0..k {
                        gx[(oi * s + ki) * w + (oj * s + kj)] += g;
                    }
                }
            }
        }
    });
    grad_input
}

/// Collapses each channel plane to its mean: `[N,C,H,W] -> [N,C]`.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    global_avg_pool_forward_with(input, Scratch::shared())
}

/// [`global_avg_pool_forward`] drawing the output buffer from `scratch`.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool_forward_with(input: &Tensor, scratch: &Scratch) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "global avg pool input must be NCHW"
    );
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let mut out = scratch.tensor_uninit(&[n, c]);
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    for (i, o) in out.data_mut().iter_mut().enumerate() {
        let start = i * plane;
        *o = input.data()[start..start + plane].iter().sum::<f32>() * inv;
    }
    out
}

/// Backward pass of [`global_avg_pool_forward`].
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn global_avg_pool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    global_avg_pool_backward_with(grad_output, input_dims, Scratch::shared())
}

/// [`global_avg_pool_backward`] drawing the gradient buffer from `scratch`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn global_avg_pool_backward_with(
    grad_output: &Tensor,
    input_dims: &[usize],
    scratch: &Scratch,
) -> Tensor {
    assert_eq!(input_dims.len(), 4, "input dims must be NCHW");
    assert_eq!(
        grad_output.shape().dims(),
        &[input_dims[0], input_dims[1]],
        "grad_output must be [N, C]"
    );
    let plane = input_dims[2] * input_dims[3];
    let inv = 1.0 / plane as f32;
    let mut grad_input = scratch.tensor_uninit(input_dims);
    for (i, chunk) in grad_input.data_mut().chunks_mut(plane).enumerate() {
        chunk.fill(grad_output.data()[i] * inv);
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;

    #[test]
    fn max_pool_picks_window_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, _) = max_pool2d_forward(&x, 2, 2);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let (_, cache) = max_pool2d_forward(&x, 2, 2);
        let gy = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let gx = max_pool2d_backward(&gy, &cache);
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_matches_mean() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d_forward(&x, 2, 2);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = avg_pool2d_forward(&x, 2, 2);
        let gy = Tensor::ones(y.shape().dims());
        let gx = avg_pool2d_backward(&gy, x.shape().dims(), 2, 2);
        let eps = 1e-2;
        for i in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (avg_pool2d_forward(&xp, 2, 2).sum() - avg_pool2d_forward(&xm, 2, 2).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = global_avg_pool_forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        // Mean of channel 0 of sample 0.
        let expect: f32 = x.data()[0..16].iter().sum::<f32>() / 16.0;
        assert!((y.data()[0] - expect).abs() < 1e-5);
        let gy = Tensor::ones(&[2, 3]);
        let gx = global_avg_pool_backward(&gy, x.shape().dims());
        assert_close(&[gx.data().iter().sum::<f32>()], &[6.0], 1e-4);
    }

    #[test]
    fn max_pool_propagates_nan_windows() {
        // A window of injected NaNs must yield NaN, not −∞.
        let x = Tensor::from_vec(vec![f32::NAN, f32::NAN, f32::NAN, f32::NAN], &[1, 1, 2, 2]);
        let (y, _) = max_pool2d_forward(&x, 2, 2);
        assert!(y.data()[0].is_nan());
        // Any NaN in the window poisons the output, like the reference
        // frameworks — a silently dropped NaN would hide the fault.
        let x2 = Tensor::from_vec(vec![1.0, f32::NAN, 0.5, -2.0], &[1, 1, 2, 2]);
        let (y2, _) = max_pool2d_forward(&x2, 2, 2);
        assert!(y2.data()[0].is_nan());
        // Finite windows are untouched by the NaN branch.
        let x3 = Tensor::from_vec(vec![1.0, 3.0, 0.5, -2.0], &[1, 1, 2, 2]);
        let (y3, _) = max_pool2d_forward(&x3, 2, 2);
        assert_eq!(y3.data()[0], 3.0);
    }

    #[test]
    fn max_pool_cache_recycles_into_arena() {
        let scratch = Scratch::new();
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, cache) = max_pool2d_forward_with(&x, 2, 2, &scratch);
        scratch.recycle(y);
        cache.recycle(&scratch);
        let baseline = scratch.stats().misses;
        let (_y2, _c2) = max_pool2d_forward_with(&x, 2, 2, &scratch);
        assert_eq!(
            scratch.stats().misses,
            baseline,
            "second forward must reuse both pooled buffers"
        );
    }

    #[test]
    fn max_pool_stride_one_overlapping() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let (y, cache) = max_pool2d_forward(&x, 2, 1);
        assert_eq!(y.data(), &[5.0, 6.0, 8.0, 9.0]);
        let gy = Tensor::ones(&[1, 1, 2, 2]);
        let gx = max_pool2d_backward(&gy, &cache);
        // Each window winner receives exactly one unit.
        assert_eq!(gx.data()[4], 1.0); // value 5
        assert_eq!(gx.data()[8], 1.0); // value 9
        assert_eq!(gx.data().iter().sum::<f32>(), 4.0);
    }
}
