//! Max, average and global-average pooling (forward + backward).
//!
//! Table III of the paper distinguishes the architecture families partly by
//! their pooling: ConvNet/VGG use max pooling, ResNet/MobileNet end in
//! (global) average pooling.

use crate::ops::conv_out_dim;
use crate::parallel::parallel_chunks_mut;
use crate::Tensor;

/// Indices of the winning elements of a max-pool forward pass, needed to
/// route gradients in the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolCache {
    argmax: Vec<u32>,
    input_dims: Vec<usize>,
}

/// Max pooling over `k`×`k` windows with stride `s`.
///
/// Returns the pooled tensor and a cache for [`max_pool2d_backward`].
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn max_pool2d_forward(input: &Tensor, k: usize, s: usize) -> (Tensor, MaxPoolCache) {
    assert_eq!(input.shape().rank(), 4, "max pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0u32; n * c * oh * ow];
    let x = input.data();
    let plane_in = h * w;
    let plane_out = oh * ow;
    // One (sample, channel) plane per task; interleave output and argmax by
    // splitting both with identical chunking.
    {
        let out_data = out.data_mut();
        let arg_chunks: Vec<&mut [u32]> = argmax.chunks_mut(plane_out).collect();
        let args = std::sync::Mutex::new(arg_chunks);
        parallel_chunks_mut(out_data, plane_out, k * k, |p, y| {
            let plane = &x[p * plane_in..(p + 1) * plane_in];
            let mut local = vec![0u32; plane_out];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ki in 0..k {
                        for kj in 0..k {
                            let idx = (oi * s + ki) * w + (oj * s + kj);
                            let v = plane[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    y[oi * ow + oj] = best;
                    local[oi * ow + oj] = best_idx as u32;
                }
            }
            let mut guard = args.lock().expect("argmax lock poisoned");
            guard[p].copy_from_slice(&local);
        });
    }
    (
        out,
        MaxPoolCache {
            argmax,
            input_dims: vec![n, c, h, w],
        },
    )
}

/// Routes output gradients back to the winning input positions.
///
/// # Panics
///
/// Panics if `grad_output` does not match the cached geometry.
pub fn max_pool2d_backward(grad_output: &Tensor, cache: &MaxPoolCache) -> Tensor {
    let mut grad_input = Tensor::zeros(&cache.input_dims);
    let (n, c) = (cache.input_dims[0], cache.input_dims[1]);
    let plane_in = cache.input_dims[2] * cache.input_dims[3];
    let planes = n * c;
    assert_eq!(
        grad_output.numel(),
        cache.argmax.len(),
        "grad_output size mismatch"
    );
    let plane_out = grad_output.numel() / planes;
    let gy = grad_output.data();
    let arg = &cache.argmax;
    parallel_chunks_mut(grad_input.data_mut(), plane_in, 1, |p, gx| {
        let gy_plane = &gy[p * plane_out..(p + 1) * plane_out];
        let arg_plane = &arg[p * plane_out..(p + 1) * plane_out];
        for (g, &a) in gy_plane.iter().zip(arg_plane) {
            gx[a as usize] += g;
        }
    });
    grad_input
}

/// Average pooling over `k`×`k` windows with stride `s`.
///
/// # Panics
///
/// Panics if the input is not NCHW or the window does not fit.
pub fn avg_pool2d_forward(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "avg pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let x = input.data();
    let plane_in = h * w;
    let plane_out = oh * ow;
    let inv = 1.0 / (k * k) as f32;
    parallel_chunks_mut(out.data_mut(), plane_out, k * k, |p, y| {
        let plane = &x[p * plane_in..(p + 1) * plane_in];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0;
                for ki in 0..k {
                    for kj in 0..k {
                        acc += plane[(oi * s + ki) * w + (oj * s + kj)];
                    }
                }
                y[oi * ow + oj] = acc * inv;
            }
        }
    });
    out
}

/// Backward pass of [`avg_pool2d_forward`].
///
/// # Panics
///
/// Panics if the geometries are inconsistent.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    k: usize,
    s: usize,
) -> Tensor {
    assert_eq!(input_dims.len(), 4, "input dims must be NCHW");
    let (h, w) = (input_dims[2], input_dims[3]);
    let oh = conv_out_dim(h, k, s, 0);
    let ow = conv_out_dim(w, k, s, 0);
    assert_eq!(
        grad_output.shape().dims(),
        &[input_dims[0], input_dims[1], oh, ow],
        "grad_output shape mismatch"
    );
    let mut grad_input = Tensor::zeros(input_dims);
    let plane_in = h * w;
    let plane_out = oh * ow;
    let gy = grad_output.data();
    let inv = 1.0 / (k * k) as f32;
    parallel_chunks_mut(grad_input.data_mut(), plane_in, k * k, |p, gx| {
        let gy_plane = &gy[p * plane_out..(p + 1) * plane_out];
        for oi in 0..oh {
            for oj in 0..ow {
                let g = gy_plane[oi * ow + oj] * inv;
                for ki in 0..k {
                    for kj in 0..k {
                        gx[(oi * s + ki) * w + (oj * s + kj)] += g;
                    }
                }
            }
        }
    });
    grad_input
}

/// Collapses each channel plane to its mean: `[N,C,H,W] -> [N,C]`.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "global avg pool input must be NCHW"
    );
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let mut out = Tensor::zeros(&[n, c]);
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    for (i, o) in out.data_mut().iter_mut().enumerate() {
        let start = i * plane;
        *o = input.data()[start..start + plane].iter().sum::<f32>() * inv;
    }
    out
}

/// Backward pass of [`global_avg_pool_forward`].
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn global_avg_pool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    assert_eq!(input_dims.len(), 4, "input dims must be NCHW");
    assert_eq!(
        grad_output.shape().dims(),
        &[input_dims[0], input_dims[1]],
        "grad_output must be [N, C]"
    );
    let plane = input_dims[2] * input_dims[3];
    let inv = 1.0 / plane as f32;
    let mut grad_input = Tensor::zeros(input_dims);
    for (i, chunk) in grad_input.data_mut().chunks_mut(plane).enumerate() {
        chunk.fill(grad_output.data()[i] * inv);
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;

    #[test]
    fn max_pool_picks_window_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, _) = max_pool2d_forward(&x, 2, 2);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let (_, cache) = max_pool2d_forward(&x, 2, 2);
        let gy = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let gx = max_pool2d_backward(&gy, &cache);
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_matches_mean() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d_forward(&x, 2, 2);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = avg_pool2d_forward(&x, 2, 2);
        let gy = Tensor::ones(y.shape().dims());
        let gx = avg_pool2d_backward(&gy, x.shape().dims(), 2, 2);
        let eps = 1e-2;
        for i in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (avg_pool2d_forward(&xp, 2, 2).sum() - avg_pool2d_forward(&xm, 2, 2).sum())
                / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = global_avg_pool_forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        // Mean of channel 0 of sample 0.
        let expect: f32 = x.data()[0..16].iter().sum::<f32>() / 16.0;
        assert!((y.data()[0] - expect).abs() < 1e-5);
        let gy = Tensor::ones(&[2, 3]);
        let gx = global_avg_pool_backward(&gy, x.shape().dims());
        assert_close(&[gx.data().iter().sum::<f32>()], &[6.0], 1e-4);
    }

    #[test]
    fn max_pool_stride_one_overlapping() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let (y, cache) = max_pool2d_forward(&x, 2, 1);
        assert_eq!(y.data(), &[5.0, 6.0, 8.0, 9.0]);
        let gy = Tensor::ones(&[1, 1, 2, 2]);
        let gx = max_pool2d_backward(&gy, &cache);
        // Each window winner receives exactly one unit.
        assert_eq!(gx.data()[4], 1.0); // value 5
        assert_eq!(gx.data()[8], 1.0); // value 9
        assert_eq!(gx.data().iter().sum::<f32>(), 4.0);
    }
}
