//! Shared GEMM building blocks: panel packing + a register-tiled microkernel.
//!
//! The matmul variants and the im2col convolution all reduce to
//! `C[m,n] (+)= A[m,k] · B[k,n]`. This module implements that product two
//! ways with **bit-identical** results:
//!
//! * a *packed* path — `B` is repacked into [`NR`]-wide column panels
//!   (contiguous per `p` step, zero-padded at the right edge) and an
//!   [`MR`]×[`NR`] block of `C` is accumulated in registers. The `NR`
//!   independent `j` lanes map directly onto one 8-lane `__m256` (or two
//!   `__m128`s): the microkernel dispatches through [`crate::simd`] to an
//!   explicitly vectorised AVX2/SSE2 body, with the scalar tile as
//!   fallback — which a strict-FP dot product (`acc += x*y` over `p`)
//!   could never be.
//! * a *direct* path — the classic loops, used when the operand is too
//!   small to amortise packing; its row-sweep inner loop goes through the
//!   shared [`crate::simd::axpy`] kernel.
//!
//! Bit-identity holds because every output element is accumulated in
//! ascending-`p` order starting from `+0.0` on all paths: the same
//! sequence of f32 rounding steps, whether the partial sum lives in a
//! scalar register, a vector lane, or memory. The vector bodies use
//! separate `mul` + `add` (never FMA — fusing would round once where the
//! scalar loop rounds twice and break byte-identity across SIMD levels;
//! see DESIGN.md §2.1a). Products are **never skipped** — `0 × NaN` must
//! stay `NaN` so injected faults propagate (adding a `±0.0` product is an
//! exact identity on finite partial sums, so finite results are unchanged
//! relative to the historical zero-skipping kernels).

/// Register-tile height: rows of `C` accumulated at once.
pub(crate) const MR: usize = 4;
/// Register-tile width and `B`-panel width, in columns.
pub(crate) const NR: usize = 8;

/// Length of the packed buffer for a `[k, n]` operand: `ceil(n/NR)` panels
/// of `k × NR` elements.
pub(crate) fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Whether packing `B` pays off for a `m×k×n` product.
///
/// Packing costs `O(k·n)` copies against `O(m·k·n)` fused multiply-adds,
/// and a panel narrower than half the tile wastes most of its vector
/// lanes, so tiny or skinny products use the direct loops instead. Both
/// paths produce bit-identical results; this is purely a cost model.
pub(crate) fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= 2 && n >= NR / 2 && m * k * n >= 1024
}

/// Packs row-major `b[k, n]` into `NR`-wide column panels.
///
/// Panel `pj` holds columns `pj*NR .. pj*NR+NR`; element `(p, jj)` of the
/// panel lives at `pj*k*NR + p*NR + jj`. Columns past `n` are zero so the
/// microkernel can always run full-width (the padded lanes are computed
/// but never stored).
pub(crate) fn pack_b(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(b.len(), k * n);
    let panels = n.div_ceil(NR);
    debug_assert!(packed.len() >= panels * k * NR);
    for pj in 0..panels {
        let j0 = pj * NR;
        let jw = NR.min(n - j0);
        let dst_panel = &mut packed[pj * k * NR..(pj + 1) * k * NR];
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + jw];
            let dst = &mut dst_panel[p * NR..(p + 1) * NR];
            dst[..jw].copy_from_slice(src);
            dst[jw..].fill(0.0);
        }
    }
}

/// Packs `bᵀ` into `NR`-wide column panels, where `b` is stored `[n, k]`.
///
/// Produces the same layout as [`pack_b`] applied to the materialised
/// transpose, without materialising it: panel column `jj` is row `j0+jj`
/// of `b`, read at unit stride.
pub(crate) fn pack_bt(b: &[f32], n: usize, k: usize, packed: &mut [f32]) {
    debug_assert_eq!(b.len(), n * k);
    let panels = n.div_ceil(NR);
    debug_assert!(packed.len() >= panels * k * NR);
    for pj in 0..panels {
        let j0 = pj * NR;
        let jw = NR.min(n - j0);
        let dst_panel = &mut packed[pj * k * NR..(pj + 1) * k * NR];
        for jj in 0..jw {
            let src = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (p, &v) in src.iter().enumerate() {
                dst_panel[p * NR + jj] = v;
            }
        }
        if jw < NR {
            for p in 0..k {
                dst_panel[p * NR + jw..(p + 1) * NR].fill(0.0);
            }
        }
    }
}

/// Transposes row-major `a[k, m]` into `at[m, k]`.
pub(crate) fn transpose_into(a: &[f32], k: usize, m: usize, at: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(at.len(), m * k);
    for p in 0..k {
        let src = &a[p * m..(p + 1) * m];
        for (i, &v) in src.iter().enumerate() {
            at[i * k + p] = v;
        }
    }
}

/// The register microkernel: `MRC` rows × one `NR`-wide panel.
///
/// `a` starts at the tile's first row (row-major, leading dimension `k`);
/// `out` starts at the tile's first output element (leading dimension `n`,
/// `jw` valid columns). Accumulation runs over ascending `p` into
/// zero-initialised registers, then stores (or adds) once per element.
#[inline(always)]
fn micro_tile<const MRC: usize>(
    a: &[f32],
    k: usize,
    panel: &[f32],
    out: &mut [f32],
    n: usize,
    jw: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MRC];
    for p in 0..k {
        let brow = &panel[p * NR..(p + 1) * NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[r * k + p];
            for c in 0..NR {
                acc_row[c] += av * brow[c];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let dst = &mut out[r * n..r * n + jw];
        if accumulate {
            for (o, v) in dst.iter_mut().zip(&acc_row[..jw]) {
                *o += *v;
            }
        } else {
            dst.copy_from_slice(&acc_row[..jw]);
        }
    }
}

/// `out[rows, n] (+)= a[rows, k] · B` where `B` was packed with
/// [`pack_b`] / [`pack_bt`].
///
/// `a` and `out` are the row range being produced (callers parallelise by
/// handing disjoint row blocks to worker threads). With
/// `accumulate == false` the output is fully overwritten, so it may start
/// uninitialised.
///
/// Dispatches once per block to the runtime-selected SIMD level; all three
/// bodies produce byte-identical output (see the module docs).
#[allow(unsafe_code)] // dispatch into the target_feature bodies below
pub(crate) fn gemm_packed_block(
    a: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(packed.len() >= packed_len(k, n));
    match crate::simd::simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected at
        // runtime on this CPU.
        crate::simd::SimdLevel::Avx2 => unsafe {
            x86::gemm_packed_block_avx2(a, rows, k, n, packed, out, accumulate)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        crate::simd::SimdLevel::Sse2 => unsafe {
            x86::gemm_packed_block_sse2(a, rows, k, n, packed, out, accumulate)
        },
        _ => gemm_packed_block_scalar(a, rows, k, n, packed, out, accumulate),
    }
}

/// The scalar tile sweep — canonical semantics for all SIMD levels.
fn gemm_packed_block_scalar(
    a: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    let panels = n.div_ceil(NR);
    let mut i0 = 0;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        let a_rows = &a[i0 * k..(i0 + mr) * k];
        for pj in 0..panels {
            let j0 = pj * NR;
            let jw = NR.min(n - j0);
            let panel = &packed[pj * k * NR..(pj + 1) * k * NR];
            let out_tile = &mut out[i0 * n + j0..];
            match mr {
                4 => micro_tile::<4>(a_rows, k, panel, out_tile, n, jw, accumulate),
                3 => micro_tile::<3>(a_rows, k, panel, out_tile, n, jw, accumulate),
                2 => micro_tile::<2>(a_rows, k, panel, out_tile, n, jw, accumulate),
                _ => micro_tile::<1>(a_rows, k, panel, out_tile, n, jw, accumulate),
            }
        }
        i0 += mr;
    }
}

/// Explicitly vectorised tile sweeps. Each mirrors
/// [`gemm_packed_block_scalar`] exactly: the `NR`-wide accumulator row
/// becomes one `__m256` (AVX2) or an `__m128` pair (SSE2), and every lane
/// performs the scalar element's `mul` + `add` sequence in the same
/// ascending-`p` order — no FMA, no reassociation, so the bytes match.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    /// Slice bounds follow [`super::gemm_packed_block`]'s debug-asserted
    /// contract (`a.len() == rows*k`, `out.len() == rows*n`,
    /// `packed.len() >= packed_len(k, n)`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_packed_block_avx2(
        a: &[f32],
        rows: usize,
        k: usize,
        n: usize,
        packed: &[f32],
        out: &mut [f32],
        accumulate: bool,
    ) {
        let panels = n.div_ceil(NR);
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            let a_rows = &a[i0 * k..(i0 + mr) * k];
            for pj in 0..panels {
                let j0 = pj * NR;
                let jw = NR.min(n - j0);
                let panel = &packed[pj * k * NR..(pj + 1) * k * NR];
                let out_tile = &mut out[i0 * n + j0..];
                // SAFETY: AVX2 is available (this fn's own contract).
                unsafe {
                    match mr {
                        4 => micro_tile_avx2::<4>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        3 => micro_tile_avx2::<3>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        2 => micro_tile_avx2::<2>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        _ => micro_tile_avx2::<1>(a_rows, k, panel, out_tile, n, jw, accumulate),
                    }
                }
            }
            i0 += mr;
        }
    }

    /// One `MRC`×[`NR`] register tile, AVX2: the scalar tile's `[f32; NR]`
    /// accumulator row is one `__m256`.
    ///
    /// SAFETY: callers must ensure AVX2 is supported; `a.len() >= MRC*k`,
    /// `panel.len() >= k*NR`, and `out` must cover the tile
    /// (`(MRC-1)*n + jw` elements).
    #[target_feature(enable = "avx2")]
    unsafe fn micro_tile_avx2<const MRC: usize>(
        a: &[f32],
        k: usize,
        panel: &[f32],
        out: &mut [f32],
        n: usize,
        jw: usize,
        accumulate: bool,
    ) {
        let mut acc = [_mm256_setzero_ps(); MRC];
        for p in 0..k {
            // SAFETY: p < k and panel.len() >= k*NR, so the 8 floats at
            // panel[p*NR] are in bounds; loadu needs no alignment.
            let b = unsafe { _mm256_loadu_ps(panel.as_ptr().add(p * NR)) };
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(a[r * k + p]);
                // mul then add: each lane rounds exactly like the scalar
                // `acc_row[c] += av * brow[c]` (two roundings, no FMA).
                *acc_row = _mm256_add_ps(*acc_row, _mm256_mul_ps(av, b));
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let dst = &mut out[r * n..r * n + jw];
            if jw == NR {
                if accumulate {
                    // SAFETY: dst is exactly NR == 8 floats.
                    unsafe {
                        let cur = _mm256_loadu_ps(dst.as_ptr());
                        _mm256_storeu_ps(dst.as_mut_ptr(), _mm256_add_ps(cur, *acc_row));
                    }
                } else {
                    // SAFETY: dst is exactly NR == 8 floats.
                    unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), *acc_row) };
                }
            } else {
                let mut lanes = [0.0f32; NR];
                // SAFETY: lanes is exactly 8 floats.
                unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), *acc_row) };
                if accumulate {
                    for (o, v) in dst.iter_mut().zip(&lanes[..jw]) {
                        *o += *v;
                    }
                } else {
                    dst.copy_from_slice(&lanes[..jw]);
                }
            }
        }
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline). Slice
    /// bounds follow [`super::gemm_packed_block`]'s contract.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gemm_packed_block_sse2(
        a: &[f32],
        rows: usize,
        k: usize,
        n: usize,
        packed: &[f32],
        out: &mut [f32],
        accumulate: bool,
    ) {
        let panels = n.div_ceil(NR);
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            let a_rows = &a[i0 * k..(i0 + mr) * k];
            for pj in 0..panels {
                let j0 = pj * NR;
                let jw = NR.min(n - j0);
                let panel = &packed[pj * k * NR..(pj + 1) * k * NR];
                let out_tile = &mut out[i0 * n + j0..];
                // SAFETY: SSE2 is baseline on x86-64.
                unsafe {
                    match mr {
                        4 => micro_tile_sse2::<4>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        3 => micro_tile_sse2::<3>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        2 => micro_tile_sse2::<2>(a_rows, k, panel, out_tile, n, jw, accumulate),
                        _ => micro_tile_sse2::<1>(a_rows, k, panel, out_tile, n, jw, accumulate),
                    }
                }
            }
            i0 += mr;
        }
    }

    /// One `MRC`×[`NR`] register tile, SSE2: the `[f32; NR]` accumulator
    /// row is a pair of `__m128`s (lanes 0..4 and 4..8).
    ///
    /// SAFETY: callers must uphold the same bounds contract as [`micro_tile_avx2`];
    /// SSE2 is baseline.
    #[target_feature(enable = "sse2")]
    unsafe fn micro_tile_sse2<const MRC: usize>(
        a: &[f32],
        k: usize,
        panel: &[f32],
        out: &mut [f32],
        n: usize,
        jw: usize,
        accumulate: bool,
    ) {
        let mut acc = [[_mm_setzero_ps(); 2]; MRC];
        for p in 0..k {
            // SAFETY: p < k and panel.len() >= k*NR, so the 8 floats at
            // panel[p*NR] are in bounds; loadu needs no alignment.
            let (b0, b1) = unsafe {
                let base = panel.as_ptr().add(p * NR);
                (_mm_loadu_ps(base), _mm_loadu_ps(base.add(4)))
            };
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = _mm_set1_ps(a[r * k + p]);
                acc_row[0] = _mm_add_ps(acc_row[0], _mm_mul_ps(av, b0));
                acc_row[1] = _mm_add_ps(acc_row[1], _mm_mul_ps(av, b1));
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let dst = &mut out[r * n..r * n + jw];
            if jw == NR {
                if accumulate {
                    // SAFETY: dst is exactly NR == 8 floats (two halves).
                    unsafe {
                        let cur0 = _mm_loadu_ps(dst.as_ptr());
                        let cur1 = _mm_loadu_ps(dst.as_ptr().add(4));
                        _mm_storeu_ps(dst.as_mut_ptr(), _mm_add_ps(cur0, acc_row[0]));
                        _mm_storeu_ps(dst.as_mut_ptr().add(4), _mm_add_ps(cur1, acc_row[1]));
                    }
                } else {
                    // SAFETY: dst is exactly NR == 8 floats (two halves).
                    unsafe {
                        _mm_storeu_ps(dst.as_mut_ptr(), acc_row[0]);
                        _mm_storeu_ps(dst.as_mut_ptr().add(4), acc_row[1]);
                    }
                }
            } else {
                let mut lanes = [0.0f32; NR];
                // SAFETY: lanes is exactly 8 floats (two halves).
                unsafe {
                    _mm_storeu_ps(lanes.as_mut_ptr(), acc_row[0]);
                    _mm_storeu_ps(lanes.as_mut_ptr().add(4), acc_row[1]);
                }
                if accumulate {
                    for (o, v) in dst.iter_mut().zip(&lanes[..jw]) {
                        *o += *v;
                    }
                } else {
                    dst.copy_from_slice(&lanes[..jw]);
                }
            }
        }
    }
}

/// Direct `out[m,n] (+)= a[m,k] · b[k,n]` (row-major `b`, `ikj` order).
pub(crate) fn gemm_direct(
    a: &[f32],
    m: usize,
    k: usize,
    n: usize,
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        if !accumulate {
            out_row.fill(0.0);
        }
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            crate::simd::axpy(a_ip, b_row, out_row);
        }
    }
}

/// Direct `out[m,n] (+)= aᵀ · b` where `a` is stored `[k, m]`, `b` `[k, n]`.
///
/// Reads `a` down its columns without transposing; preferable to the
/// packed path only for skinny products.
pub(crate) fn gemm_direct_atb(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if !accumulate {
        out.fill(0.0);
    }
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            crate::simd::axpy(a_pi, b_row, out_row);
        }
    }
}

/// Direct `out[m,n] (+)= a[m,k] · bᵀ` where `b` is stored `[n, k]`.
///
/// Stays scalar by design: its inner loop is a *serial* dot-product fold,
/// and distributing that sum over vector lanes would reassociate it and
/// change the bytes (see DESIGN.md §2.1a). Only skinny products take this
/// path, so there is little to win.
pub(crate) fn gemm_direct_abt(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            if accumulate {
                out[i * n + j] += acc;
            } else {
                out[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &[f32], m: usize, k: usize, n: usize, b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    #[test]
    fn packed_block_matches_naive_over_shapes() {
        for seed in 0..24u64 {
            let mut rng = Rng::seed_from(seed);
            let (m, k, n) = (1 + rng.below(13), 1 + rng.below(20), 1 + rng.below(21));
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut packed = vec![0.0; packed_len(k, n)];
            pack_b(&b, k, n, &mut packed);
            let mut out = vec![f32::NAN; m * n]; // stores must overwrite
            gemm_packed_block(&a, m, k, n, &packed, &mut out, false);
            let want = naive(&a, m, k, n, &b);
            for (i, (x, y)) in out.iter().zip(&want).enumerate() {
                assert!((x - y).abs() < 1e-4, "{m}x{k}x{n} seed {seed} elem {i}");
            }
        }
    }

    #[test]
    fn packed_and_direct_paths_are_bit_identical() {
        // The cost model may route the same shape either way between
        // releases; goldens rely on the two paths agreeing exactly.
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(100 + seed);
            let (m, k, n) = (1 + rng.below(9), 1 + rng.below(17), 1 + rng.below(17));
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut packed = vec![0.0; packed_len(k, n)];
            pack_b(&b, k, n, &mut packed);
            let mut fast = vec![0.0; m * n];
            gemm_packed_block(&a, m, k, n, &packed, &mut fast, false);
            let mut direct = vec![0.0; m * n];
            gemm_direct(&a, m, k, n, &b, &mut direct, false);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{m}x{k}x{n} seed {seed}"
            );
        }
    }

    #[test]
    fn pack_bt_equals_pack_of_transpose() {
        let mut rng = Rng::seed_from(7);
        let (n, k) = (11, 9);
        let bt = random(n * k, &mut rng); // stored [n, k]
        let mut b = vec![0.0; k * n];
        transpose_into(&bt, n, k, &mut b); // b[k, n]
        let mut packed_a = vec![0.0; packed_len(k, n)];
        pack_bt(&bt, n, k, &mut packed_a);
        let mut packed_b = vec![0.0; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed_b);
        assert_eq!(packed_a, packed_b);
    }

    #[test]
    fn accumulate_adds_on_top() {
        let mut rng = Rng::seed_from(8);
        let (m, k, n) = (5, 6, 10);
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let base = random(m * n, &mut rng);
        let mut packed = vec![0.0; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut out = base.clone();
        gemm_packed_block(&a, m, k, n, &packed, &mut out, true);
        let want = naive(&a, m, k, n, &b);
        for i in 0..m * n {
            assert!((out[i] - (base[i] + want[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn nan_in_a_reaches_every_output_column() {
        // The heart of the bugfix: 0 × NaN must not be skipped.
        let (m, k, n) = (3, 4, 9);
        let mut a = vec![0.0; m * k]; // all-zero A would have skipped every product
        a[k + 2] = f32::NAN; // row 1
        let b = vec![1.0; k * n];
        let mut packed = vec![0.0; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut out = vec![0.0; m * n];
        gemm_packed_block(&a, m, k, n, &packed, &mut out, false);
        for j in 0..n {
            assert!(out[n + j].is_nan(), "column {j}");
            assert_eq!(out[j], 0.0);
            assert_eq!(out[2 * n + j], 0.0);
        }
        let mut direct = vec![0.0; m * n];
        gemm_direct(&a, m, k, n, &b, &mut direct, false);
        assert!(direct[n..2 * n].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn zero_times_nan_in_b_propagates_too() {
        let (m, k, n) = (2, 3, 5);
        let a = vec![0.0; m * k];
        let mut b = vec![2.0; k * n];
        b[n + 3] = f32::INFINITY; // 0 × inf = NaN
        let mut packed = vec![0.0; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut out = vec![0.0; m * n];
        gemm_packed_block(&a, m, k, n, &packed, &mut out, false);
        for i in 0..m {
            assert!(out[i * n + 3].is_nan(), "row {i}");
            assert_eq!(out[i * n], 0.0);
        }
    }

    #[test]
    fn direct_transposed_variants_match_naive() {
        let mut rng = Rng::seed_from(9);
        let (m, k, n) = (6, 7, 5);
        let at = random(k * m, &mut rng); // stored [k, m]
        let b = random(k * n, &mut rng);
        let mut a = vec![0.0; m * k];
        transpose_into(&at, k, m, &mut a);
        let want = naive(&a, m, k, n, &b);
        let mut out = vec![f32::NAN; m * n];
        gemm_direct_atb(&at, &b, k, m, n, &mut out, false);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }

        let bt = random(n * k, &mut rng); // stored [n, k]
        let mut b2 = vec![0.0; k * n];
        transpose_into(&bt, n, k, &mut b2);
        let a2 = random(m * k, &mut rng);
        let want2 = naive(&a2, m, k, n, &b2);
        let mut out2 = vec![f32::NAN; m * n];
        gemm_direct_abt(&a2, &bt, m, k, n, &mut out2, false);
        for (x, y) in out2.iter().zip(&want2) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
