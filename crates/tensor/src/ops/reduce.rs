//! Row-wise reductions: softmax, log-softmax, argmax, one-hot, sums.
//!
//! All operate on `[N, K]` matrices — a batch of `N` logit/probability rows
//! over `K` classes, the shape every classifier head in the study produces.

use crate::Tensor;

/// Numerically stable softmax applied to each row of an `[N, K]` tensor.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::{ops, Tensor};
///
/// let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
/// let p = ops::softmax_rows(&logits, 1.0);
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Tensor, temperature: f32) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax input must be [N, K]");
    assert!(temperature > 0.0, "temperature must be positive");
    let k = logits.shape().dim(1);
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(k) {
        // tdfm-lint: allow(nan-laundering, max-shift for numerical stability only; a NaN row element still reaches (x - max).exp() below and propagates)
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        // The exp + running sum is a *serial* fold — vector lanes would
        // reassociate it — so it stays scalar; the normalisation sweep is
        // elementwise and goes through the SIMD scale kernel.
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = ((*x - max) / temperature).exp();
            sum += *x;
        }
        crate::simd::scale(row, 1.0 / sum);
    }
    out
}

/// Numerically stable log-softmax applied to each row.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log-softmax input must be [N, K]");
    let k = logits.shape().dim(1);
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(k) {
        // tdfm-lint: allow(nan-laundering, max-shift for numerical stability only; a NaN row element still reaches (x - max).exp() below and propagates)
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let log_sum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        // `x - log_sum` == `x + (-log_sum)` exactly (IEEE negation is
        // exact), so the shared add_scalar kernel preserves the bytes.
        crate::simd::add_scalar(row, -log_sum);
    }
    out
}

/// Index of the largest element in each row (ties go to the first).
///
/// # Panics
///
/// Panics if the input is not 2-D.
pub fn argmax_rows(t: &Tensor) -> Vec<u32> {
    assert_eq!(t.shape().rank(), 2, "argmax input must be [N, K]");
    let k = t.shape().dim(1);
    t.data()
        .chunks(k)
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// One-hot encodes labels into an `[N, K]` matrix.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[u32], classes: usize) -> Tensor {
    let mut out = Tensor::zeros(&[labels.len().max(1), classes]);
    if labels.is_empty() {
        return Tensor::zeros(&[1, classes]);
    }
    for (i, &l) in labels.iter().enumerate() {
        assert!(
            (l as usize) < classes,
            "label {l} out of range for {classes} classes"
        );
        out.data_mut()[i * classes + l as usize] = 1.0;
    }
    out
}

/// Sums an `[N, K]` tensor over its rows, producing `[K]`.
///
/// Used for bias gradients of dense layers.
///
/// # Panics
///
/// Panics if the input is not 2-D.
pub fn sum_rows(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "sum_rows input must be [N, K]");
    let k = t.shape().dim(1);
    let mut out = Tensor::zeros(&[k]);
    // Row-major accumulation: each output element folds its column in
    // ascending-row order on every SIMD level (lanes span columns, which
    // are independent, so no reassociation).
    for row in t.data().chunks(k) {
        crate::simd::add_assign(out.data_mut(), row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[5, 7], 3.0, &mut rng);
        let p = softmax_rows(&logits, 1.0);
        for row in p.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]);
        let p = softmax_rows(&logits, 1.0);
        assert!(!p.has_non_finite());
        assert!(p.data()[0] > p.data()[1]);
    }

    #[test]
    fn temperature_softens_distribution() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3]);
        let sharp = softmax_rows(&logits, 1.0);
        let soft = softmax_rows(&logits, 4.0);
        // Higher temperature -> flatter distribution (the distilled softmax
        // of Section III-B4 of the paper).
        assert!(soft.data()[0] < sharp.data()[0]);
        assert!(soft.data()[1] > sharp.data()[1]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[4, 5], 2.0, &mut rng);
        let a = log_softmax_rows(&logits);
        let b = softmax_rows(&logits, 1.0).map(|x| x.ln());
        crate::assert_close(a.data(), b.data(), 1e-4);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.1, 0.2, 0.5], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 2]);
    }

    #[test]
    fn one_hot_encodes() {
        let t = one_hot(&[2, 0], 3);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn sum_rows_accumulates() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(sum_rows(&t).data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_simplex_invariant() {
        let mut rng = Rng::seed_from(0x50F);
        for _ in 0..64 {
            let k = 2 + rng.below(10);
            let v: Vec<f32> = (0..k).map(|_| rng.uniform(-20.0, 20.0)).collect();
            let temp = rng.uniform(0.5, 8.0);
            let t = Tensor::from_vec(v, &[1, k]);
            let p = softmax_rows(&t, temp);
            let s: f32 = p.data().iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
            assert!(p.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn argmax_is_invariant_under_softmax() {
        let mut rng = Rng::seed_from(0xA6);
        for _ in 0..64 {
            let k = 2 + rng.below(6);
            let v: Vec<f32> = (0..k).map(|_| rng.uniform(-5.0, 5.0)).collect();
            let t = Tensor::from_vec(v, &[1, k]);
            let before = argmax_rows(&t);
            let after = argmax_rows(&softmax_rows(&t, 1.0));
            assert_eq!(before, after);
        }
    }
}
