//! Numerical kernels: matrix multiplication, convolution, pooling,
//! reductions and softmax.
//!
//! These are the operations the paper's TensorFlow stack provided; every
//! model in the study (Table III) is built from exactly these kernels.

mod conv;
mod gemm;
mod matmul;
mod pool;
mod reduce;

pub use conv::{
    col2im, conv2d_backward, conv2d_backward_with, conv2d_forward, conv2d_forward_with,
    conv_out_dim, im2col, Conv2dSpec, ConvGrads,
};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_with, matmul_at_b, matmul_at_b_with, matmul_with,
};
pub use pool::{
    avg_pool2d_backward, avg_pool2d_backward_with, avg_pool2d_forward, avg_pool2d_forward_with,
    global_avg_pool_backward, global_avg_pool_backward_with, global_avg_pool_forward,
    global_avg_pool_forward_with, max_pool2d_backward, max_pool2d_backward_with,
    max_pool2d_forward, max_pool2d_forward_with, MaxPoolCache,
};
pub use reduce::{argmax_rows, log_softmax_rows, one_hot, softmax_rows, sum_rows};
