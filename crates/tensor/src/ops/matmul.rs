//! Blocked, thread-parallel matrix multiplication.
//!
//! Three variants cover everything backpropagation needs without ever
//! materialising a transpose:
//!
//! * [`matmul`]       — `C = A · B`
//! * [`matmul_at_b`]  — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`]  — `C = A · Bᵀ` (input gradients)

use crate::parallel::parallel_chunks_mut;
use crate::Tensor;
use tdfm_obs::OpTimer;

/// `C[m,n] = A[m,k] · B[k,n]`.
///
/// Rows of `C` are computed independently on worker threads with an `ikj`
/// loop order (unit-stride inner loop over `B` rows) so the compiler can
/// vectorise the accumulation.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// let c = ops::matmul(&a, &b);
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let _t = OpTimer::start("matmul");
    assert!(
        a.shape().matmul_compatible(b.shape()),
        "matmul shape mismatch: {} x {}",
        a.shape(),
        b.shape()
    );
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    parallel_chunks_mut(out.data_mut(), n, k, |i, row| {
        matmul_row(&a_data[i * k..(i + 1) * k], b_data, n, row);
    });
    out
}

#[inline]
fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    for (p, &a_ip) in a_row.iter().enumerate() {
        if a_ip == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += a_ip * bv;
        }
    }
}

/// `C[m,n] = Aᵀ[m,k] · B[k,n]` where `A` is stored as `[k, m]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let _t = OpTimer::start("matmul_at_b");
    assert_eq!(a.shape().rank(), 2, "matmul_at_b requires matrices");
    assert_eq!(b.shape().rank(), 2, "matmul_at_b requires matrices");
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_at_b inner dim mismatch: {} vs {}", k, k2);
    let mut out = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    // Row i of C gathers column i of A: C[i, :] = sum_p A[p, i] * B[p, :].
    parallel_chunks_mut(out.data_mut(), n, k, |i, row| {
        for p in 0..k {
            let a_pi = a_data[p * m + i];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            for (o, &bv) in row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * bv;
            }
        }
    });
    out
}

/// `C[m,n] = A[m,k] · Bᵀ[k,n]` where `B` is stored as `[n, k]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let _t = OpTimer::start("matmul_a_bt");
    assert_eq!(a.shape().rank(), 2, "matmul_a_bt requires matrices");
    assert_eq!(b.shape().rank(), 2, "matmul_a_bt requires matrices");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_a_bt inner dim mismatch: {} vs {}", k, k2);
    let mut out = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    // C[i, j] = dot(A[i, :], B[j, :]) — both unit stride.
    parallel_chunks_mut(out.data_mut(), n, k, |i, row| {
        let a_row = &a_data[i * k..(i + 1) * k];
        for (j, o) in row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        assert_close(matmul(&a, &Tensor::eye(5)).data(), a.data(), 1e-6);
        assert_close(matmul(&Tensor::eye(5), &a).data(), a.data(), 1e-6);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let c = matmul_at_b(&a, &b);
        let reference = matmul(&a.transpose2d(), &b);
        assert_close(c.data(), reference.data(), 1e-5);

        let a2 = Tensor::randn(&[3, 7], 1.0, &mut rng);
        let b2 = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let c2 = matmul_a_bt(&a2, &b2);
        let reference2 = matmul(&a2, &b2.transpose2d());
        assert_close(c2.data(), reference2.data(), 1e-5);
    }

    #[test]
    fn large_matmul_matches_naive() {
        let mut rng = Rng::seed_from(3);
        // Large enough to exercise the parallel path.
        let a = Tensor::randn(&[64, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[48, 72], 1.0, &mut rng);
        assert_close(matmul(&a, &b).data(), naive(&a, &b).data(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn incompatible_shapes_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_matches_naive_random() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(seed);
            let (m, k, n) = (1 + rng.below(8), 1 + rng.below(8), 1 + rng.below(8));
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-4, "{m}x{k}x{n} seed {seed}");
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(seed);
            let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let c = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let lhs = matmul(&a, &b.zip(&c, |x, y| x + y));
            let rhs = matmul(&a, &b).zip(&matmul(&a, &c), |x, y| x + y);
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                assert!((x - y).abs() < 1e-3, "seed {seed}");
            }
        }
    }
}
