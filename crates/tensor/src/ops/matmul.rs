//! Blocked, thread-parallel matrix multiplication.
//!
//! Three variants cover everything backpropagation needs without ever
//! materialising a transpose in the public API:
//!
//! * [`matmul`]       — `C = A · B`
//! * [`matmul_at_b`]  — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`]  — `C = A · Bᵀ` (input gradients)
//!
//! Large products pack `B` into [`NR`](super::gemm::NR)-wide column panels
//! and accumulate `MR`×`NR` register tiles (see [`super::gemm`]); small
//! ones use direct loops with bit-identical results. Every variant has a
//! `_with` form that draws its output (and packing scratch) from a caller
//! supplied [`Scratch`] arena so steady-state training reuses buffers
//! instead of allocating; the plain forms use the process-shared arena.
//!
//! # IEEE faithfulness
//!
//! No kernel here skips "cheap" products: `0 × NaN` is `NaN` and
//! `0 × ∞` is `NaN`, and both must reach the output so injected faults
//! propagate instead of being silently masked (the historical
//! `if a_ip == 0.0 { continue; }` shortcut violated exactly this).

use super::gemm::{
    gemm_direct, gemm_direct_abt, gemm_direct_atb, gemm_packed_block, pack_b, pack_bt, packed_len,
    transpose_into, use_packed, MR,
};
use crate::parallel::parallel_chunks_mut;
use crate::scratch::Scratch;
use crate::Tensor;
use tdfm_obs::OpTimer;

/// `C[m,n] = A[m,k] · B[k,n]`.
///
/// Uses the process-shared scratch arena; see [`matmul_with`].
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// let c = ops::matmul(&a, &b);
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with(a, b, Scratch::shared())
}

/// [`matmul`] drawing its output and packing buffers from `scratch`.
///
/// Row blocks of `C` are computed independently on worker threads against
/// a shared packed copy of `B`.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions disagree.
pub fn matmul_with(a: &Tensor, b: &Tensor, scratch: &Scratch) -> Tensor {
    let _t = OpTimer::start("matmul");
    assert!(
        a.shape().matmul_compatible(b.shape()),
        "matmul shape mismatch: {} x {}",
        a.shape(),
        b.shape()
    );
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let mut out = scratch.tensor_uninit(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    if use_packed(m, k, n) {
        let mut packed = scratch.take(packed_len(k, n));
        pack_b(b_data, k, n, &mut packed);
        let packed = &packed[..];
        parallel_chunks_mut(out.data_mut(), MR * n, k, |blk, rows_out| {
            let i0 = blk * MR;
            let rows = rows_out.len() / n;
            gemm_packed_block(
                &a_data[i0 * k..(i0 + rows) * k],
                rows,
                k,
                n,
                packed,
                rows_out,
                false,
            );
        });
    } else {
        gemm_direct(a_data, m, k, n, b_data, out.data_mut(), false);
    }
    out
}

/// `C[m,n] = Aᵀ[m,k] · B[k,n]` where `A` is stored as `[k, m]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_with(a, b, Scratch::shared())
}

/// [`matmul_at_b`] drawing its output and packing buffers from `scratch`.
///
/// # Panics
///
/// Panics if operands are not 2-D or leading dimensions disagree.
pub fn matmul_at_b_with(a: &Tensor, b: &Tensor, scratch: &Scratch) -> Tensor {
    let _t = OpTimer::start("matmul_at_b");
    assert_eq!(a.shape().rank(), 2, "matmul_at_b requires matrices");
    assert_eq!(b.shape().rank(), 2, "matmul_at_b requires matrices");
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_at_b inner dim mismatch: {} vs {}", k, k2);
    let mut out = scratch.tensor_uninit(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    if use_packed(m, k, n) {
        // Transposing A up front turns the column gather into the same
        // row-major tiled product as `matmul`; per-output accumulation
        // order over `p` is unchanged.
        let mut at = scratch.take(m * k);
        transpose_into(a_data, k, m, &mut at);
        let mut packed = scratch.take(packed_len(k, n));
        pack_b(b_data, k, n, &mut packed);
        let at = &at[..];
        let packed = &packed[..];
        parallel_chunks_mut(out.data_mut(), MR * n, k, |blk, rows_out| {
            let i0 = blk * MR;
            let rows = rows_out.len() / n;
            gemm_packed_block(
                &at[i0 * k..(i0 + rows) * k],
                rows,
                k,
                n,
                packed,
                rows_out,
                false,
            );
        });
    } else {
        gemm_direct_atb(a_data, b_data, k, m, n, out.data_mut(), false);
    }
    out
}

/// `C[m,n] = A[m,k] · Bᵀ[k,n]` where `B` is stored as `[n, k]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_with(a, b, Scratch::shared())
}

/// [`matmul_a_bt`] drawing its output and packing buffers from `scratch`.
///
/// # Panics
///
/// Panics if operands are not 2-D or trailing dimensions disagree.
pub fn matmul_a_bt_with(a: &Tensor, b: &Tensor, scratch: &Scratch) -> Tensor {
    let _t = OpTimer::start("matmul_a_bt");
    assert_eq!(a.shape().rank(), 2, "matmul_a_bt requires matrices");
    assert_eq!(b.shape().rank(), 2, "matmul_a_bt requires matrices");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_a_bt inner dim mismatch: {} vs {}", k, k2);
    let mut out = scratch.tensor_uninit(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    if use_packed(m, k, n) {
        // Packing Bᵀ into panels replaces the strict-FP scalar dot (which
        // cannot vectorise) with independent column lanes.
        let mut packed = scratch.take(packed_len(k, n));
        pack_bt(b_data, n, k, &mut packed);
        let packed = &packed[..];
        parallel_chunks_mut(out.data_mut(), MR * n, k, |blk, rows_out| {
            let i0 = blk * MR;
            let rows = rows_out.len() / n;
            gemm_packed_block(
                &a_data[i0 * k..(i0 + rows) * k],
                rows,
                k,
                n,
                packed,
                rows_out,
                false,
            );
        });
    } else {
        gemm_direct_abt(a_data, b_data, m, k, n, out.data_mut(), false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        assert_close(matmul(&a, &Tensor::eye(5)).data(), a.data(), 1e-6);
        assert_close(matmul(&Tensor::eye(5), &a).data(), a.data(), 1e-6);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let c = matmul_at_b(&a, &b);
        let reference = matmul(&a.transpose2d(), &b);
        assert_close(c.data(), reference.data(), 1e-5);

        let a2 = Tensor::randn(&[3, 7], 1.0, &mut rng);
        let b2 = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let c2 = matmul_a_bt(&a2, &b2);
        let reference2 = matmul(&a2, &b2.transpose2d());
        assert_close(c2.data(), reference2.data(), 1e-5);
    }

    #[test]
    fn large_matmul_matches_naive() {
        let mut rng = Rng::seed_from(3);
        // Large enough to exercise the parallel packed path.
        let a = Tensor::randn(&[64, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[48, 72], 1.0, &mut rng);
        assert_close(matmul(&a, &b).data(), naive(&a, &b).data(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn incompatible_shapes_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_matches_naive_random() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(seed);
            let (m, k, n) = (1 + rng.below(8), 1 + rng.below(8), 1 + rng.below(8));
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-4, "{m}x{k}x{n} seed {seed}");
            }
        }
    }

    /// Property sweep over all three variants at shapes spanning the
    /// packed/direct routing boundary, including degenerate 1×k and k×1.
    #[test]
    fn all_variants_match_naive_across_random_shapes() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from(1000 + seed);
            let (m, k, n) = match seed % 4 {
                0 => (1, 1 + rng.below(40), 1 + rng.below(40)), // 1×k row vector
                1 => (1 + rng.below(40), 1 + rng.below(40), 1), // k×1 column output
                2 => (1 + rng.below(12), 1 + rng.below(12), 1 + rng.below(12)),
                _ => (1 + rng.below(40), 1 + rng.below(40), 1 + rng.below(40)),
            };
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let want = naive(&a, &b);
            let tol = 1e-3;
            assert_close(matmul(&a, &b).data(), want.data(), tol);
            assert_close(matmul_at_b(&a.transpose2d(), &b).data(), want.data(), tol);
            assert_close(matmul_a_bt(&a, &b.transpose2d()).data(), want.data(), tol);
        }
    }

    #[test]
    fn matmul_distributes_over_addition() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(seed);
            let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let c = Tensor::randn(&[4, 4], 1.0, &mut rng);
            let lhs = matmul(&a, &b.zip(&c, |x, y| x + y));
            let rhs = matmul(&a, &b).zip(&matmul(&a, &c), |x, y| x + y);
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                assert!((x - y).abs() < 1e-3, "seed {seed}");
            }
        }
    }

    #[test]
    fn with_variants_reuse_arena_buffers() {
        let scratch = Scratch::new();
        let mut rng = Rng::seed_from(11);
        let a = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let first = matmul_with(&a, &b, &scratch);
        let baseline = scratch.stats();
        scratch.recycle(first);
        let second = matmul_with(&a, &b, &scratch);
        let after = scratch.stats();
        assert_eq!(
            after.misses, baseline.misses,
            "second call must not allocate"
        );
        assert_close(second.data(), naive(&a, &b).data(), 1e-4);
    }

    // ---- IEEE fault-propagation regression tests (the zero-skip bugfix).
    // A zero entry meeting NaN/∞ must poison the output, not hide it.

    #[test]
    fn nan_propagates_through_matmul_despite_zero_row() {
        let mut a = Tensor::zeros(&[2, 3]);
        a.set(&[0, 1], f32::NAN);
        let b = Tensor::ones(&[3, 4]);
        let c = matmul(&a, &b);
        for j in 0..4 {
            assert!(c.at(&[0, j]).is_nan(), "NaN row must poison column {j}");
            assert_eq!(c.at(&[1, j]), 0.0, "clean row stays clean");
        }
        // The mirrored case: NaN in B, all-zero A.
        let z = Tensor::zeros(&[2, 3]);
        let mut bn = Tensor::ones(&[3, 4]);
        bn.set(&[2, 1], f32::NAN);
        let c2 = matmul(&z, &bn);
        assert!(c2.at(&[0, 1]).is_nan());
        assert!(c2.at(&[1, 1]).is_nan());
        assert_eq!(c2.at(&[0, 0]), 0.0);
    }

    #[test]
    fn infinity_times_zero_yields_nan_in_matmul() {
        let mut a = Tensor::zeros(&[1, 2]);
        a.set(&[0, 0], f32::INFINITY);
        let b = Tensor::zeros(&[2, 2]);
        let c = matmul(&a, &b);
        assert!(c.at(&[0, 0]).is_nan(), "inf × 0 must be NaN");
        assert!(c.at(&[0, 1]).is_nan());
    }

    #[test]
    fn nan_propagates_through_matmul_at_b() {
        let mut a = Tensor::zeros(&[3, 2]); // stored [k, m]
        a.set(&[1, 0], f32::NAN);
        let b = Tensor::ones(&[3, 4]);
        let c = matmul_at_b(&a, &b);
        for j in 0..4 {
            assert!(c.at(&[0, j]).is_nan(), "column {j}");
            assert_eq!(c.at(&[1, j]), 0.0);
        }
        // Large enough for the packed path.
        let mut big_a = Tensor::zeros(&[16, 8]);
        big_a.set(&[5, 3], f32::INFINITY);
        let big_b = Tensor::zeros(&[16, 16]);
        let cb = matmul_at_b(&big_a, &big_b);
        for j in 0..16 {
            assert!(cb.at(&[3, j]).is_nan(), "inf × 0 column {j}");
        }
    }

    #[test]
    fn nan_propagates_through_matmul_a_bt() {
        let mut a = Tensor::zeros(&[2, 3]);
        a.set(&[1, 2], f32::NAN);
        let b = Tensor::ones(&[4, 3]); // stored [n, k]
        let c = matmul_a_bt(&a, &b);
        for j in 0..4 {
            assert!(c.at(&[1, j]).is_nan(), "column {j}");
            assert_eq!(c.at(&[0, j]), 0.0);
        }
        // Packed-path shape.
        let mut big_a = Tensor::zeros(&[8, 16]);
        big_a.set(&[2, 9], f32::NAN);
        let big_b = Tensor::ones(&[16, 16]);
        let cb = matmul_a_bt(&big_a, &big_b);
        for j in 0..16 {
            assert!(cb.at(&[2, j]).is_nan(), "column {j}");
            assert_eq!(cb.at(&[0, j]), 0.0);
        }
    }
}
