//! 2-D convolution via im2col, with strides, zero padding and groups.
//!
//! `groups == in_channels` yields the depthwise convolutions MobileNet is
//! built from (Table III of the paper); `groups == 1` is an ordinary dense
//! convolution. The batch dimension is processed on worker threads; the
//! per-sample GEMMs are deliberately serial to avoid nested parallelism.
//!
//! All temporaries (im2col columns, packed GEMM panels, per-worker
//! gradient accumulators) come from a [`Scratch`] arena, so steady-state
//! training reuses the same buffers batch after batch. 1×1 stride-1
//! unpadded convolutions skip im2col entirely — the column matrix would be
//! an exact copy of the input.

use super::gemm::{
    gemm_direct, gemm_direct_abt, gemm_direct_atb, gemm_packed_block, pack_b, pack_bt, packed_len,
    transpose_into, use_packed,
};
use crate::parallel::{parallel_chunks_mut, parallel_map_reduce};
use crate::scratch::Scratch;
use crate::Tensor;
use tdfm_obs::OpTimer;

/// Stride / padding / groups configuration of one convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Step between output samples, in input pixels (same for both axes).
    pub stride: usize,
    /// Zero padding added on every border.
    pub pad: usize,
    /// Channel groups; `in_channels` gives a depthwise convolution.
    pub groups: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Self {
            stride: 1,
            pad: 0,
            groups: 1,
        }
    }
}

impl Conv2dSpec {
    /// A stride-1 convolution with "same" padding for odd kernel `k`.
    pub fn same(k: usize) -> Self {
        Self {
            stride: 1,
            pad: k / 2,
            groups: 1,
        }
    }

    /// Whether this spec makes im2col the identity (1×1 kernel, stride 1,
    /// no padding): the column matrix would equal the input, so kernels
    /// can read the input directly.
    fn is_pointwise(&self, kh: usize, kw: usize) -> bool {
        kh == 1 && kw == 1 && self.stride == 1 && self.pad == 0
    }
}

/// Output extent of one spatial axis.
///
/// # Panics
///
/// Panics if `stride` is zero, or if the kernel does not fit in the padded
/// input.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} does not fit input {input} with pad {pad}"
    );
    (padded - kernel) / stride + 1
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input, shaped like the input.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the kernel weights, shaped like the weights.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias, shaped `[out_channels]`.
    pub grad_bias: Tensor,
}

/// Unfolds one sample's channel range into a column matrix.
///
/// `input` is the sample's `[channels, h, w]` buffer; the result is written
/// into `col`, a `[channels*kh*kw, oh*ow]` buffer (row-major).
///
/// # Panics
///
/// Panics if `col` has the wrong length.
pub fn im2col(
    input: &[f32],
    (channels, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    stride: usize,
    pad: usize,
    col: &mut [f32],
) {
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    assert_eq!(
        col.len(),
        channels * kh * kw * oh * ow,
        "im2col buffer size"
    );
    let mut r = 0;
    for c in 0..channels {
        let plane = &input[c * h * w..(c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = &mut col[r * oh * ow..(r + 1) * oh * ow];
                r += 1;
                for oi in 0..oh {
                    let ii = (oi * stride + ki) as isize - pad as isize;
                    let dst = &mut row[oi * ow..(oi + 1) * ow];
                    if ii < 0 || ii >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    if stride == 1 {
                        // Contiguous case: jj = oj + kj - pad walks the
                        // source row at unit stride, so the valid span is
                        // one memcpy flanked by zero padding.
                        // hi >= lo always: both are saturating-clamped
                        // images of pad-kj <= w+pad-kj under min(ow).
                        let lo = pad.saturating_sub(kj).min(ow);
                        let hi = (w + pad).saturating_sub(kj).min(ow);
                        dst[..lo].fill(0.0);
                        if hi > lo {
                            let src0 = lo + kj - pad;
                            dst[lo..hi].copy_from_slice(&src_row[src0..src0 + (hi - lo)]);
                        }
                        dst[hi..].fill(0.0);
                    } else {
                        for (oj, d) in dst.iter_mut().enumerate() {
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            *d = if jj < 0 || jj >= w as isize {
                                0.0
                            } else {
                                src_row[jj as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Folds a column matrix back into an image, accumulating overlaps.
///
/// The adjoint of [`im2col`]: used to push output gradients back to the
/// input.
///
/// # Panics
///
/// Panics if `col` or `out` has the wrong length.
pub fn col2im(
    col: &[f32],
    (channels, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    stride: usize,
    pad: usize,
    out: &mut [f32],
) {
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    assert_eq!(col.len(), channels * kh * kw * oh * ow, "col2im col size");
    assert_eq!(out.len(), channels * h * w, "col2im output size");
    out.fill(0.0);
    let mut r = 0;
    for c in 0..channels {
        let plane_start = c * h * w;
        for ki in 0..kh {
            for kj in 0..kw {
                let row = &col[r * oh * ow..(r + 1) * oh * ow];
                r += 1;
                for oi in 0..oh {
                    let ii = (oi * stride + ki) as isize - pad as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    if stride == 1 {
                        // Adjoint of im2col's memcpy span: one vectorised
                        // `+=` over the contiguous valid range. Each output
                        // element is touched once per (c,ki,kj,oi) visit in
                        // the same order as the scalar loop, so bytes match.
                        let lo = pad.saturating_sub(kj).min(ow);
                        let hi = (w + pad).saturating_sub(kj).min(ow);
                        if hi > lo {
                            let dst0 = plane_start + ii as usize * w + (lo + kj - pad);
                            crate::simd::add_assign(
                                &mut out[dst0..dst0 + (hi - lo)],
                                &row[oi * ow + lo..oi * ow + hi],
                            );
                        }
                    } else {
                        for oj in 0..ow {
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            out[plane_start + ii as usize * w + jj as usize] += row[oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

/// One group's GEMM: `y[m,n] = a[m,k] · b[k,n]`, packed when worth it.
///
/// `b` is the (possibly implicit) column matrix; `scratch` supplies the
/// panel buffer. Both paths accumulate in ascending-`p` order, so results
/// are bit-identical whichever is chosen.
#[allow(clippy::too_many_arguments)]
fn group_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    n: usize,
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
    scratch: &Scratch,
) {
    if use_packed(m, k, n) {
        let mut packed = scratch.take(packed_len(k, n));
        pack_b(b, k, n, &mut packed);
        gemm_packed_block(a, m, k, n, &packed, out, accumulate);
    } else {
        gemm_direct(a, m, k, n, b, out, accumulate);
    }
}

struct ConvDims {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    cg: usize,
    og: usize,
}

fn check_dims(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> ConvDims {
    assert_eq!(input.shape().rank(), 4, "conv input must be NCHW");
    assert_eq!(
        weight.shape().rank(),
        4,
        "conv weight must be [O, C/g, KH, KW]"
    );
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let (o, cg, kh, kw) = (
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    );
    assert!(spec.groups > 0, "groups must be positive");
    assert_eq!(
        c % spec.groups,
        0,
        "in_channels {c} not divisible by groups {}",
        spec.groups
    );
    assert_eq!(
        o % spec.groups,
        0,
        "out_channels {o} not divisible by groups {}",
        spec.groups
    );
    assert_eq!(
        cg,
        c / spec.groups,
        "weight channel dim {cg} != C/groups {}",
        c / spec.groups
    );
    let oh = conv_out_dim(h, kh, spec.stride, spec.pad);
    let ow = conv_out_dim(w, kw, spec.stride, spec.pad);
    ConvDims {
        n,
        c,
        h,
        w,
        o,
        kh,
        kw,
        oh,
        ow,
        cg,
        og: o / spec.groups,
    }
}

/// Convolution forward pass.
///
/// * `input`  — `[N, C, H, W]`
/// * `weight` — `[O, C/groups, KH, KW]`
/// * `bias`   — optional `[O]`
///
/// Returns `[N, O, OH, OW]`. Uses the process-shared scratch arena; see
/// [`conv2d_forward_with`].
///
/// # Panics
///
/// Panics on any shape inconsistency (see [`Conv2dSpec`]).
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Tensor {
    conv2d_forward_with(input, weight, bias, spec, Scratch::shared())
}

/// [`conv2d_forward`] drawing every temporary from `scratch`.
///
/// # Panics
///
/// Panics on any shape inconsistency (see [`Conv2dSpec`]).
pub fn conv2d_forward_with(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    scratch: &Scratch,
) -> Tensor {
    let _t = OpTimer::start("conv2d_forward");
    let d = check_dims(input, weight, spec);
    if let Some(b) = bias {
        assert_eq!(b.shape().dims(), &[d.o], "bias must be [out_channels]");
    }
    let mut out = scratch.tensor_uninit(&[d.n, d.o, d.oh, d.ow]);
    let x = input.data();
    let wt = weight.data();
    let kdim = d.cg * d.kh * d.kw;
    let sample_in = d.c * d.h * d.w;
    let sample_out = d.o * d.oh * d.ow;
    let pointwise = spec.is_pointwise(d.kh, d.kw);
    let work = kdim; // MACs per output element
    parallel_chunks_mut(out.data_mut(), sample_out, work, |s, y| {
        let xin = &x[s * sample_in..(s + 1) * sample_in];
        let mut col = if pointwise {
            None // im2col would be an exact copy of the input
        } else {
            Some(scratch.take(kdim * d.oh * d.ow))
        };
        for g in 0..spec.groups {
            let xin_g = &xin[g * d.cg * d.h * d.w..(g + 1) * d.cg * d.h * d.w];
            let cols: &[f32] = match col.as_mut() {
                None => xin_g,
                Some(col) => {
                    im2col(
                        xin_g,
                        (d.cg, d.h, d.w),
                        (d.kh, d.kw),
                        spec.stride,
                        spec.pad,
                        col,
                    );
                    col
                }
            };
            let w_g = &wt[g * d.og * kdim..(g + 1) * d.og * kdim];
            let y_g = &mut y[g * d.og * d.oh * d.ow..(g + 1) * d.og * d.oh * d.ow];
            group_gemm(w_g, d.og, kdim, d.oh * d.ow, cols, y_g, false, scratch);
        }
        if let Some(b) = bias {
            let bd = b.data();
            for (oc, plane) in y.chunks_mut(d.oh * d.ow).enumerate() {
                crate::simd::add_scalar(plane, bd[oc]);
            }
        }
    });
    out
}

/// Convolution backward pass.
///
/// Given the forward inputs and the gradient w.r.t. the output, computes the
/// gradients w.r.t. input, weights and bias. Weight/bias gradients are
/// accumulated per worker and reduced. Uses the process-shared scratch
/// arena; see [`conv2d_backward_with`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: Conv2dSpec,
) -> ConvGrads {
    conv2d_backward_with(input, weight, grad_output, spec, Scratch::shared())
}

/// [`conv2d_backward`] drawing every temporary from `scratch`.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_with(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: Conv2dSpec,
    scratch: &Scratch,
) -> ConvGrads {
    let _t = OpTimer::start("conv2d_backward");
    let d = check_dims(input, weight, spec);
    assert_eq!(
        grad_output.shape().dims(),
        &[d.n, d.o, d.oh, d.ow],
        "grad_output shape mismatch"
    );
    let x = input.data();
    let wt = weight.data();
    let gy = grad_output.data();
    let kdim = d.cg * d.kh * d.kw;
    let sample_in = d.c * d.h * d.w;
    let sample_out = d.o * d.oh * d.ow;
    let ohow = d.oh * d.ow;
    let pointwise = spec.is_pointwise(d.kh, d.kw);

    // Input gradient: grad_col[kdim, ohow] = w_gᵀ · gy_g, folded back with
    // col2im. The weight transpose is shared across samples, so build it
    // once when the packed path will use it.
    let input_packed = use_packed(kdim, d.og, ohow);
    let wt_t = if input_packed {
        let mut t = scratch.take(d.o * kdim);
        for g in 0..spec.groups {
            transpose_into(
                &wt[g * d.og * kdim..(g + 1) * d.og * kdim],
                d.og,
                kdim,
                &mut t[g * kdim * d.og..(g + 1) * kdim * d.og],
            );
        }
        Some(t)
    } else {
        None
    };
    let wt_t = wt_t.as_deref();
    let mut grad_input = scratch.tensor_uninit(input.shape().dims());
    parallel_chunks_mut(grad_input.data_mut(), sample_in, kdim, |s, gx| {
        let gys = &gy[s * sample_out..(s + 1) * sample_out];
        let mut grad_col = if pointwise {
            None // col2im would be the identity: write gx directly
        } else {
            Some(scratch.take(kdim * ohow))
        };
        for g in 0..spec.groups {
            let gy_g = &gys[g * d.og * ohow..(g + 1) * d.og * ohow];
            let dst: &mut [f32] = match grad_col.as_mut() {
                None => &mut gx[g * d.cg * d.h * d.w..(g + 1) * d.cg * d.h * d.w],
                Some(col) => col,
            };
            if let Some(wt_t) = wt_t {
                let wt_g = &wt_t[g * kdim * d.og..(g + 1) * kdim * d.og];
                let mut packed = scratch.take(packed_len(d.og, ohow));
                pack_b(gy_g, d.og, ohow, &mut packed);
                gemm_packed_block(wt_g, kdim, d.og, ohow, &packed, dst, false);
            } else {
                let w_g = &wt[g * d.og * kdim..(g + 1) * d.og * kdim];
                gemm_direct_atb(w_g, gy_g, d.og, kdim, ohow, dst, false);
            }
            if let Some(col) = grad_col.as_deref() {
                col2im(
                    col,
                    (d.cg, d.h, d.w),
                    (d.kh, d.kw),
                    spec.stride,
                    spec.pad,
                    &mut gx[g * d.cg * d.h * d.w..(g + 1) * d.cg * d.h * d.w],
                );
            }
        }
    });

    // Weight and bias gradients: map-reduce over samples. Each worker
    // accumulates into pooled buffers; the reduced sums are copied into
    // pooled tensors at the end (both sides of the copy reuse warm arena
    // buffers, so steady state stays allocation-free).
    let weight_packed = use_packed(d.og, ohow, kdim);
    let per_sample_work = d.o * ohow * kdim;
    let reduced = parallel_map_reduce(
        d.n,
        per_sample_work,
        |range| {
            let mut gw = scratch.take_zeroed(d.o * kdim);
            let mut gb = scratch.take_zeroed(d.o);
            let mut col = if pointwise {
                None
            } else {
                Some(scratch.take(kdim * ohow))
            };
            for s in range {
                let xin = &x[s * sample_in..(s + 1) * sample_in];
                let gys = &gy[s * sample_out..(s + 1) * sample_out];
                for g in 0..spec.groups {
                    let xin_g = &xin[g * d.cg * d.h * d.w..(g + 1) * d.cg * d.h * d.w];
                    let cols: &[f32] = match col.as_mut() {
                        None => xin_g,
                        Some(col) => {
                            im2col(
                                xin_g,
                                (d.cg, d.h, d.w),
                                (d.kh, d.kw),
                                spec.stride,
                                spec.pad,
                                col,
                            );
                            col
                        }
                    };
                    let gy_g = &gys[g * d.og * ohow..(g + 1) * d.og * ohow];
                    let gw_g = &mut gw[g * d.og * kdim..(g + 1) * d.og * kdim];
                    // gw_g[og, kdim] += gy_g[og, ohow] · colsᵀ[ohow, kdim]
                    if weight_packed {
                        let mut packed = scratch.take(packed_len(ohow, kdim));
                        pack_bt(cols, kdim, ohow, &mut packed);
                        gemm_packed_block(gy_g, d.og, ohow, kdim, &packed, gw_g, true);
                    } else {
                        gemm_direct_abt(gy_g, cols, d.og, ohow, kdim, gw_g, true);
                    }
                }
                for (oc, plane) in gys.chunks(ohow).enumerate() {
                    gb[oc] += plane.iter().sum::<f32>();
                }
            }
            (gw, gb)
        },
        |(mut gw_a, mut gb_a), (gw_b, gb_b)| {
            crate::simd::add_assign(&mut gw_a, &gw_b);
            crate::simd::add_assign(&mut gb_a, &gb_b);
            (gw_a, gb_a)
        },
    )
    .expect("batch dimension is non-zero");

    let mut grad_weight = scratch.tensor_uninit(weight.shape().dims());
    grad_weight.data_mut().copy_from_slice(&reduced.0);
    let mut grad_bias = scratch.tensor_uninit(&[d.o]);
    grad_bias.data_mut().copy_from_slice(&reduced.1);
    ConvGrads {
        grad_input,
        grad_weight,
        grad_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;

    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        let (o, cg, kh, kw) = (
            weight.shape().dim(0),
            weight.shape().dim(1),
            weight.shape().dim(2),
            weight.shape().dim(3),
        );
        let oh = conv_out_dim(h, kh, spec.stride, spec.pad);
        let ow = conv_out_dim(w, kw, spec.stride, spec.pad);
        let og = o / spec.groups;
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for s in 0..n {
            for oc in 0..o {
                let g = oc / og;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b.data()[oc]);
                        for ic in 0..cg {
                            let c_in = g * cg + ic;
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii = (oi * spec.stride + ki) as isize - spec.pad as isize;
                                    let jj = (oj * spec.stride + kj) as isize - spec.pad as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[s, c_in, ii as usize, jj as usize])
                                        * weight.at(&[oc, ic, ki, kj]);
                                }
                            }
                        }
                        out.set(&[s, oc, oi, oj], acc);
                    }
                }
            }
        }
        let _ = c;
        out
    }

    #[test]
    fn forward_matches_naive_basic() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.5, &mut rng);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 1,
            groups: 1,
        };
        let fast = conv2d_forward(&x, &w, Some(&b), spec);
        let slow = naive_conv(&x, &w, Some(&b), spec);
        assert_eq!(fast.shape().dims(), &[2, 4, 6, 6]);
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn forward_matches_naive_strided() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[1, 2, 7, 7], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let spec = Conv2dSpec {
            stride: 2,
            pad: 1,
            groups: 1,
        };
        let fast = conv2d_forward(&x, &w, None, spec);
        let slow = naive_conv(&x, &w, None, spec);
        assert_eq!(fast.shape().dims(), &[1, 3, 4, 4]);
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn forward_matches_naive_depthwise() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 4, 5, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 1, 3, 3], 0.5, &mut rng);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 1,
            groups: 4,
        };
        let fast = conv2d_forward(&x, &w, None, spec);
        let slow = naive_conv(&x, &w, None, spec);
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    /// Property sweep: random geometries (including 1×1 kernels, stride 2,
    /// depthwise groups) against the reference implementation, exercising
    /// both GEMM paths and the pointwise fast path.
    #[test]
    fn forward_and_weight_grads_match_naive_across_random_geometries() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(2000 + seed);
            let groups = [1, 1, 2, 4][rng.below(4)];
            let cg = 1 + rng.below(3);
            let c = cg * groups;
            let og = 1 + rng.below(3);
            let o = og * groups;
            let k = [1, 2, 3][rng.below(3)];
            let stride = 1 + rng.below(2);
            let pad = rng.below(k); // pad < k keeps the kernel fitting
            let h = k + rng.below(6);
            let w = k + rng.below(6);
            let n = 1 + rng.below(3);
            let spec = Conv2dSpec {
                stride,
                pad,
                groups,
            };
            let x = Tensor::randn(&[n, c, h, w], 1.0, &mut rng);
            let wt = Tensor::randn(&[o, cg, k, k], 0.5, &mut rng);
            let fast = conv2d_forward(&x, &wt, None, spec);
            let slow = naive_conv(&x, &wt, None, spec);
            assert_close(fast.data(), slow.data(), 1e-3);

            // Weight gradient of loss = sum(out) equals a convolution of
            // ones; check against finite differences at a few entries.
            let gy = Tensor::ones(fast.shape().dims());
            let grads = conv2d_backward(&x, &wt, &gy, spec);
            let eps = 1e-2;
            for i in [0, wt.numel() / 2, wt.numel() - 1] {
                let mut wp = wt.clone();
                wp.data_mut()[i] += eps;
                let mut wm = wt.clone();
                wm.data_mut()[i] -= eps;
                let num = (conv2d_forward(&x, &wp, None, spec).sum()
                    - conv2d_forward(&x, &wm, None, spec).sum())
                    / (2.0 * eps);
                let ana = grads.grad_weight.data()[i];
                assert!(
                    (num - ana).abs() < 2e-2,
                    "seed {seed} w[{i}]: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let mut rng = Rng::seed_from(4);
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 5, 3, 3, 2, 1);
        let oh = conv_out_dim(h, kh, stride, pad);
        let ow = conv_out_dim(w, kw, stride, pad);
        let x = Tensor::randn(&[c * h * w], 1.0, &mut rng);
        let y = Tensor::randn(&[c * kh * kw * oh * ow], 1.0, &mut rng);
        let mut cx = vec![0.0; c * kh * kw * oh * ow];
        im2col(x.data(), (c, h, w), (kh, kw), stride, pad, &mut cx);
        let mut ay = vec![0.0; c * h * w];
        col2im(y.data(), (c, h, w), (kh, kw), stride, pad, &mut ay);
        let lhs: f32 = cx.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(&ay).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Numerical check of the full backward pass against finite differences.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[2], 0.5, &mut rng);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 1,
            groups: 1,
        };
        // Loss = sum(conv(x)) so grad_output = ones.
        let y = conv2d_forward(&x, &w, Some(&b), spec);
        let gy = Tensor::ones(y.shape().dims());
        let grads = conv2d_backward(&x, &w, &gy, spec);

        let eps = 1e-2;
        // d loss / d x[i] via central differences.
        for i in [0usize, 7, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = conv2d_forward(&xp, &w, Some(&b), spec).sum();
            let fm = conv2d_forward(&xm, &w, Some(&b), spec).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.grad_input.data()[i];
            assert!((num - ana).abs() < 1e-2, "x[{i}]: {num} vs {ana}");
        }
        for i in [0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fp = conv2d_forward(&x, &wp, Some(&b), spec).sum();
            let fm = conv2d_forward(&x, &wm, Some(&b), spec).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[i];
            assert!((num - ana).abs() < 1e-2, "w[{i}]: {num} vs {ana}");
        }
        // Bias gradient is the number of output pixels per channel.
        let pixels = (y.numel() / 2) as f32;
        assert_close(grads.grad_bias.data(), &[pixels, pixels], 1e-2);
    }

    #[test]
    fn backward_depthwise_finite_differences() {
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 1, 3, 3], 0.5, &mut rng);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 1,
            groups: 3,
        };
        let y = conv2d_forward(&x, &w, None, spec);
        let gy = Tensor::ones(y.shape().dims());
        let grads = conv2d_backward(&x, &w, &gy, spec);
        let eps = 1e-2;
        for i in [0usize, 10, 26] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (conv2d_forward(&x, &wp, None, spec).sum()
                - conv2d_forward(&x, &wm, None, spec).sum())
                / (2.0 * eps);
            let ana = grads.grad_weight.data()[i];
            assert!((num - ana).abs() < 1e-2, "w[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn backward_pointwise_matches_padded_1x1() {
        // The pointwise fast path (1×1, stride 1, pad 0) must agree with
        // the generic im2col path; compare against a padded 1×1 conv that
        // is forced down the generic route on the interior.
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[5, 3, 1, 1], 0.5, &mut rng);
        let fast_spec = Conv2dSpec::default(); // pointwise fast path
        let y = conv2d_forward(&x, &w, None, fast_spec);
        let slow = naive_conv(&x, &w, None, fast_spec);
        assert_close(y.data(), slow.data(), 1e-4);

        let gy = Tensor::ones(y.shape().dims());
        let grads = conv2d_backward(&x, &w, &gy, fast_spec);
        let eps = 1e-2;
        for i in [0usize, 20, 47] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (conv2d_forward(&xp, &w, None, fast_spec).sum()
                - conv2d_forward(&xm, &w, None, fast_spec).sum())
                / (2.0 * eps);
            let ana = grads.grad_input.data()[i];
            assert!((num - ana).abs() < 1e-2, "x[{i}]: {num} vs {ana}");
        }
        for i in [0usize, 7, 14] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (conv2d_forward(&x, &wp, None, fast_spec).sum()
                - conv2d_forward(&x, &wm, None, fast_spec).sum())
                / (2.0 * eps);
            let ana = grads.grad_weight.data()[i];
            assert!((num - ana).abs() < 1e-2, "w[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible by groups")]
    fn bad_groups_rejected() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let _ = conv2d_forward(
            &x,
            &w,
            None,
            Conv2dSpec {
                stride: 1,
                pad: 1,
                groups: 2,
            },
        );
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8); // "same"
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(5, 5, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_names_the_stride() {
        let _ = conv_out_dim(8, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "kernel 5 does not fit input 3 with pad 0")]
    fn oversized_kernel_names_the_kernel() {
        let _ = conv_out_dim(3, 5, 1, 0);
    }

    #[test]
    fn nan_in_input_poisons_forward_output() {
        // Zero weights must not mask an injected NaN: 0 × NaN = NaN.
        let mut x = Tensor::zeros(&[1, 1, 4, 4]);
        x.data_mut()[5] = f32::NAN;
        let w = Tensor::zeros(&[1, 1, 3, 3]);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 0,
            groups: 1,
        };
        let y = conv2d_forward(&x, &w, None, spec);
        // Every output window covering x[1,1] must be NaN.
        assert!(y.data().iter().all(|v| v.is_nan()), "{:?}", y.data());
    }

    #[test]
    fn pointwise_1x1_is_a_channel_mix() {
        // A 1x1 convolution is a per-pixel linear map over channels.
        let mut rng = Rng::seed_from(7);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let w = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2, 1, 1]);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 0,
            groups: 1,
        };
        let y = conv2d_forward(&x, &w, None, spec);
        for i in 0..9 {
            assert!((y.data()[i] - 2.0 * x.data()[i]).abs() < 1e-5);
            assert!((y.data()[9 + i] - 3.0 * x.data()[9 + i]).abs() < 1e-5);
        }
    }

    #[test]
    fn stride_larger_than_kernel() {
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[1, 1, 7, 7], 1.0, &mut rng);
        let w = Tensor::randn(&[1, 1, 1, 1], 1.0, &mut rng);
        let spec = Conv2dSpec {
            stride: 3,
            pad: 0,
            groups: 1,
        };
        let y = conv2d_forward(&x, &w, None, spec);
        assert_eq!(y.shape().dims(), &[1, 1, 3, 3]);
        let slow = naive_conv(&x, &w, None, spec);
        assert_close(y.data(), slow.data(), 1e-5);
    }

    #[test]
    fn grouped_conv_between_dense_and_depthwise() {
        // groups = 2 with 4 in / 6 out channels.
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[2, 4, 5, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[6, 2, 3, 3], 0.4, &mut rng);
        let spec = Conv2dSpec {
            stride: 1,
            pad: 1,
            groups: 2,
        };
        let fast = conv2d_forward(&x, &w, None, spec);
        // Cross-check group separation: zeroing group 2's input must not
        // change group 1's output.
        let mut x2 = x.clone();
        for s in 0..2 {
            for c in 2..4 {
                let base = (s * 4 + c) * 25;
                x2.data_mut()[base..base + 25].fill(0.0);
            }
        }
        let fast2 = conv2d_forward(&x2, &w, None, spec);
        // Output channels 0..3 belong to group 1 and depend only on input
        // channels 0..1.
        for s in 0..2 {
            for oc in 0..3 {
                let base = (s * 6 + oc) * 25;
                assert_close(
                    &fast.data()[base..base + 25],
                    &fast2.data()[base..base + 25],
                    1e-5,
                );
            }
        }
    }
}
