//! A reusable buffer arena for the training hot path.
//!
//! Every training batch needs the same temporaries as the previous one:
//! im2col column matrices, packed GEMM panels, layer outputs, gradient
//! buffers. Allocating them anew per batch is exactly the overhead the
//! PyTorchFI-extension work (Gräfe et al.) identifies as dominating
//! large-scale fault-injection campaigns. [`Scratch`] is a checkout /
//! check-in pool of buffers: once the pool is warm — after the first batch
//! — steady-state training performs zero heap allocations in the
//! dense/conv hot path.
//!
//! Three element pools back the arena:
//!
//! * raw `f32` checkouts ([`Scratch::take`]) are [`AlignedVec`]s whose base
//!   address is 32-byte aligned, so the AVX2 kernels' 8-lane accesses to
//!   im2col columns and packed GEMM panels never straddle a cache line;
//! * [`Tensor`] checkouts ([`Scratch::tensor_uninit`]) reuse plain
//!   `Vec<f32>` buffers (tensors are `Vec`-backed);
//! * `u32` checkouts ([`Scratch::take_u32`]) serve max-pool argmax caches.
//!
//! # Ownership rules
//!
//! * Kernels borrow short-lived temporaries via [`Scratch::take`]; the
//!   returned [`ScratchBuf`] checks itself back in on drop (RAII).
//! * Layer outputs are full [`Tensor`]s drawn with
//!   [`Scratch::tensor_uninit`] / [`Scratch::tensor_zeroed`]; whoever ends
//!   up owning such a tensor may hand its buffer back with
//!   [`Scratch::recycle`] — or simply drop it (correct, just not reused).
//! * `tensor_uninit` buffers hold stale values from earlier batches; the
//!   caller must overwrite every element before reading any. Kernels that
//!   accumulate (`+=`) must start from [`Scratch::tensor_zeroed`].
//! * The pool is size-agnostic: a buffer checked in at one shape may be
//!   handed out at another. Capacity is reused, lengths are adjusted.
//!
//! The pool is bounded ([`Scratch::MAX_POOLED`] buffers per element type);
//! check-ins beyond the bound free the buffer instead of growing the pool.

use crate::align::{AlignedVec, SIMD_ALIGN};
use crate::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A shareable handle on a [`Scratch`] arena.
///
/// Layers hold one of these (see `Layer::bind_scratch` in `tdfm-nn`), so an
/// arena can be threaded through a whole network and a training loop.
pub type ScratchHandle = Arc<Scratch>;

/// Counters describing how well an arena is being reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Checkouts served from the pool (no heap allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked in the pool.
    pub pooled: u64,
}

impl ScratchStats {
    /// Total checkouts.
    pub fn checkouts(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Best-fit checkout: the smallest pooled buffer whose capacity covers
/// `len`, or — when none suffices — the largest, so its backing allocation
/// grows and keeps circulating instead of piling up undersized.
fn best_fit<T>(pool: &mut Vec<T>, len: usize, cap: impl Fn(&T) -> usize) -> Option<T> {
    let mut best: Option<(usize, usize)> = None;
    for (i, buf) in pool.iter().enumerate() {
        let c = cap(buf);
        if c >= len && best.is_none_or(|(_, bc)| c < bc) {
            best = Some((i, c));
        }
    }
    match best {
        Some((i, _)) => Some(pool.swap_remove(i)),
        None => {
            let largest = (0..pool.len()).max_by_key(|&i| cap(&pool[i]));
            largest.map(|i| pool.swap_remove(i))
        }
    }
}

/// A bounded checkout/check-in pool of reusable buffers.
///
/// Thread-safe: kernels running on worker threads check buffers out and in
/// concurrently. The lock is held only for the (short) pool scan, never
/// while a buffer is in use.
#[derive(Debug, Default)]
pub struct Scratch {
    f32_pool: Mutex<Vec<AlignedVec>>,
    tensor_pool: Mutex<Vec<Vec<f32>>>,
    u32_pool: Mutex<Vec<Vec<u32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Scratch {
    /// Most buffers retained per element type; check-ins beyond this are
    /// freed rather than pooled.
    pub const MAX_POOLED: usize = 128;

    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared arena.
    ///
    /// Code without an explicitly bound arena (one-off kernel calls,
    /// evaluation passes) draws from this one, so buffer reuse happens by
    /// default across the whole process.
    pub fn shared() -> &'static ScratchHandle {
        static SHARED: OnceLock<ScratchHandle> = OnceLock::new();
        SHARED.get_or_init(|| Arc::new(Scratch::new()))
    }

    /// Reuse counters for this arena.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pooled: (self.f32_pool.lock().expect("scratch pool poisoned").len()
                + self
                    .tensor_pool
                    .lock()
                    .expect("scratch pool poisoned")
                    .len()
                + self.u32_pool.lock().expect("scratch pool poisoned").len())
                as u64,
        }
    }

    fn checkout_aligned(&self, len: usize) -> AlignedVec {
        let picked = {
            let mut pool = self.f32_pool.lock().expect("scratch pool poisoned");
            // tdfm-lint: allow(lock-held-across-call, best_fit only scans the locked pool itself; it takes no lock and cannot block)
            best_fit(&mut pool, len, AlignedVec::capacity)
        };
        let mut buf = match picked {
            Some(buf) => {
                if buf.capacity() >= len {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                AlignedVec::new()
            }
        };
        buf.resize_zeroed(len);
        debug_assert!(
            len == 0 || (buf.as_slice().as_ptr() as usize).is_multiple_of(SIMD_ALIGN),
            "scratch checkout must be {SIMD_ALIGN}-byte aligned"
        );
        buf
    }

    fn checkin_aligned(&self, mut buf: AlignedVec) {
        let mut pool = self.f32_pool.lock().expect("scratch pool poisoned");
        if pool.len() < Self::MAX_POOLED {
            buf.clear();
            pool.push(buf);
        }
    }

    fn checkout_tensor_vec(&self, len: usize) -> Vec<f32> {
        let picked = {
            let mut pool = self.tensor_pool.lock().expect("scratch pool poisoned");
            // tdfm-lint: allow(lock-held-across-call, best_fit only scans the locked pool itself; it takes no lock and cannot block)
            best_fit(&mut pool, len, |b: &Vec<f32>| b.capacity())
        };
        match picked {
            Some(mut buf) => {
                if buf.capacity() >= len {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // tdfm-lint: allow(hot-path-alloc, pool miss: the one allocation the scratch arena exists to amortise)
                vec![0.0; len]
            }
        }
    }

    fn checkin_tensor_vec(&self, mut buf: Vec<f32>) {
        let mut pool = self.tensor_pool.lock().expect("scratch pool poisoned");
        if pool.len() < Self::MAX_POOLED {
            buf.clear();
            pool.push(buf);
        }
    }

    /// Checks out an `f32` buffer of exactly `len` elements, 32-byte
    /// aligned for the vector kernels.
    ///
    /// Contents are unspecified (the current implementation hands out
    /// zeroed memory, but callers must not rely on it); overwrite before
    /// reading. Use [`Scratch::take_zeroed`] when the caller accumulates.
    pub fn take(&self, len: usize) -> ScratchBuf<'_> {
        ScratchBuf {
            owner: self,
            buf: self.checkout_aligned(len),
        }
    }

    /// [`Scratch::take`], with the buffer guaranteed zero-filled.
    pub fn take_zeroed(&self, len: usize) -> ScratchBuf<'_> {
        let mut b = self.take(len);
        b.buf.as_mut_slice().fill(0.0);
        b
    }

    /// Checks out a `u32` buffer of exactly `len` elements (max-pool
    /// argmax caches). Contents are unspecified.
    pub fn take_u32(&self, len: usize) -> ScratchBufU32<'_> {
        let picked = {
            let mut pool = self.u32_pool.lock().expect("scratch pool poisoned");
            pool.pop()
        };
        let buf = match picked {
            Some(mut buf) => {
                if buf.capacity() >= len {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                buf.resize(len, 0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // tdfm-lint: allow(hot-path-alloc, pool miss: the one allocation the scratch arena exists to amortise)
                vec![0; len]
            }
        };
        ScratchBufU32 { owner: self, buf }
    }

    /// A tensor whose buffer comes from the pool, contents unspecified.
    ///
    /// Every element must be written before it is read; kernels that store
    /// with `=` (the packed GEMM, pooling, element-wise maps) can use this
    /// directly.
    pub fn tensor_uninit(&self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(self.checkout_tensor_vec(n), dims)
    }

    /// A zero-filled tensor whose buffer comes from the pool.
    pub fn tensor_zeroed(&self, dims: &[usize]) -> Tensor {
        let mut t = self.tensor_uninit(dims);
        t.fill(0.0);
        t
    }

    /// Checks a tensor's buffer back into the pool.
    ///
    /// Taking ownership guarantees no live reference can observe the buffer
    /// being reused; recycling a tensor the arena never produced is fine
    /// (its buffer simply joins the pool).
    pub fn recycle(&self, tensor: Tensor) {
        self.checkin_tensor_vec(tensor.into_vec());
    }

    /// Checks a raw `u32` buffer back into the pool.
    pub fn recycle_u32(&self, buf: Vec<u32>) {
        let mut pool = self.u32_pool.lock().expect("scratch pool poisoned");
        if pool.len() < Self::MAX_POOLED {
            let mut buf = buf;
            buf.clear();
            pool.push(buf);
        }
    }
}

/// RAII checkout of an aligned `f32` buffer; checks itself back in on drop.
#[derive(Debug)]
pub struct ScratchBuf<'a> {
    owner: &'a Scratch,
    buf: AlignedVec,
}

impl ScratchBuf<'_> {
    /// Allocated capacity of the underlying buffer.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl std::ops::Deref for ScratchBuf<'_> {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_slice()
    }
}

impl std::ops::DerefMut for ScratchBuf<'_> {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf.as_mut_slice()
    }
}

impl Drop for ScratchBuf<'_> {
    fn drop(&mut self) {
        if self.buf.capacity() > 0 {
            self.owner.checkin_aligned(std::mem::take(&mut self.buf));
        }
    }
}

/// RAII checkout of a `u32` buffer; checks itself back in on drop.
#[derive(Debug)]
pub struct ScratchBufU32<'a> {
    owner: &'a Scratch,
    buf: Vec<u32>,
}

impl ScratchBufU32<'_> {
    /// Detaches the buffer from the RAII guard.
    pub fn into_vec(mut self) -> Vec<u32> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for ScratchBufU32<'_> {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchBufU32<'_> {
    fn deref_mut(&mut self) -> &mut [u32] {
        &mut self.buf
    }
}

impl Drop for ScratchBufU32<'_> {
    fn drop(&mut self) {
        if self.buf.capacity() > 0 {
            self.owner.recycle_u32(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_then_drop_is_a_hit_next_time() {
        let s = Scratch::new();
        {
            let _b = s.take(64);
        }
        assert_eq!(s.stats().misses, 1);
        {
            let _b = s.take(64);
        }
        let st = s.stats();
        assert_eq!(st.misses, 1, "second checkout must reuse the buffer");
        assert_eq!(st.hits, 1);
    }

    #[test]
    fn checkouts_are_32_byte_aligned() {
        let s = Scratch::new();
        for len in [1usize, 7, 8, 64, 1000, 4097] {
            let b = s.take(len);
            assert_eq!(
                b.as_ptr() as usize % SIMD_ALIGN,
                0,
                "take({len}) must hand out a {SIMD_ALIGN}-byte-aligned buffer"
            );
        }
        // Pooled round trips stay aligned too.
        let again = s.take(4097);
        assert_eq!(again.as_ptr() as usize % SIMD_ALIGN, 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let s = Scratch::new();
        // Warm the raw pool with a large and a small buffer (checked out
        // simultaneously so the small one is not served by the large).
        let warm_big = s.take(1000);
        let warm_small = s.take(10);
        drop(warm_big);
        drop(warm_small);
        let b = s.take(8);
        // The 10-element buffer serves the request; the 1000 stays pooled.
        assert!(b.len() == 8 && b.capacity() < 1000);
        drop(b);
        let misses_before = s.stats().misses;
        let big = s.take(900);
        assert_eq!(
            s.stats().misses,
            misses_before,
            "1000-cap buffer serves 900"
        );
        assert!(big.capacity() >= 1000);
    }

    #[test]
    fn tensor_pool_best_fit_matches() {
        let s = Scratch::new();
        s.recycle(Tensor::zeros(&[1000]));
        s.recycle(Tensor::zeros(&[10]));
        let t = s.tensor_uninit(&[8]);
        assert!(t.data().len() == 8 && t.into_vec().capacity() < 1000);
        let big = s.tensor_uninit(&[900]);
        assert_eq!(s.stats().misses, 0);
        assert!(big.into_vec().capacity() >= 1000);
    }

    #[test]
    fn undersized_buffers_are_grown_not_abandoned() {
        let s = Scratch::new();
        drop(s.take(4)); // one miss: seeds the pool
        let b = s.take(100); // a second miss (growth) but reuses the slot
        assert_eq!(b.len(), 100);
        assert_eq!(s.stats().misses, 2);
        drop(b);
        assert_eq!(s.stats().pooled, 1, "grown buffer returns to the pool");
        let c = s.take(100);
        assert_eq!(s.stats().hits, 1);
        assert!(c.capacity() >= 100);
    }

    #[test]
    fn tensors_round_trip_through_the_pool() {
        let s = Scratch::new();
        let t = s.tensor_zeroed(&[3, 4]);
        assert_eq!(t.shape().dims(), &[3, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
        s.recycle(t);
        let t2 = s.tensor_uninit(&[2, 6]);
        assert_eq!(t2.numel(), 12);
        assert_eq!(s.stats().hits, 1, "same capacity, different shape");
    }

    #[test]
    fn pool_is_bounded() {
        let s = Scratch::new();
        for _ in 0..(Scratch::MAX_POOLED + 10) {
            s.recycle(Tensor::zeros(&[8]));
        }
        assert_eq!(s.stats().pooled, Scratch::MAX_POOLED as u64);
    }

    #[test]
    fn u32_buffers_pool_too() {
        let s = Scratch::new();
        {
            let _a = s.take_u32(16);
        }
        let b = s.take_u32(16);
        assert_eq!(b.len(), 16);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn shared_arena_is_a_singleton() {
        let a = Scratch::shared();
        let b = Scratch::shared();
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn concurrent_checkouts_are_safe() {
        let s = Scratch::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let mut b = s.take(32);
                        b[0] = 1.0;
                    }
                });
            }
        });
        let st = s.stats();
        assert_eq!(st.checkouts(), 400);
        assert!(st.pooled <= 4);
    }
}
