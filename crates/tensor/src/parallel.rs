//! A small data-parallel runtime built on std scoped threads.
//!
//! The TDFM study replaces the paper's GPU cluster with CPU threads: the
//! convolution and matmul kernels split their output across worker threads,
//! and ensemble members train on separate threads. Work below a threshold is
//! run inline to avoid thread overhead on the study's many small kernels.
//!
//! # Two-level thread budget
//!
//! The experiment grid adds an *outer* level of parallelism (whole cells /
//! repetitions on worker threads). To keep outer × inner from
//! oversubscribing the machine, outer workers wrap their work in
//! [`with_inner_threads`], which scopes a per-thread cap on the kernel
//! thread count. The cap is thread-local, so kernel parallelism on one
//! outer worker never constrains another.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Estimated total work (elements x per-element cost) below which a kernel
/// runs serially. Scoped worker threads cost tens of microseconds to spawn,
/// so small kernels are cheaper inline.
pub const SERIAL_THRESHOLD: usize = 1 << 16;

/// Hard ceiling on worker threads, whatever the configuration source.
pub const MAX_THREADS: usize = 64;

/// Default cap when the count comes from `available_parallelism` — the
/// kernels stop scaling past this for the study's tensor sizes.
pub const DEFAULT_AUTO_CAP: usize = 16;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread kernel-thread cap installed by [`with_inner_threads`]
    /// (0 = no cap installed).
    static INNER_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads the runtime will use on the current thread.
///
/// Resolution order:
///
/// 1. a scoped inner budget installed by [`with_inner_threads`] (used by
///    outer-level experiment parallelism),
/// 2. a process-wide value set by [`set_num_threads`],
/// 3. the `TDFM_THREADS` environment variable,
/// 4. the machine's available parallelism, capped at
///    [`DEFAULT_AUTO_CAP`] (16).
///
/// Every source is additionally clamped to [`MAX_THREADS`] (64).
///
/// `TDFM_THREADS` is read **once per process**, the first time resolution
/// reaches it, and the parse is cached — this function sits on every
/// kernel's hot path, and `std::env::var` costs a lock plus a UTF-8 walk.
/// Changing the variable after that first read has no effect; use
/// [`set_num_threads`] for runtime control. The `available_parallelism`
/// fallback is cached the same way (it is a syscall).
pub fn num_threads() -> usize {
    let inner = INNER_BUDGET.with(Cell::get);
    if inner > 0 {
        return inner.min(MAX_THREADS);
    }
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced.min(MAX_THREADS);
    }
    if let Some(n) = threads_from_env() {
        return n;
    }
    auto_threads()
}

/// The cached `available_parallelism` fallback; resolved at most once per
/// process. `num_threads` sits on every kernel's hot path, and
/// `available_parallelism` is a syscall (`sched_getaffinity` on Linux) —
/// calling it per kernel cost ~2.7x on one-epoch fits when `TDFM_THREADS`
/// was unset, while the env/override paths (both cached) stayed fast.
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(DEFAULT_AUTO_CAP))
            .unwrap_or(1)
    })
}

/// The cached `TDFM_THREADS` parse; resolved at most once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Reads `TDFM_THREADS` on first call and caches the result; `None` when
/// unset, unparsable or zero.
fn threads_from_env() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| parse_thread_env(std::env::var("TDFM_THREADS").ok().as_deref()))
}

/// Parses a `TDFM_THREADS` value, clamping to [`MAX_THREADS`]. `None` when
/// absent, unparsable or zero.
fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n.min(MAX_THREADS)),
        _ => None,
    }
}

/// Overrides the worker-thread count for this process (0 restores defaults).
///
/// Benchmarks use this to pin thread counts for stable measurements.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` with the kernel thread count capped at `n` on this thread.
///
/// This is the inner half of the two-level thread budget: when experiment
/// cells run on outer worker threads, each worker calls
/// `with_inner_threads(total / outer_workers, ...)` so that nested kernel
/// parallelism does not oversubscribe the machine. The cap is restored on
/// exit (including on unwind) and is inherited by nothing — threads spawned
/// inside `f` resolve their own budget.
///
/// Passing `n = 0` removes any cap for the duration of `f`.
pub fn with_inner_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INNER_BUDGET.with(|cell| cell.set(self.0));
        }
    }
    let previous = INNER_BUDGET.with(|cell| {
        let previous = cell.get();
        cell.set(n.min(MAX_THREADS));
        previous
    });
    let _restore = Restore(previous);
    f()
}

/// Splits `0..n` into at most `parts` contiguous, nearly equal ranges.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        // tdfm-lint: allow(hot-path-alloc, Vec::new of an empty vec never touches the heap)
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    // tdfm-lint: allow(hot-path-alloc, O(threads) range list built once per parallel region, not per element)
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over contiguous sub-ranges of `0..n` on worker threads.
///
/// `work_per_item` is an estimate of per-item cost used to decide whether
/// threading is worth it; pass 1 for cheap items.
pub fn parallel_for(n: usize, work_per_item: usize, f: impl Fn(Range<usize>) + Sync) {
    let threads = num_threads();
    if threads <= 1 || n.saturating_mul(work_per_item.max(1)) < SERIAL_THRESHOLD || n < 2 {
        f(0..n);
        return;
    }
    let ranges = split_ranges(n, threads);
    std::thread::scope(|scope| {
        for range in ranges {
            let f = &f;
            scope.spawn(move || f(range));
        }
    });
}

/// Splits `data` into `chunk`-sized pieces and runs `f(chunk_index, piece)`
/// on worker threads. The final piece may be shorter.
///
/// This is how kernels write disjoint slices of one output buffer (e.g. one
/// image of a batch per task) without locks.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk: usize,
    work_per_item: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk > 0, "chunk size must be positive");
    let threads = num_threads();
    let total_work = data.len().saturating_mul(work_per_item.max(1));
    if threads <= 1 || total_work < SERIAL_THRESHOLD {
        for (i, piece) in data.chunks_mut(chunk).enumerate() {
            f(i, piece);
        }
        return;
    }
    // tdfm-lint: allow(hot-path-alloc, per-region fan-out work list: O(chunks) entries built once, not per element)
    let pieces: Vec<(usize, &mut [T])> = data.chunks_mut(chunk).enumerate().collect();
    let pieces = Mutex::new(pieces);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let pieces = &pieces;
            scope.spawn(move || loop {
                let item = pieces.lock().expect("queue lock poisoned").pop();
                match item {
                    Some((idx, piece)) => f(idx, piece),
                    None => break,
                }
            });
        }
    });
}

/// Maps `0..n` in parallel and folds the per-range results with `reduce`.
///
/// Used by convolution backward passes: each worker accumulates a private
/// weight-gradient buffer, and the buffers are summed at the end.
pub fn parallel_map_reduce<T: Send>(
    n: usize,
    work_per_item: usize,
    map: impl Fn(Range<usize>) -> T + Sync,
    reduce: impl Fn(T, T) -> T,
) -> Option<T> {
    if n == 0 {
        return None;
    }
    let threads = num_threads();
    if threads <= 1 || n.saturating_mul(work_per_item.max(1)) < SERIAL_THRESHOLD || n < 2 {
        return Some(map(0..n));
    }
    let ranges = split_ranges(n, threads);
    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let map = &map;
                scope.spawn(move || map(range))
            })
            // tdfm-lint: allow(hot-path-alloc, O(threads) handle list built once per reduction)
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            // tdfm-lint: allow(hot-path-alloc, O(threads) partial results gathered once per reduction)
            .collect()
    });
    results.into_iter().reduce(reduce)
}

#[cfg(test)]
// The env-mutation tests need `unsafe` (set_var); the crate root denies
// unsafe_code so this opt-in stays visible and test-scoped.
#[allow(unsafe_code)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// `num_threads` resolution reads process-global state (the override
    /// and `TDFM_THREADS`), so tests touching it serialise on this lock.
    static GLOBAL_CONFIG: Mutex<()> = Mutex::new(());

    #[test]
    fn split_ranges_covers_everything() {
        for n in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let hits = AtomicU64::new(0);
        parallel_for(10_000, 1, |range| {
            for _ in range {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn parallel_chunks_mut_writes_disjoint() {
        let mut data = vec![0usize; 10_000];
        parallel_chunks_mut(&mut data, 100, 10, |i, piece| {
            for x in piece {
                *x = i;
            }
        });
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, j / 100);
        }
    }

    #[test]
    fn parallel_map_reduce_sums() {
        let total = parallel_map_reduce(
            100_000,
            1,
            |range| range.map(|x| x as u64).sum::<u64>(),
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(total, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn parallel_map_reduce_empty_is_none() {
        assert!(parallel_map_reduce(0, 1, |_| 1u32, |a, b| a + b).is_none());
    }

    #[test]
    fn small_work_runs_inline() {
        // Must not deadlock or thread-spawn for tiny inputs.
        let mut data = vec![0u8; 4];
        parallel_chunks_mut(&mut data, 2, 1, |i, piece| piece.fill(i as u8));
        assert_eq!(data, vec![0, 0, 1, 1]);
    }

    #[test]
    fn thread_override_roundtrip() {
        let _guard = GLOBAL_CONFIG.lock().unwrap();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn env_var_parse_accepts_counts_and_rejects_garbage() {
        // The parse itself is pure; `threads_from_env` caches its result in
        // a `OnceLock`, so the parser is what the env-var contract tests.
        assert_eq!(parse_thread_env(Some("5")), Some(5));
        assert_eq!(parse_thread_env(Some(" 12 ")), Some(12));
        // Values above the hard ceiling clamp to MAX_THREADS.
        assert_eq!(parse_thread_env(Some("4096")), Some(MAX_THREADS));
        // Garbage, zero and absence fall through to the auto default.
        assert_eq!(parse_thread_env(Some("zero")), None);
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(None), None);
    }

    #[test]
    fn env_var_is_read_once_per_process() {
        let _guard = GLOBAL_CONFIG.lock().unwrap();
        set_num_threads(0);
        let resolved = num_threads(); // forces the one-time env read
        let original = std::env::var("TDFM_THREADS").ok();
        // SAFETY: serialised by GLOBAL_CONFIG; no other thread reads the
        // environment concurrently in this test binary.
        unsafe {
            std::env::set_var("TDFM_THREADS", "61");
        }
        assert_eq!(
            num_threads(),
            resolved,
            "env changes after startup are inert"
        );
        // SAFETY: serialised by GLOBAL_CONFIG; no other thread reads the
        // environment concurrently in this test binary.
        unsafe {
            std::env::set_var("TDFM_THREADS", "62");
        }
        assert_eq!(num_threads(), resolved);
        // SAFETY: same serialisation as above; this restores the variable
        // to its pre-test value before the lock is released.
        unsafe {
            match &original {
                Some(v) => std::env::set_var("TDFM_THREADS", v),
                None => std::env::remove_var("TDFM_THREADS"),
            }
        }
        // `set_num_threads` still overrides the cached value.
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
    }

    #[test]
    fn inner_budget_is_scoped_and_restored() {
        let _guard = GLOBAL_CONFIG.lock().unwrap();
        set_num_threads(8);
        let inside = with_inner_threads(2, num_threads);
        assert_eq!(inside, 2);
        assert_eq!(num_threads(), 8, "budget must be restored on exit");
        // Nested scopes restore the outer scope's budget, not the default.
        with_inner_threads(4, || {
            assert_eq!(num_threads(), 4);
            with_inner_threads(2, || assert_eq!(num_threads(), 2));
            assert_eq!(num_threads(), 4);
        });
        // A zero budget removes the cap for the duration of the scope.
        with_inner_threads(2, || {
            with_inner_threads(0, || assert_eq!(num_threads(), 8));
        });
        set_num_threads(0);
    }

    #[test]
    fn inner_budget_is_per_thread() {
        with_inner_threads(2, || {
            let other = std::thread::scope(|s| s.spawn(num_threads).join().unwrap());
            assert_ne!(other, 0);
            // The spawned thread resolves its own budget; ours stays 2.
            assert_eq!(num_threads(), 2);
            let _ = other;
        });
    }
}
