//! Dense row-major `f32` tensors.

use crate::rng::Rng;
use crate::Shape;
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used across the TDFM study: model
/// parameters, activations, gradients and image batches are all `Tensor`s.
/// Images use the NCHW layout (batch, channels, height, width).
///
/// # Examples
///
/// ```
/// use tdfm_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Self { shape, data }
    }

    /// Creates a 2-D identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Samples i.i.d. `N(0, std^2)` entries using the provided RNG.
    pub fn randn(dims: &[usize], std: f32, rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.normal() * std).collect();
        Self { shape, data }
    }

    /// Samples i.i.d. `U(lo, hi)` entries using the provided RNG.
    pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.uniform(lo, hi)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or of the wrong rank.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or of the wrong rank.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.shape.flat_index(idx);
        self.data[flat] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {shape}",
            self.numel()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "cannot reshape in place");
        self.shape = shape;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * rhs`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in axpy");
        crate::simd::axpy(alpha, &rhs.data, &mut self.data);
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        crate::simd::scale(&mut self.data, s);
    }

    /// Sets every element to zero (gradient reset between steps).
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Largest absolute element (useful for gradient diagnostics).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// `true` when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Extracts rows `[start, end)` of the leading dimension as a new tensor.
    ///
    /// For an NCHW batch this selects a contiguous sub-batch.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end` exceeds the leading dimension.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start < end && end <= self.shape.dim(0),
            "row slice out of range"
        );
        let row = self.numel() / self.shape.dim(0);
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(self.data[start * row..end * row].to_vec(), &dims)
    }

    /// Gathers the given rows of the leading dimension into a new tensor.
    ///
    /// Used to assemble shuffled mini-batches.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert!(
            !indices.is_empty(),
            "gather_rows requires at least one index"
        );
        let n = self.shape.dim(0);
        let row = self.numel() / n;
        let mut data = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            assert!(i < n, "row index {i} out of range (n = {n})");
            data.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(data, &dims)
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2d requires a matrix");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor {{ shape: {}, data: {:?}{} }}",
            self.shape,
            preview,
            if self.numel() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros(&[3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[3], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = Rng::seed_from(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(7);
        let t = Tensor::uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn at_and_set_agree() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::full(&[3], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn slice_and_gather_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape().dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let g = t.gather_rows(&[3, 0]);
        assert_eq!(g.data(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn transpose2d_involution() {
        let mut rng = Rng::seed_from(3);
        let t = Tensor::randn(&[3, 5], 1.0, &mut rng);
        assert_eq!(t.transpose2d().transpose2d(), t);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn map_then_inverse_is_identity() {
        let mut rng = Rng::seed_from(0x7E);
        for _ in 0..32 {
            let n = 1 + rng.below(31);
            let v: Vec<f32> = (0..n).map(|_| rng.uniform(-10.0, 10.0)).collect();
            let t = Tensor::from_vec(v, &[n]);
            let back = t.map(|x| x + 3.0).map(|x| x - 3.0);
            for (a, b) in t.data().iter().zip(back.data()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gather_all_rows_is_identity() {
        for rows in 1usize..6 {
            for cols in 1usize..6 {
                let t =
                    Tensor::from_vec((0..rows * cols).map(|x| x as f32).collect(), &[rows, cols]);
                let idx: Vec<usize> = (0..rows).collect();
                assert_eq!(t.gather_rows(&idx), t);
            }
        }
    }
}
