//! A 32-byte-aligned, growable `f32` buffer for the [`Scratch`] arena.
//!
//! AVX2 works on 32-byte vectors; when a buffer's base address is 32-byte
//! aligned, none of the 8-lane loads in the packed GEMM panels or im2col
//! columns straddle a cache line. `Vec<f32>` only guarantees 4-byte
//! alignment, so the arena's raw checkouts use this type instead. The
//! kernels still use unaligned load instructions — alignment here is a
//! performance property, never a safety requirement.
//!
//! [`Scratch`]: crate::scratch::Scratch
#![allow(unsafe_code)]

use std::alloc::{alloc_zeroed, dealloc, Layout};

/// Alignment (bytes) of every non-empty [`AlignedVec`] allocation.
pub const SIMD_ALIGN: usize = 32;

/// A `Vec<f32>`-alike whose backing allocation is 32-byte aligned.
///
/// Supports exactly the operations the scratch pool needs: resize (new
/// elements zeroed, like `Vec::resize(_, 0.0)`), slice access, capacity
/// queries. Growth preserves the live prefix.
#[derive(Debug)]
pub struct AlignedVec {
    ptr: *mut f32,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec uniquely owns its allocation (no aliasing, no
// interior mutability); moving it between threads moves plain f32 data.
unsafe impl Send for AlignedVec {}
// SAFETY: shared references only permit reads of the owned buffer.
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self {
            ptr: std::ptr::null_mut(),
            len: 0,
            cap: 0,
        }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut v = Self::new();
        v.resize_zeroed(len);
        v
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * std::mem::size_of::<f32>(), SIMD_ALIGN)
            .expect("aligned buffer layout overflow")
    }

    /// Elements currently live.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Sets the length to `len`, zeroing any newly exposed elements —
    /// exactly `Vec::resize(len, 0.0)` semantics (a shrink keeps the
    /// truncated bytes; regrowing re-zeroes them before exposure).
    pub fn resize_zeroed(&mut self, len: usize) {
        if len > self.cap {
            self.grow(len);
        }
        if len > self.len {
            let old = self.len;
            self.len = len;
            self.as_mut_slice()[old..].fill(0.0);
        } else {
            self.len = len;
        }
    }

    fn grow(&mut self, want: usize) {
        debug_assert!(want > self.cap);
        // tdfm-lint: allow(hot-path-alloc, pool miss: the one allocation the scratch arena exists to amortise)
        // SAFETY: layout has non-zero size (want > cap >= 0 so want >= 1).
        let new_ptr = unsafe { alloc_zeroed(Self::layout(want)) } as *mut f32;
        assert!(!new_ptr.is_null(), "aligned allocation failed");
        if self.len > 0 {
            // SAFETY: both regions are valid for `len` elements and
            // distinct allocations (nonoverlapping).
            unsafe { std::ptr::copy_nonoverlapping(self.ptr, new_ptr, self.len) };
        }
        self.release();
        self.ptr = new_ptr;
        self.cap = want;
    }

    fn release(&mut self) {
        if self.cap > 0 {
            // SAFETY: ptr was allocated with exactly this layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.cap)) };
            self.ptr = std::ptr::null_mut();
            self.cap = 0;
        }
    }

    /// Drops all live elements (length zero; capacity retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The live elements.
    pub fn as_slice(&self) -> &[f32] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr is valid for len initialised f32s (cap >= len > 0).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The live elements, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: ptr is valid for len initialised f32s and uniquely owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Default for AlignedVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        self.release();
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_32_byte_aligned() {
        for len in [1usize, 7, 8, 63, 64, 1000] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % SIMD_ALIGN, 0, "len {len}");
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn growth_preserves_prefix_and_zeroes_the_rest() {
        let mut v = AlignedVec::zeroed(4);
        v.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        v.resize_zeroed(100);
        assert_eq!(&v[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert!(v[4..].iter().all(|&x| x == 0.0));
        assert_eq!(v.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
    }

    #[test]
    fn clear_then_resize_reexposes_zeroes() {
        let mut v = AlignedVec::zeroed(8);
        v.as_mut_slice().fill(9.0);
        v.clear();
        assert!(v.is_empty());
        v.resize_zeroed(8);
        assert!(v.iter().all(|&x| x == 0.0), "stale values must not leak");
    }

    #[test]
    fn shrink_then_regrow_within_capacity() {
        let mut v = AlignedVec::zeroed(16);
        v.as_mut_slice().fill(5.0);
        v.resize_zeroed(4);
        assert_eq!(v.len(), 4);
        v.resize_zeroed(16);
        assert!(v.iter().all(|&x| x == 0.0 || x == 5.0));
        assert!(v[4..].iter().all(|&x| x == 0.0), "regrown tail re-zeroed");
    }
}
