#![deny(unsafe_code)]
//! # tdfm-tensor
//!
//! Pure-Rust CPU tensor substrate for the TDFM reproduction ("The Fault in
//! Our Data Stars", DSN 2022). The paper's experiments ran on TensorFlow;
//! this crate replaces the numerical kernels TensorFlow provided:
//!
//! * [`Shape`] and [`Tensor`] — dense row-major `f32` tensors with the NCHW
//!   image convention used throughout the study.
//! * [`parallel`] — a scoped-thread data-parallel runtime used by the
//!   convolution/matmul kernels and by ensemble training.
//! * [`ops`] — panel-packed, register-tiled matrix multiplication, im2col
//!   convolution (forward/backward, with strides, padding and groups for
//!   depthwise convolutions), max/average pooling, reductions and softmax.
//! * [`simd`] — runtime-dispatched AVX2/SSE2/scalar kernels behind every
//!   hot loop, byte-identical across levels (`TDFM_SIMD` overrides).
//! * [`Scratch`] — a reusable buffer arena threaded through the kernels so
//!   steady-state training allocates nothing per batch; its raw `f32`
//!   checkouts are 32-byte aligned for the vector kernels.
//! * [`rng`] — deterministic random-number helpers so every experiment in
//!   the study is reproducible from a single seed.
//! * [`bitops`] — IEEE-754 bit manipulation ([`bitops::bitflip_f32`]) used
//!   by the SEU-style model-fault injection subsystem.
//!
//! # Examples
//!
//! ```
//! use tdfm_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

mod align;
pub mod bitops;
pub mod ops;
pub mod parallel;
pub mod rng;
mod scratch;
mod shape;
pub mod simd;
mod tensor;

pub use align::{AlignedVec, SIMD_ALIGN};
pub use scratch::{Scratch, ScratchBuf, ScratchBufU32, ScratchHandle, ScratchStats};
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;

/// Absolute tolerance used by the crate's own tests when comparing floats.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts that two float slices are element-wise close.
///
/// # Panics
///
/// Panics if lengths differ or any element pair differs by more than `tol`.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "element {i} differs: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts_equal() {
        assert_close(&[1.0, 2.0], &[1.0, 2.0], 1e-9);
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn assert_close_rejects_distant() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-3);
    }
}
