//! Bit-level manipulation of IEEE-754 `f32` values.
//!
//! The SEU (single-event upset) fault model flips individual bits of a
//! stored value; this module provides the primitive the model-fault
//! injection subsystem (`tdfm-inject::model`) builds on. Everything here
//! goes through `to_bits`/`from_bits` so non-finite and denormal results
//! are produced and preserved exactly — no arithmetic touches the value.

/// Number of bits in an `f32` (valid bit positions are `0..F32_BITS`).
pub const F32_BITS: u32 = 32;

/// Bit position of the IEEE-754 single-precision sign bit.
pub const F32_SIGN_BIT: u32 = 31;

/// Bit positions of the exponent field, inclusive (`23..=30`).
pub const F32_EXPONENT_BITS: std::ops::RangeInclusive<u32> = 23..=30;

/// Bit positions of the mantissa (fraction) field, inclusive (`0..=22`).
pub const F32_MANTISSA_BITS: std::ops::RangeInclusive<u32> = 0..=22;

/// Flips bit `bit` of `v`'s IEEE-754 representation.
///
/// Bit 0 is the least-significant mantissa bit, bits 23–30 the exponent,
/// bit 31 the sign. The operation is an XOR on the bit pattern, so it is
/// involutive: flipping the same bit twice restores the original value
/// **bit-exactly**, including NaN payloads — the property the fault-aware
/// trainer relies on to undo injected faults before the optimizer step.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::bitops::bitflip_f32;
///
/// // Sign flip.
/// assert_eq!(bitflip_f32(1.5, 31), -1.5);
/// // Top exponent bit of 1.0 gives a huge value.
/// assert!(bitflip_f32(1.0, 30) > 1e38);
/// // Involution restores the exact bits.
/// let v = f32::from_bits(0x7FC0_1234); // NaN with payload
/// assert_eq!(bitflip_f32(bitflip_f32(v, 3), 3).to_bits(), v.to_bits());
/// ```
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[inline]
pub fn bitflip_f32(v: f32, bit: u32) -> f32 {
    assert!(bit < F32_BITS, "f32 has bits 0..32, got {bit}");
    f32::from_bits(v.to_bits() ^ (1u32 << bit))
}

/// Classification of a bit position within the `f32` layout, used by the
/// injection reports to aggregate outcomes per field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitField {
    /// Bits 0–22.
    Mantissa,
    /// Bits 23–30.
    Exponent,
    /// Bit 31.
    Sign,
}

impl BitField {
    /// Classifies bit position `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn of(bit: u32) -> Self {
        assert!(bit < F32_BITS, "f32 has bits 0..32, got {bit}");
        if bit == F32_SIGN_BIT {
            BitField::Sign
        } else if bit >= *F32_EXPONENT_BITS.start() {
            BitField::Exponent
        } else {
            BitField::Mantissa
        }
    }

    /// Short lower-case label (`"mantissa"` / `"exponent"` / `"sign"`).
    pub fn label(self) -> &'static str {
        match self {
            BitField::Mantissa => "mantissa",
            BitField::Exponent => "exponent",
            BitField::Sign => "sign",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_are_involutive_across_all_bits() {
        let values = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0, // denormal
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload bits
        ];
        for v in values {
            for bit in 0..F32_BITS {
                let twice = bitflip_f32(bitflip_f32(v, bit), bit);
                assert_eq!(twice.to_bits(), v.to_bits(), "v={v}, bit={bit}");
            }
        }
    }

    #[test]
    fn sign_bit_negates() {
        assert_eq!(bitflip_f32(2.5, F32_SIGN_BIT), -2.5);
        assert_eq!(bitflip_f32(-0.0, F32_SIGN_BIT).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn top_exponent_flip_of_half_is_huge() {
        // 0.5 has biased exponent 126; flipping bit 30 (+128) gives 254 →
        // 2^127 ≈ 1.7e38. This is the classic SEU catastrophe for weights.
        let v = bitflip_f32(0.5, 30);
        assert!(v.is_finite() && v > 1e38, "got {v}");
    }

    #[test]
    fn top_exponent_flip_of_one_is_infinity() {
        // 1.0 has biased exponent 127 and zero mantissa; flipping bit 30
        // gives exponent 255 → +Inf exactly.
        let v = bitflip_f32(1.0, 30);
        assert!(v.is_infinite() && v > 0.0, "got {v}");
    }

    #[test]
    fn low_mantissa_flip_is_tiny_perturbation() {
        let v = bitflip_f32(1.0, 0);
        assert!(v != 1.0 && (v - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "f32 has bits 0..32")]
    fn rejects_out_of_range_bit() {
        let _ = bitflip_f32(1.0, 32);
    }

    #[test]
    fn bit_field_classification() {
        assert_eq!(BitField::of(0), BitField::Mantissa);
        assert_eq!(BitField::of(22), BitField::Mantissa);
        assert_eq!(BitField::of(23), BitField::Exponent);
        assert_eq!(BitField::of(30), BitField::Exponent);
        assert_eq!(BitField::of(31), BitField::Sign);
        assert_eq!(BitField::of(30).label(), "exponent");
    }
}
