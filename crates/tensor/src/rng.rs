//! Deterministic random-number utilities.
//!
//! Every stochastic component of the study (weight initialisation, dataset
//! synthesis, fault injection, batch shuffling, dropout) draws from an
//! [`Rng`] seeded from the experiment seed, so entire experiments replay
//! bit-for-bit. The paper ran 20 repetitions per configuration to control
//! variance; deterministic seeding lets us additionally replay any single
//! repetition.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm `rand`'s `SmallRng` uses on 64-bit targets — implemented
//! in-repo so the workspace builds without network access.

/// A small, fast, seedable RNG with the handful of distributions the study
/// needs.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::rng::Rng;
///
/// let mut a = Rng::seed_from(1);
/// let mut b = Rng::seed_from(1);
/// assert_eq!(a.below(100), b.below(100));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

/// SplitMix64 increment.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 output step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(PHI);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the seed into the 256-bit xoshiro state via SplitMix64,
        // so nearby seeds still give uncorrelated streams.
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Derives an independent child RNG. `salt` distinguishes siblings.
    ///
    /// Used to hand each component (dataset, injector, model init, ...) its
    /// own stream so that adding draws to one component does not perturb
    /// another — a property the experiment runner's caching relies on.
    pub fn derive(&self, salt: u64) -> Rng {
        // SplitMix64-style mixing of the parent's next word with the salt.
        // The parent is cloned so deriving never advances its stream.
        let mut z = salt.wrapping_mul(PHI).wrapping_add(self.clone().next_u64());
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::seed_from(z ^ (z >> 31))
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform range is empty: {lo}..{hi}");
        let v = lo + self.unit() * (hi - lo);
        // Guard the half-open contract against rounding at the top end.
        if v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        // 24 high bits of a 32-bit word → all representable multiples of
        // 2^-24, the standard float conversion.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Standard normal sample (Box–Muller; avoids an extra dependency).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.unit();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2: f32 = self.unit();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire's widening-multiply method: reject the first `2^64 % n`
        // low words so every outcome is exactly equally likely.
        let n = n as u64;
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(n);
            if m as u64 >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Raw 64-bit word (for seeding sub-systems).
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Raw 32-bit word (low half of the next 64-bit word).
    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_streams_differ_by_salt() {
        let root = Rng::seed_from(1);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 2,
            "derived streams should be effectively independent"
        );
    }

    #[test]
    fn derive_does_not_advance_parent() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        let _ = a.derive(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(5);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_stays_in_half_open_range() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let v = rng.unit();
            assert!((0.0..1.0).contains(&v), "unit() out of range: {v}");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(21);
        for _ in 0..10_000 {
            let v = rng.uniform(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&v), "uniform() out of range: {v}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(2);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        // Deterministic sweep standing in for the previous property test.
        for seed in 0..64u64 {
            let n = 1 + (seed as usize * 37) % 199;
            let k = n / 2;
            let mut rng = Rng::seed_from(seed);
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct (n={n})");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn below_in_range() {
        for seed in 0..32u64 {
            let n = 1 + (seed as usize * 97) % 999;
            let mut rng = Rng::seed_from(seed);
            for _ in 0..64 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = Rng::seed_from(17);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "below(5) should hit every value");
    }
}
