//! Deterministic random-number utilities.
//!
//! Every stochastic component of the study (weight initialisation, dataset
//! synthesis, fault injection, batch shuffling, dropout) draws from an
//! [`Rng`] seeded from the experiment seed, so entire experiments replay
//! bit-for-bit. The paper ran 20 repetitions per configuration to control
//! variance; deterministic seeding lets us additionally replay any single
//! repetition.

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

/// A small, fast, seedable RNG with the handful of distributions the study
/// needs.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::rng::Rng;
///
/// let mut a = Rng::seed_from(1);
/// let mut b = Rng::seed_from(1);
/// assert_eq!(a.below(100), b.below(100));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: SmallRng,
}

impl Rng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child RNG. `salt` distinguishes siblings.
    ///
    /// Used to hand each component (dataset, injector, model init, ...) its
    /// own stream so that adding draws to one component does not perturb
    /// another — a property the experiment runner's caching relies on.
    pub fn derive(&self, salt: u64) -> Rng {
        // SplitMix64-style mixing of the parent's next word with the salt.
        let mut z = salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.clone().inner.next_u64());
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::seed_from(z ^ (z >> 31))
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Standard normal sample (Box–Muller; avoids an extra dependency).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.inner.gen::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2: f32 = self.inner.gen::<f32>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Raw 64-bit word (for seeding sub-systems).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_streams_differ_by_salt() {
        let root = Rng::seed_from(1);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "derived streams should be effectively independent");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(5);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(2);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    proptest! {
        #[test]
        fn sample_indices_distinct_and_in_range(n in 1usize..200, seed in 0u64..1000) {
            let mut rng = Rng::seed_from(seed);
            let k = n / 2;
            let s = rng.sample_indices(n, k);
            prop_assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            prop_assert_eq!(set.len(), k);
            prop_assert!(s.iter().all(|&i| i < n));
        }

        #[test]
        fn below_in_range(n in 1usize..1000, seed in 0u64..100) {
            let mut rng = Rng::seed_from(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(n) < n);
            }
        }
    }
}
