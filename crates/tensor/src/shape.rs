//! Tensor shapes: dimension lists with row-major stride arithmetic.

use std::fmt;

/// Maximum tensor rank the crate supports (the NCHW image convention).
///
/// Keeping the bound explicit lets [`Shape`] store its extents inline:
/// constructing a shape — and therefore a tensor header — never touches
/// the heap, which is what makes the scratch-arena training path truly
/// allocation-free per batch.
pub const MAX_RANK: usize = 4;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension extents.
///
/// Shapes are row-major ("C order"): the last dimension is contiguous in
/// memory. Images follow the NCHW convention (batch, channels, height,
/// width) used by the TDFM study's convolution kernels. Extents are stored
/// inline (rank at most [`MAX_RANK`]), so `Shape` is `Copy` and
/// construction is allocation-free.
///
/// # Examples
///
/// ```
/// use tdfm_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    // Unused trailing slots stay 0 so derived equality/hashing only see
    // the active prefix plus a canonical tail.
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (zero-sized tensors are never valid
    /// inside the study's pipelines, so the error is caught at
    /// construction) or if the rank exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds the supported maximum of {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions (the tensor's rank).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.rank(),
            "dimension index {i} out of range for rank {}",
            self.rank()
        );
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let dims = self.dims();
        let mut strides = vec![1; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        let strides = self.strides();
        for (i, (&x, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                x < self.dims[i],
                "index {x} out of range for dim {i} ({})",
                self.dims[i]
            );
            flat += x * s;
        }
        flat
    }

    /// `true` when both shapes can be matrix-multiplied as 2-D operands.
    pub fn matmul_compatible(&self, rhs: &Shape) -> bool {
        self.rank() == 2 && rhs.rank() == 2 && self.dims[1] == rhs.dims[0]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert!(seen.insert(s.flat_index(&[i, j, k])));
                }
            }
        }
        assert_eq!(seen.len(), s.numel());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn excessive_rank_rejected() {
        let _ = Shape::new(&[2, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range for rank")]
    fn dim_past_rank_rejected() {
        // The inline array physically holds MAX_RANK slots; indexing past
        // the logical rank must still fail like the Vec-backed shape did.
        let _ = Shape::new(&[2, 3]).dim(2);
    }

    #[test]
    fn shapes_of_equal_prefix_but_different_rank_differ() {
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let s = Shape::new(&[2, 2]);
        let _ = s.flat_index(&[2, 0]);
    }

    #[test]
    fn matmul_compat() {
        assert!(Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[3, 5])));
        assert!(!Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[2, 5])));
        assert!(!Shape::new(&[2, 3, 1]).matmul_compatible(&Shape::new(&[3, 5])));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).to_string(), "[2x3x4]");
    }

    /// Deterministic sweep of small dim vectors, standing in for the
    /// previous property tests.
    fn dim_cases() -> Vec<Vec<usize>> {
        let mut rng = crate::rng::Rng::seed_from(0xD1);
        (0..64)
            .map(|_| {
                let rank = 1 + rng.below(4);
                (0..rank).map(|_| 1 + rng.below(5)).collect()
            })
            .collect()
    }

    #[test]
    fn numel_is_product() {
        for dims in dim_cases() {
            let s = Shape::new(&dims);
            assert_eq!(s.numel(), dims.iter().product::<usize>());
        }
    }

    #[test]
    fn last_stride_is_one() {
        for dims in dim_cases() {
            let s = Shape::new(&dims);
            assert_eq!(*s.strides().last().unwrap(), 1);
        }
    }

    #[test]
    fn flat_index_bounded() {
        for dims in dim_cases() {
            let s = Shape::new(&dims);
            let last: Vec<usize> = dims.iter().map(|d| d - 1).collect();
            assert_eq!(s.flat_index(&last), s.numel() - 1);
        }
    }
}
