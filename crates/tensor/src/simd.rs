//! Runtime-dispatched SIMD kernels (AVX2 / SSE2 / scalar).
//!
//! Every vector kernel in the workspace funnels through this module: one
//! dispatch point per op, selected once per process from CPU detection
//! (`is_x86_feature_detected!`) and the `TDFM_SIMD` environment variable.
//! Callers never change — `Tensor::axpy`, the GEMM microkernel and the nn
//! layers call the same functions whether the machine has AVX2 or not.
//!
//! # Bit-identity policy (why there is no FMA here)
//!
//! The repo's goldens and drift gates rely on results being byte-identical
//! across thread counts *and* across SIMD levels. A fused multiply-add
//! rounds once where `mul` + `add` round twice, so an FMA kernel would
//! produce different bytes than the scalar loop — and different bytes on
//! machines without FMA. Instead, every vector kernel performs the exact
//! same sequence of f32 operations as its scalar fallback, just eight (or
//! four) independent lanes at a time: lane `j` of the vector accumulator
//! sees precisely the roundings that scalar element `j` would. Reductions
//! whose scalar form is a *serial* fold (dot products, softmax sums) are
//! left scalar, because distributing them over lanes reassociates the sum.
//! See DESIGN.md §2.1a.
//!
//! # NaN discipline
//!
//! No lane kernel may launder NaN: comparisons use ordered predicates that
//! return false on NaN (matching scalar `>`), and the ReLU forward keeps
//! the exact "return x unless 0.0 > x" form whose vector equivalent
//! (`max_ps` with the zero operand first) propagates NaN inputs unchanged.
//!
//! # Overriding dispatch
//!
//! `TDFM_SIMD` (read once per process): `auto` (default) picks the best
//! detected level; `avx2` / `sse2` request a level (clamped to what the
//! CPU supports); `off` / `scalar` force the scalar fallbacks. Unknown
//! values conservatively mean `off`. Tests and benches can override
//! in-process with [`force_simd`].
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel family [`simd_level`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Plain scalar loops — the canonical semantics.
    Scalar,
    /// 4-lane `__m128` kernels (baseline on every x86-64).
    Sse2,
    /// 8-lane `__m256` kernels (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, used as bench/manifest provenance.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// In-process override set by [`force_simd`]; 0 = none, else level + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let best = best_hardware_level();
        // tdfm-lint: allow(env-read, documented read-once config site: TDFM_SIMD, see README "Parallelism")
        match std::env::var("TDFM_SIMD").as_deref() {
            Ok("auto") | Err(_) => best,
            Ok("avx2") => {
                if best == SimdLevel::Avx2 {
                    SimdLevel::Avx2
                } else {
                    best
                }
            }
            Ok("sse2") => {
                if best == SimdLevel::Scalar {
                    SimdLevel::Scalar
                } else {
                    SimdLevel::Sse2
                }
            }
            // "off", "scalar", and any typo: conservatively scalar.
            Ok(_) => SimdLevel::Scalar,
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn best_hardware_level() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        // SSE2 is part of the x86-64 baseline: always present.
        SimdLevel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_hardware_level() -> SimdLevel {
    SimdLevel::Scalar
}

/// The level every dispatch point uses for this call.
///
/// Resolution order: [`force_simd`] override, then `TDFM_SIMD` + CPU
/// detection (cached for the life of the process).
pub fn simd_level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Sse2,
        3 => SimdLevel::Avx2,
        _ => detected_level(),
    }
}

/// Provenance string for manifests and bench records.
pub fn simd_name() -> &'static str {
    simd_level().name()
}

/// Overrides the dispatch level in-process (tests, bench scaling cells).
///
/// `Some(level)` forces that level — clamped to the hardware's best, so
/// forcing `Avx2` on a machine without it silently degrades (the
/// equivalence tests compare levels *up to* the detected best). `None`
/// restores `TDFM_SIMD` + detection. Affects all threads.
pub fn force_simd(level: Option<SimdLevel>) {
    let code = match level {
        None => 0,
        Some(want) => {
            let best = best_hardware_level();
            let eff = match (want, best) {
                (SimdLevel::Avx2, SimdLevel::Avx2) => SimdLevel::Avx2,
                (SimdLevel::Avx2, b) | (SimdLevel::Sse2, b) => {
                    if b == SimdLevel::Scalar {
                        SimdLevel::Scalar
                    } else {
                        SimdLevel::Sse2
                    }
                }
                (SimdLevel::Scalar, _) => SimdLevel::Scalar,
            };
            eff as u8 + 1
        }
    };
    FORCED.store(code, Ordering::Relaxed);
}

/// Levels worth testing on this machine, best first.
pub fn available_levels() -> Vec<SimdLevel> {
    match best_hardware_level() {
        SimdLevel::Avx2 => vec![SimdLevel::Avx2, SimdLevel::Sse2, SimdLevel::Scalar],
        SimdLevel::Sse2 => vec![SimdLevel::Sse2, SimdLevel::Scalar],
        SimdLevel::Scalar => vec![SimdLevel::Scalar],
    }
}

// ---------------------------------------------------------------------------
// Elementwise kernels. Each op has one scalar body (the canonical
// semantics) and per-level vector bodies that replicate it lane-wise:
// identical operation order per element, so results are byte-identical
// across levels.
// ---------------------------------------------------------------------------

/// `y[i] += alpha * x[i]` (separate mul and add — two roundings, same as
/// the scalar loop; never fused).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected at
        // runtime on this CPU.
        SimdLevel::Avx2 => unsafe { x86::axpy_avx2(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::axpy_sse2(alpha, x, y) },
        _ => axpy_scalar(alpha, x, y),
    }
}

fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// `x[i] *= alpha`.
pub fn scale(x: &mut [f32], alpha: f32) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::scale_avx2(x, alpha) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::scale_sse2(x, alpha) },
        _ => scale_scalar(x, alpha),
    }
}

fn scale_scalar(x: &mut [f32], alpha: f32) {
    for v in x {
        *v *= alpha;
    }
}

/// `x[i] += alpha` (used as `x - s` via `alpha = -s`: IEEE negation is
/// exact, so `x + (-s)` rounds identically to `x - s`).
pub fn add_scalar(x: &mut [f32], alpha: f32) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::add_scalar_avx2(x, alpha) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::add_scalar_sse2(x, alpha) },
        _ => add_scalar_scalar(x, alpha),
    }
}

fn add_scalar_scalar(x: &mut [f32], alpha: f32) {
    for v in x {
        *v += alpha;
    }
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::add_assign_avx2(y, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::add_assign_sse2(y, x) },
        _ => add_assign_scalar(y, x),
    }
}

fn add_assign_scalar(y: &mut [f32], x: &[f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += v;
    }
}

/// SGD momentum update: `v[i] = m*v[i] + g[i] + wd*w[i]`, evaluated in
/// exactly that association — `(m*v + g) + wd*w` — on every path.
pub fn momentum_update(v: &mut [f32], g: &[f32], w: &[f32], m: f32, wd: f32) {
    debug_assert_eq!(v.len(), g.len());
    debug_assert_eq!(v.len(), w.len());
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::momentum_update_avx2(v, g, w, m, wd) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::momentum_update_sse2(v, g, w, m, wd) },
        _ => momentum_update_scalar(v, g, w, m, wd),
    }
}

fn momentum_update_scalar(v: &mut [f32], g: &[f32], w: &[f32], m: f32, wd: f32) {
    for ((vi, &gi), &wi) in v.iter_mut().zip(g).zip(w) {
        *vi = m * *vi + gi + wd * wi;
    }
}

/// ReLU forward: `out[i] = if 0.0 > x[i] { 0.0 } else { x[i] }` and
/// `mask[i] = if x[i] > 0.0 { !0 } else { 0 }`.
///
/// NaN propagates (`0.0 > NaN` is false, so NaN inputs pass through) and
/// `-0.0` is preserved — exactly the semantics of `max_ps(zero, x)`,
/// which returns its *second* operand on NaN or equal zeros.
pub fn relu_forward(x: &[f32], out: &mut [f32], mask: &mut [u32]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), mask.len());
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::relu_forward_avx2(x, out, mask) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::relu_forward_sse2(x, out, mask) },
        _ => relu_forward_scalar(x, out, mask),
    }
}

fn relu_forward_scalar(x: &[f32], out: &mut [f32], mask: &mut [u32]) {
    for ((o, m), &v) in out.iter_mut().zip(mask.iter_mut()).zip(x) {
        *o = if 0.0 > v { 0.0 } else { v };
        *m = if v > 0.0 { !0 } else { 0 };
    }
}

/// ReLU backward: `out[i] = g[i]` where the forward mask is set, else
/// `+0.0` — implemented as a bitwise AND with the all-ones/all-zeros mask.
pub fn relu_backward(g: &[f32], mask: &[u32], out: &mut [f32]) {
    debug_assert_eq!(g.len(), out.len());
    debug_assert_eq!(g.len(), mask.len());
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returns Avx2 only when AVX2 was detected.
        SimdLevel::Avx2 => unsafe { x86::relu_backward_avx2(g, mask, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally present on x86-64.
        SimdLevel::Sse2 => unsafe { x86::relu_backward_sse2(g, mask, out) },
        _ => relu_backward_scalar(g, mask, out),
    }
}

fn relu_backward_scalar(g: &[f32], mask: &[u32], out: &mut [f32]) {
    for ((o, &m), &gv) in out.iter_mut().zip(mask).zip(g) {
        *o = f32::from_bits(gv.to_bits() & m);
    }
}

/// The x86-64 vector bodies. Every function replicates its scalar
/// counterpart lane-wise with unaligned loads/stores (the Scratch arena
/// hands out 32-byte-aligned buffers, which makes these loads fast, but
/// correctness never depends on alignment). Tails shorter than a vector
/// run the scalar loop.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// One unaligned 8-lane load from `s[i..i+8]`.
    ///
    /// SAFETY: callers must uphold `i + 8 <= s.len()`.
    #[inline(always)]
    unsafe fn ld256(s: &[f32], i: usize) -> __m256 {
        debug_assert!(i + 8 <= s.len());
        // SAFETY: caller guarantees i+8 <= s.len(), so the 32 bytes at
        // s[i] are inside the slice; loadu has no alignment requirement.
        unsafe { _mm256_loadu_ps(s.as_ptr().add(i)) }
    }

    /// One unaligned 8-lane store to `s[i..i+8]`.
    ///
    /// SAFETY: callers must uphold `i + 8 <= s.len()`.
    #[inline(always)]
    unsafe fn st256(s: &mut [f32], i: usize, v: __m256) {
        debug_assert!(i + 8 <= s.len());
        // SAFETY: caller guarantees i+8 <= s.len(); storeu is unaligned.
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(i), v) }
    }

    /// One unaligned 4-lane load from `s[i..i+4]`.
    ///
    /// SAFETY: callers must uphold `i + 4 <= s.len()`.
    #[inline(always)]
    unsafe fn ld128(s: &[f32], i: usize) -> __m128 {
        debug_assert!(i + 4 <= s.len());
        // SAFETY: caller guarantees i+4 <= s.len(); loadu is unaligned.
        unsafe { _mm_loadu_ps(s.as_ptr().add(i)) }
    }

    /// One unaligned 4-lane store to `s[i..i+4]`.
    ///
    /// SAFETY: callers must uphold `i + 4 <= s.len()`.
    #[inline(always)]
    unsafe fn st128(s: &mut [f32], i: usize, v: __m128) {
        debug_assert!(i + 4 <= s.len());
        // SAFETY: caller guarantees i+4 <= s.len(); storeu is unaligned.
        unsafe { _mm_storeu_ps(s.as_mut_ptr().add(i), v) }
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = x.len() = y.len().
            unsafe {
                let prod = _mm256_mul_ps(a, ld256(x, i));
                st256(y, i, _mm256_add_ps(ld256(y, i), prod));
            }
            i += 8;
        }
        super::axpy_scalar(alpha, &x[i..], &mut y[i..]);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn axpy_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let a = _mm_set1_ps(alpha);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = x.len() = y.len().
            unsafe {
                let prod = _mm_mul_ps(a, ld128(x, i));
                st128(y, i, _mm_add_ps(ld128(y, i), prod));
            }
            i += 4;
        }
        super::axpy_scalar(alpha, &x[i..], &mut y[i..]);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = x.len().
            unsafe { st256(x, i, _mm256_mul_ps(ld256(x, i), a)) };
            i += 8;
        }
        super::scale_scalar(&mut x[i..], alpha);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scale_sse2(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let a = _mm_set1_ps(alpha);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = x.len().
            unsafe { st128(x, i, _mm_mul_ps(ld128(x, i), a)) };
            i += 4;
        }
        super::scale_scalar(&mut x[i..], alpha);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_scalar_avx2(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = x.len().
            unsafe { st256(x, i, _mm256_add_ps(ld256(x, i), a)) };
            i += 8;
        }
        super::add_scalar_scalar(&mut x[i..], alpha);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_scalar_sse2(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let a = _mm_set1_ps(alpha);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = x.len().
            unsafe { st128(x, i, _mm_add_ps(ld128(x, i), a)) };
            i += 4;
        }
        super::add_scalar_scalar(&mut x[i..], alpha);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_avx2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = x.len() = y.len().
            unsafe { st256(y, i, _mm256_add_ps(ld256(y, i), ld256(x, i))) };
            i += 8;
        }
        super::add_assign_scalar(&mut y[i..], &x[i..]);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_assign_sse2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = x.len() = y.len().
            unsafe { st128(y, i, _mm_add_ps(ld128(y, i), ld128(x, i))) };
            i += 4;
        }
        super::add_assign_scalar(&mut y[i..], &x[i..]);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn momentum_update_avx2(
        v: &mut [f32],
        g: &[f32],
        w: &[f32],
        m: f32,
        wd: f32,
    ) {
        let n = v.len();
        let mv = _mm256_set1_ps(m);
        let wdv = _mm256_set1_ps(wd);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = v.len() = g.len() = w.len().
            unsafe {
                // Same association as scalar: (m*v + g) + wd*w.
                let t = _mm256_add_ps(_mm256_mul_ps(mv, ld256(v, i)), ld256(g, i));
                st256(v, i, _mm256_add_ps(t, _mm256_mul_ps(wdv, ld256(w, i))));
            }
            i += 8;
        }
        super::momentum_update_scalar(&mut v[i..], &g[i..], &w[i..], m, wd);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn momentum_update_sse2(
        v: &mut [f32],
        g: &[f32],
        w: &[f32],
        m: f32,
        wd: f32,
    ) {
        let n = v.len();
        let mv = _mm_set1_ps(m);
        let wdv = _mm_set1_ps(wd);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = v.len() = g.len() = w.len().
            unsafe {
                let t = _mm_add_ps(_mm_mul_ps(mv, ld128(v, i)), ld128(g, i));
                st128(v, i, _mm_add_ps(t, _mm_mul_ps(wdv, ld128(w, i))));
            }
            i += 4;
        }
        super::momentum_update_scalar(&mut v[i..], &g[i..], &w[i..], m, wd);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_forward_avx2(x: &[f32], out: &mut [f32], mask: &mut [u32]) {
        let n = x.len();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = x.len() = out.len() = mask.len(); the
            // mask store writes 8 u32 (32 bytes) inside mask.
            unsafe {
                let v = ld256(x, i);
                // max_ps(zero, x): returns x on NaN or equal zeros —
                // NaN-propagating, -0.0-preserving ReLU.
                st256(out, i, _mm256_max_ps(zero, v));
                // Ordered greater-than: false (mask 0) on NaN.
                let m = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
                _mm256_storeu_si256(
                    mask.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_castps_si256(m),
                );
            }
            i += 8;
        }
        super::relu_forward_scalar(&x[i..], &mut out[i..], &mut mask[i..]);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn relu_forward_sse2(x: &[f32], out: &mut [f32], mask: &mut [u32]) {
        let n = x.len();
        let zero = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = x.len() = out.len() = mask.len(); the
            // mask store writes 4 u32 (16 bytes) inside mask.
            unsafe {
                let v = ld128(x, i);
                st128(out, i, _mm_max_ps(zero, v));
                // cmpgt is an ordered predicate: false (mask 0) on NaN.
                let m = _mm_cmpgt_ps(v, zero);
                _mm_storeu_si128(
                    mask.as_mut_ptr().add(i) as *mut __m128i,
                    _mm_castps_si128(m),
                );
            }
            i += 4;
        }
        super::relu_forward_scalar(&x[i..], &mut out[i..], &mut mask[i..]);
    }

    /// SAFETY: callers must ensure AVX2 is supported by the executing CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_backward_avx2(g: &[f32], mask: &[u32], out: &mut [f32]) {
        let n = g.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n = g.len() = mask.len() = out.len(); the
            // mask load reads 8 u32 (32 bytes) inside mask.
            unsafe {
                let m = _mm256_loadu_si256(mask.as_ptr().add(i) as *const __m256i);
                st256(out, i, _mm256_and_ps(ld256(g, i), _mm256_castsi256_ps(m)));
            }
            i += 8;
        }
        super::relu_backward_scalar(&g[i..], &mask[i..], &mut out[i..]);
    }

    /// SAFETY: nothing beyond x86-64 (SSE2 is baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn relu_backward_sse2(g: &[f32], mask: &[u32], out: &mut [f32]) {
        let n = g.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n = g.len() = mask.len() = out.len(); the
            // mask load reads 4 u32 (16 bytes) inside mask.
            unsafe {
                let m = _mm_loadu_si128(mask.as_ptr().add(i) as *const __m128i);
                st128(out, i, _mm_and_ps(ld128(g, i), _mm_castsi128_ps(m)));
            }
            i += 4;
        }
        super::relu_backward_scalar(&g[i..], &mask[i..], &mut out[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serialises tests that flip the process-global forced level.
    fn forced_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    fn bits(x: &[f32]) -> Vec<u32> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn all_levels_produce_identical_bytes() {
        let _guard = forced_lock();
        let mut rng = Rng::seed_from(42);
        // Lengths straddle vector widths to exercise every tail case.
        for len in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let x = random(len, &mut rng);
            let g = random(len, &mut rng);
            let w = random(len, &mut rng);
            let mut want: Option<Vec<Vec<u32>>> = None;
            for level in available_levels() {
                force_simd(Some(level));
                let mut y = g.clone();
                axpy(0.37, &x, &mut y);
                let mut s = x.clone();
                scale(&mut s, -1.25);
                let mut v = w.clone();
                momentum_update(&mut v, &g, &x, 0.9, 5e-4);
                let mut relu_out = vec![0.0; len];
                let mut mask = vec![0u32; len];
                relu_forward(&x, &mut relu_out, &mut mask);
                let mut back = vec![0.0; len];
                relu_backward(&g, &mask, &mut back);
                let got = vec![bits(&y), bits(&s), bits(&v), bits(&relu_out), bits(&back)];
                match &want {
                    None => want = Some(got),
                    Some(w0) => assert_eq!(w0, &got, "len {len} level {level:?}"),
                }
            }
            force_simd(None);
        }
    }

    #[test]
    fn relu_propagates_nan_and_keeps_negative_zero_on_every_level() {
        let _guard = forced_lock();
        let x = [
            f32::NAN,
            -1.0,
            -0.0,
            0.0,
            2.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -3.0,
            f32::NAN,
            1.0,
        ];
        for level in available_levels() {
            force_simd(Some(level));
            let mut out = [0.0f32; 10];
            let mut mask = [0u32; 10];
            relu_forward(&x, &mut out, &mut mask);
            assert!(out[0].is_nan(), "{level:?}: NaN must pass through");
            assert!(out[8].is_nan(), "{level:?}: NaN in the tail too");
            assert_eq!(out[1].to_bits(), 0.0f32.to_bits(), "{level:?}");
            assert_eq!(
                out[2].to_bits(),
                (-0.0f32).to_bits(),
                "{level:?}: -0.0 preserved"
            );
            assert_eq!(out[4], 2.5, "{level:?}");
            assert_eq!(out[5], f32::INFINITY, "{level:?}");
            assert_eq!(out[6].to_bits(), 0.0f32.to_bits(), "{level:?}");
            // NaN compares false: masked out of the backward pass.
            assert_eq!(mask[0], 0, "{level:?}");
            assert_eq!(mask[4], !0, "{level:?}");
        }
        force_simd(None);
    }

    #[test]
    fn forced_level_is_clamped_to_hardware() {
        let _guard = forced_lock();
        force_simd(Some(SimdLevel::Avx2));
        let got = simd_level();
        assert!(available_levels().contains(&got));
        force_simd(None);
    }
}
