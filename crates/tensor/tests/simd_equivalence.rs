//! SIMD-vs-scalar equivalence property sweeps.
//!
//! Every vector kernel in `tdfm_tensor::simd` (and the GEMM microkernel
//! behind the matmul/conv ops) claims *byte-identical* output across SIMD
//! levels — no FMA, no lane reassociation (DESIGN.md §2.1a). These sweeps
//! pin that claim over randomised GEMM shapes and conv geometries, at
//! every level the host CPU supports, including NaN/Inf propagation
//! through the vector paths.
//!
//! `force_simd` flips a process-global, so every test in this binary runs
//! under one shared lock.

use tdfm_tensor::ops::{self, conv2d_backward_with, conv2d_forward_with, Conv2dSpec};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::simd::{available_levels, force_simd};
use tdfm_tensor::{Scratch, Tensor};

use std::sync::{Mutex, MutexGuard, OnceLock};

fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Like [`bits`], but collapses every NaN to one canonical bit pattern.
///
/// When two NaNs meet in an accumulator (`NaN + NaN`), x86 returns the
/// *first* operand's payload — and LLVM may commute the scalar `acc + prod`
/// while the intrinsics pin vector operand order — so NaN *payload* bits
/// are not reproducible across levels. NaN *positions* are. The finite
/// sweeps above use raw [`bits`]; the poison tests use this. Goldens
/// contain no NaNs, so the drift gates are unaffected (DESIGN.md §2.1a).
fn bits_nan_canonical(t: &Tensor) -> Vec<u32> {
    t.data()
        .iter()
        .map(|v| if v.is_nan() { 0x7fc0_0000 } else { v.to_bits() })
        .collect()
}

/// Runs `f` under every available SIMD level (best first, scalar last)
/// and asserts all results are identical; returns the agreed result.
fn assert_levels_agree<T, F>(label: &str, mut f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: FnMut() -> T,
{
    let levels = available_levels();
    force_simd(Some(levels[0]));
    let want = f();
    for &level in &levels[1..] {
        force_simd(Some(level));
        let got = f();
        assert_eq!(
            want,
            got,
            "{label}: {level:?} disagrees with {best:?}",
            best = levels[0]
        );
    }
    force_simd(None);
    want
}

#[test]
fn gemm_sweep_is_bit_identical_across_levels() {
    let _guard = level_lock();
    // ~32 randomised shapes spanning the packed and direct cost-model
    // regimes, over all three matmul variants.
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from(0x9E44 + seed);
        let (m, k, n) = (1 + rng.below(33), 1 + rng.below(48), 1 + rng.below(40));
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let at = Tensor::randn(&[k, m], 1.0, &mut rng);
        let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
        assert_levels_agree(&format!("matmul {m}x{k}x{n} seed {seed}"), || {
            bits(&ops::matmul(&a, &b))
        });
        assert_levels_agree(&format!("matmul_at_b {m}x{k}x{n} seed {seed}"), || {
            bits(&ops::matmul_at_b(&at, &b))
        });
        assert_levels_agree(&format!("matmul_a_bt {m}x{k}x{n} seed {seed}"), || {
            bits(&ops::matmul_a_bt(&a, &bt))
        });
    }
}

#[test]
fn conv_sweep_is_bit_identical_across_levels() {
    let _guard = level_lock();
    // 16 randomised geometries: kernel sizes, strides, padding, groups,
    // checked through forward and all three backward gradients.
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from(0xC04 + seed);
        let groups = [1, 1, 1, 2][rng.below(4)];
        let cg = 1 + rng.below(3);
        let c = cg * groups;
        let o = groups * (1 + rng.below(4));
        let kh = 1 + rng.below(3);
        let kw = 1 + rng.below(3);
        let stride = 1 + rng.below(2);
        let pad = rng.below(kh.min(kw));
        let h = kh + rng.below(8);
        let w = kw + rng.below(8);
        let n = 1 + rng.below(3);
        let spec = Conv2dSpec {
            stride,
            pad,
            groups,
        };
        let input = Tensor::randn(&[n, c, h, w], 1.0, &mut rng);
        let weight = Tensor::randn(&[o, cg, kh, kw], 0.5, &mut rng);
        let bias = Tensor::randn(&[o], 0.1, &mut rng);
        let label =
            format!("conv n{n} c{c} {h}x{w} k{kh}x{kw} s{stride} p{pad} g{groups} seed {seed}");
        assert_levels_agree(&label, || {
            // A fresh arena per run keeps buffer histories identical.
            let scratch = Scratch::new();
            let out = conv2d_forward_with(&input, &weight, Some(&bias), spec, &scratch);
            let grads = conv2d_backward_with(&input, &weight, &out, spec, &scratch);
            (
                bits(&out),
                bits(&grads.grad_input),
                bits(&grads.grad_weight),
                bits(&grads.grad_bias),
            )
        });
    }
}

#[test]
fn reductions_are_bit_identical_across_levels() {
    let _guard = level_lock();
    for seed in 0..8u64 {
        let mut rng = Rng::seed_from(0x5EED + seed);
        let n = 1 + rng.below(16);
        let k = 1 + rng.below(40);
        let t = Tensor::randn(&[n, k], 4.0, &mut rng);
        assert_levels_agree(&format!("softmax {n}x{k} seed {seed}"), || {
            bits(&ops::softmax_rows(&t, 2.0))
        });
        assert_levels_agree(&format!("log_softmax {n}x{k} seed {seed}"), || {
            bits(&ops::log_softmax_rows(&t))
        });
        assert_levels_agree(&format!("sum_rows {n}x{k} seed {seed}"), || {
            bits(&ops::sum_rows(&t))
        });
    }
}

#[test]
fn nan_and_inf_propagate_through_vector_gemm() {
    let _guard = level_lock();
    // NaN in A must reach every output column; 0 × Inf must produce NaN —
    // on every SIMD level (no sparsity skips, no max-laundering in lanes).
    let (m, k, n) = (9, 12, 21); // multi-tile on both axes
    let mut a = Tensor::zeros(&[m, k]);
    a.data_mut()[k + 3] = f32::NAN; // row 1
    let mut b = Tensor::ones(&[k, n]);
    b.data_mut()[2 * n + 5] = f32::INFINITY; // 0 × inf = NaN in column 5
    assert_levels_agree("gemm nan/inf", || bits_nan_canonical(&ops::matmul(&a, &b)));
    force_simd(None);
    let out = ops::matmul(&a, &b);
    for j in 0..n {
        assert!(out.data()[n + j].is_nan(), "NaN row must poison column {j}");
    }
    for i in 0..m {
        assert!(
            out.data()[i * n + 5].is_nan(),
            "0 x inf must be NaN in row {i}"
        );
    }
    assert_eq!(out.data()[0], 0.0, "finite zeros stay exact");
}

#[test]
fn nan_and_inf_propagate_through_vector_conv() {
    let _guard = level_lock();
    let mut rng = Rng::seed_from(77);
    let spec = Conv2dSpec {
        stride: 1,
        pad: 1,
        groups: 1,
    };
    let mut input = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
    input.data_mut()[3 * 8 + 4] = f32::NAN; // poison one pixel
    let weight = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
    let got = assert_levels_agree("conv nan", || {
        let scratch = Scratch::new();
        bits_nan_canonical(&conv2d_forward_with(&input, &weight, None, spec, &scratch))
    });
    let nan_outputs = got.iter().filter(|&&b| f32::from_bits(b).is_nan()).count();
    assert!(
        nan_outputs > 0,
        "poisoned input pixel must reach the output under every level"
    );
}
