#![forbid(unsafe_code)]
//! # tdfm-core
//!
//! The primary contribution of the TDFM reproduction ("The Fault in Our
//! Data Stars", DSN 2022): the five training-data fault-mitigation
//! techniques, the reliability metrics, and the experiment runner that
//! regenerates the paper's tables and figures.
//!
//! * [`technique`] — the representative implementations of the five TDFM
//!   approaches (Table I): label smoothing (via label relaxation), meta
//!   label correction, robust loss (NCE+RCE), self-distillation, and
//!   heterogeneous majority-vote ensembles — plus the unprotected
//!   [`technique::TechniqueKind::Baseline`].
//! * [`metrics`] — accuracy and the paper's **accuracy delta** (AD,
//!   Section III-C / Fig. 2), with Student-t 95% confidence intervals.
//! * [`experiment`] — the golden/faulty experiment protocol of Fig. 2 with
//!   golden-prediction caching and JSON-serialisable results.
//! * [`model_fault`] — the second fault axis (ROADMAP item 1): every
//!   technique, including fault-aware training, scored under SEU bit-flip
//!   sweeps in model weights and activations.
//! * [`distributed`] — the production-scale axis (ROADMAP item 2):
//!   Byzantine-robust sharded training with pluggable gradient aggregators
//!   (mean, trimmed mean, median, CTMA with double momentum) and
//!   FedDebug-style faulty-shard localization (see [`detect`]).
//! * [`overhead`] — the training/inference overhead study (Section IV-E).
//!
//! # Examples
//!
//! Measure how well label smoothing tolerates 30% mislabelling on the
//! synthetic Pneumonia dataset:
//!
//! ```no_run
//! use tdfm_core::experiment::{ExperimentConfig, Runner};
//! use tdfm_core::technique::TechniqueKind;
//! use tdfm_data::{DatasetKind, Scale};
//! use tdfm_inject::{FaultKind, FaultPlan};
//! use tdfm_nn::models::ModelKind;
//!
//! let mut runner = Runner::new();
//! let result = runner.run(&ExperimentConfig {
//!     dataset: DatasetKind::Pneumonia,
//!     model: ModelKind::ResNet50,
//!     technique: TechniqueKind::LabelSmoothing,
//!     fault_plan: FaultPlan::single(FaultKind::Mislabelling, 30.0),
//!     scale: Scale::Smoke,
//!     repetitions: 3,
//!     seed: 0,
//! });
//! println!("AD = {:.1}% ± {:.1}", 100.0 * result.ad.mean, 100.0 * result.ad.half_width);
//! ```

pub mod detect;
pub mod distributed;
pub mod experiment;
pub mod metrics;
pub mod model_fault;
pub mod overhead;
pub mod stats;
pub mod technique;

pub use detect::{localize_faulty_shards, ShardLocalizationReport};
pub use distributed::{
    fit_sharded, Aggregator, AggregatorKind, ShardFaultResult, ShardFaultRunner, ShardFaultSweep,
    ShardedFitReport,
};
pub use experiment::{ExperimentConfig, ExperimentResult, Runner};
pub use metrics::{accuracy, accuracy_delta, ConfidenceInterval, ConfusionMatrix};
pub use model_fault::{ModelFaultResult, ModelFaultRunner, ModelFaultSweep};
pub use technique::{FittedModel, Mitigation, TechniqueKind, TrainContext};
