//! Runtime-overhead study (paper Section IV-E).
//!
//! Measures each technique's training-time and inference-time multipliers
//! relative to the unprotected baseline, on clean data (overheads are a
//! property of the technique, not of the faults).

use crate::technique::{TechniqueKind, TrainContext};
use std::time::Instant;
use tdfm_data::{DatasetKind, Scale};
use tdfm_json::json_struct;
use tdfm_nn::models::ModelKind;

/// One row of the overhead comparison.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// The technique measured.
    pub technique: TechniqueKind,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
    /// Wall-clock test-set inference time, seconds.
    pub infer_seconds: f64,
    /// Training time relative to the baseline (baseline = 1.0).
    pub train_multiplier: f64,
    /// Inference time relative to the baseline (baseline = 1.0).
    pub infer_multiplier: f64,
}

json_struct!(OverheadRow {
    technique,
    train_seconds,
    infer_seconds,
    train_multiplier,
    infer_multiplier
});

/// Measures all six techniques once on clean data and normalises by the
/// baseline.
///
/// The paper's qualitative expectations: label smoothing ~1x training,
/// knowledge distillation ~1.5-2x, label correction higher, ensembles
/// highest (~5x training and ~5x inference).
///
/// # Panics
///
/// Panics if the baseline measures a zero time (cannot happen for real
/// training runs).
pub fn measure_overheads(
    dataset: DatasetKind,
    model: ModelKind,
    scale: Scale,
    seed: u64,
) -> Vec<OverheadRow> {
    let data = dataset.generate(scale, seed);
    let mut raw = Vec::new();
    for kind in TechniqueKind::ALL {
        let technique = kind.build();
        let mut ctx = TrainContext::new(scale, seed);
        ctx.tune_for(data.train.len());
        let train = if technique.wants_clean_subset() {
            let (clean, rest) = tdfm_inject::split_clean(&data.train, 0.1, seed);
            ctx.clean_subset = Some(clean);
            rest
        } else {
            data.train.clone()
        };
        let t0 = Instant::now();
        let mut fitted = technique.fit(model, &train, &ctx);
        let train_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let _ = fitted.predict(data.test.images());
        let infer_seconds = t1.elapsed().as_secs_f64();
        raw.push((kind, train_seconds, infer_seconds));
    }
    let (base_train, base_infer) = raw
        .iter()
        .find(|(k, _, _)| *k == TechniqueKind::Baseline)
        .map(|(_, t, i)| (*t, *i))
        .expect("baseline is always measured");
    assert!(
        base_train > 0.0 && base_infer > 0.0,
        "baseline measured zero time"
    );
    raw.into_iter()
        .map(|(technique, train_seconds, infer_seconds)| OverheadRow {
            technique,
            train_seconds,
            infer_seconds,
            train_multiplier: train_seconds / base_train,
            infer_multiplier: infer_seconds / base_infer,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_follow_the_papers_ordering() {
        let rows = measure_overheads(DatasetKind::Pneumonia, ModelKind::ConvNet, Scale::Tiny, 7);
        assert_eq!(rows.len(), 6);
        let get = |k: TechniqueKind| rows.iter().find(|r| r.technique == k).unwrap();
        let base = get(TechniqueKind::Baseline);
        assert!((base.train_multiplier - 1.0).abs() < 1e-9);
        // Ensembles train five models: more expensive than the baseline in
        // both phases. (Thresholds are loose: the test machine may be
        // loaded, and wall-clock multipliers at tiny scale are noisy.)
        let ens = get(TechniqueKind::Ensemble);
        assert!(
            ens.train_multiplier > 1.1,
            "ens train x{}",
            ens.train_multiplier
        );
        assert!(
            ens.infer_multiplier > 1.1,
            "ens infer x{}",
            ens.infer_multiplier
        );
        // Distillation trains teacher + student.
        let kd = get(TechniqueKind::KnowledgeDistillation);
        assert!(
            kd.train_multiplier > 1.05,
            "kd train x{}",
            kd.train_multiplier
        );
    }
}
